"""Benchmark configuration: tasks, scenarios, and the v0.5 rule constants.

This module encodes the normative tables of the paper:

* Table I   - the five tasks, their reference models and quality targets.
* Table II  - the four scenarios and their metrics.
* Table III - multistream arrival times and server QoS constraints.
* Table V   - minimum query counts and samples per query.

plus the run rules from Section III-D: 60-second minimum duration, five
server runs (score = minimum), tail-latency percentiles (99th for vision,
97th for translation), and the <=1% multistream skip budget.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Dict, Optional


class Scenario(enum.Enum):
    """The four MLPerf Inference evaluation scenarios (Table II), plus
    the session extension: multi-turn conversation replay layered on the
    Server arrival process (``repro.sessions``, ``docs/sessions.md``)."""

    SINGLE_STREAM = "single_stream"
    MULTI_STREAM = "multi_stream"
    SERVER = "server"
    OFFLINE = "offline"
    SESSION = "session"

    @property
    def short_name(self) -> str:
        return {
            Scenario.SINGLE_STREAM: "SS",
            Scenario.MULTI_STREAM: "MS",
            Scenario.SERVER: "S",
            Scenario.OFFLINE: "O",
            Scenario.SESSION: "SE",
        }[self]

    @property
    def metric_name(self) -> str:
        return {
            Scenario.SINGLE_STREAM: "90th-percentile latency",
            Scenario.MULTI_STREAM: "number of streams subject to latency bound",
            Scenario.SERVER: "queries per second subject to latency bound",
            Scenario.OFFLINE: "throughput (samples/second)",
            Scenario.SESSION: "completed sessions per second",
        }[self]


class TestMode(enum.Enum):
    """LoadGen operating modes (Section IV-B)."""

    # Not a pytest class, despite the name pytest would otherwise collect.
    __test__ = False

    PERFORMANCE = "performance"
    ACCURACY = "accuracy"


class Task(enum.Enum):
    """The five v0.5 tasks (Table I)."""

    IMAGE_CLASSIFICATION_HEAVY = "resnet50-v1.5"
    IMAGE_CLASSIFICATION_LIGHT = "mobilenet-v1"
    OBJECT_DETECTION_HEAVY = "ssd-resnet34"
    OBJECT_DETECTION_LIGHT = "ssd-mobilenet-v1"
    MACHINE_TRANSLATION = "gnmt"

    @property
    def area(self) -> str:
        if self is Task.MACHINE_TRANSLATION:
            return "language"
        return "vision"

    @property
    def is_vision(self) -> bool:
        return self.area == "vision"


@dataclass(frozen=True)
class TaskRules:
    """Per-task constants from Tables I, III, and V."""

    task: Task
    #: Multistream fixed arrival interval, seconds (Table III).
    multistream_interval: float
    #: Server latency bound, seconds (Table III).
    server_latency_bound: float
    #: Tail-latency percentile enforced in MS/Server (Section III-D).
    tail_latency_percentile: float
    #: Minimum queries for MS and Server (Table V: 270K vision, 90K NMT).
    latency_bounded_query_count: int
    #: Fraction of queries allowed to violate the bound (1 - percentile).
    #: Kept explicit because the paper states it as a rule ("no more than
    #: 1% ... 3% for translation").
    max_violation_fraction: float


# Table III + Table V + Section III-C latency/percentile rules.
_TASK_RULES: Dict[Task, TaskRules] = {
    Task.IMAGE_CLASSIFICATION_HEAVY: TaskRules(
        task=Task.IMAGE_CLASSIFICATION_HEAVY,
        multistream_interval=0.050,
        server_latency_bound=0.015,
        tail_latency_percentile=0.99,
        latency_bounded_query_count=270_336,
        max_violation_fraction=0.01,
    ),
    Task.IMAGE_CLASSIFICATION_LIGHT: TaskRules(
        task=Task.IMAGE_CLASSIFICATION_LIGHT,
        multistream_interval=0.050,
        server_latency_bound=0.010,
        tail_latency_percentile=0.99,
        latency_bounded_query_count=270_336,
        max_violation_fraction=0.01,
    ),
    Task.OBJECT_DETECTION_HEAVY: TaskRules(
        task=Task.OBJECT_DETECTION_HEAVY,
        multistream_interval=0.066,
        server_latency_bound=0.100,
        tail_latency_percentile=0.99,
        latency_bounded_query_count=270_336,
        max_violation_fraction=0.01,
    ),
    Task.OBJECT_DETECTION_LIGHT: TaskRules(
        task=Task.OBJECT_DETECTION_LIGHT,
        multistream_interval=0.050,
        server_latency_bound=0.010,
        tail_latency_percentile=0.99,
        latency_bounded_query_count=270_336,
        max_violation_fraction=0.01,
    ),
    Task.MACHINE_TRANSLATION: TaskRules(
        task=Task.MACHINE_TRANSLATION,
        multistream_interval=0.100,
        server_latency_bound=0.250,
        tail_latency_percentile=0.97,
        latency_bounded_query_count=90_112,
        max_violation_fraction=0.03,
    ),
}


def task_rules(task: Task) -> TaskRules:
    """Return the Table III/V rule constants for ``task``."""
    return _TASK_RULES[task]


#: Minimum number of single-stream queries (Table V).
SINGLE_STREAM_MIN_QUERIES = 1_024

#: Minimum samples in the offline scenario's one query (Table II/V).
OFFLINE_MIN_SAMPLES = 24_576

#: Every benchmark must run for at least this long (Section III-D).
MIN_DURATION_SECONDS = 60.0

#: Server scenario result is the minimum of this many runs (Section III-D).
SERVER_REQUIRED_RUNS = 5

#: Single-stream reported metric percentile (Table II).
SINGLE_STREAM_REPORTED_PERCENTILE = 0.90

#: Default LoadGen PRNG seed ("the traffic pattern is predetermined by the
#: pseudorandom-number-generator seed", Section IV-A).
DEFAULT_SEED = 0x5EED_2019

#: Default conversations replayed by the session scenario when
#: ``TestSettings.session_count`` is unset (``docs/sessions.md``).
DEFAULT_SESSION_COUNT = 64


@dataclass
class TestSettings:
    """Everything the LoadGen needs to drive one run.

    (``__test__`` opts out of pytest collection - the MLPerf name is
    kept for fidelity with the real LoadGen API.)

    Mirrors the real LoadGen's ``TestSettings`` struct: scenario, mode,
    scenario-specific knobs, query-count and duration overrides (used by
    unit tests and the audit tools), and the RNG seed.
    """

    __test__ = False

    scenario: Scenario
    mode: TestMode = TestMode.PERFORMANCE
    task: Optional[Task] = None

    #: Server scenario: the Poisson arrival rate under test (QPS).
    server_target_qps: float = 1.0
    #: Multistream scenario: samples per query (the N being validated).
    multistream_samples_per_query: int = 1
    #: Multistream arrival interval override; default comes from Table III.
    multistream_interval: Optional[float] = None
    #: Server latency bound override; default comes from Table III.
    server_latency_bound: Optional[float] = None
    #: Tail-latency percentile override.
    tail_latency_percentile: Optional[float] = None

    #: Overrides for query counts / durations (None -> rule defaults).
    min_query_count: Optional[int] = None
    min_duration: Optional[float] = None
    #: Offline sample count override.
    offline_sample_count: Optional[int] = None

    #: Cap on the number of distinct library samples held in memory; the
    #: performance run draws from this loaded set with replacement.
    performance_sample_count: Optional[int] = None

    #: Overall-run watchdog, in virtual seconds from the start of the
    #: run.  When set, a run that is still incomplete at this time is
    #: terminated and judged INVALID ("watchdog fired"), naming the
    #: stuck queries - instead of deadlocking on a SUT that dropped a
    #: response.  ``None`` disables the watchdog (trusted SUTs only).
    watchdog_timeout: Optional[float] = None

    #: Server scenario: scheduled arrival-rate bursts, as a tuple of
    #: ``(start, duration, multiplier)`` windows on the run clock.
    #: While a window is active, the Poisson arrival rate becomes
    #: ``server_target_qps * multiplier`` - the flash-crowd / lull
    #: traffic the replicated serving tier (``repro.fleet``) is
    #: exercised under.  Plain data (not callables), so journaled runs
    #: replay their bursts; build windows ergonomically with
    #: ``repro.faults.BurstPlan``.  ``None`` keeps the constant rate.
    server_rate_bursts: Optional[tuple] = None

    #: Token-level serving SLOs for streamed responses, in nanoseconds
    #: (the real LoadGen expresses its targets in ns; the resolved_*
    #: properties convert to seconds).  ``ttft_target_ns`` bounds
    #: time-to-first-token, ``tpot_target_ns`` bounds the mean
    #: inter-token interval after the first.  Violations are budgeted
    #: against the same tail fraction as the classic latency rule, and
    #: *goodput* counts only queries that met every SLO.  ``None``
    #: disables the corresponding check (the classic rules still apply).
    ttft_target_ns: Optional[int] = None
    tpot_target_ns: Optional[int] = None

    #: Session scenario (``repro.sessions``, ``docs/sessions.md``).
    #: ``session_count`` is how many user conversations the run replays;
    #: new sessions arrive via the Server Poisson process at
    #: ``server_target_qps`` *sessions*/s, and within a session turn N+1
    #: issues only after turn N completes plus a drawn think time.  The
    #: remaining knobs parameterize the seeded replay-graph generator
    #: (``repro.sessions.SessionProfile``); per-user draws come from
    #: ``SeedSequence((seed, user_id, 0x5E55))`` so the graph is a pure
    #: function of the run seed.  All plain data, so journaled session
    #: runs replay identically.
    session_count: Optional[int] = None
    session_turns_min: int = 2
    session_turns_max: int = 8
    session_think_time_mean: float = 2.0
    session_new_tokens_min: int = 16
    session_new_tokens_max: int = 128

    seed: int = DEFAULT_SEED

    def __post_init__(self) -> None:
        if self.server_target_qps <= 0:
            raise ValueError(
                f"server_target_qps must be positive, got {self.server_target_qps}"
            )
        if self.multistream_samples_per_query < 1:
            raise ValueError(
                "multistream_samples_per_query must be >= 1, got "
                f"{self.multistream_samples_per_query}"
            )
        if self.multistream_interval is not None and self.multistream_interval <= 0:
            raise ValueError(
                f"multistream_interval must be positive, got "
                f"{self.multistream_interval}"
            )
        if self.server_latency_bound is not None and self.server_latency_bound <= 0:
            raise ValueError(
                f"server_latency_bound must be positive, got "
                f"{self.server_latency_bound}"
            )
        if self.tail_latency_percentile is not None and not (
            0.0 < self.tail_latency_percentile < 1.0
        ):
            raise ValueError(
                "tail_latency_percentile must be in (0, 1), got "
                f"{self.tail_latency_percentile}"
            )
        if self.min_query_count is not None and self.min_query_count < 1:
            raise ValueError(
                f"min_query_count must be >= 1, got {self.min_query_count}"
            )
        if self.min_duration is not None and (
            self.min_duration < 0 or self.min_duration != self.min_duration
        ):
            raise ValueError(
                f"min_duration must be a non-negative number, got "
                f"{self.min_duration}"
            )
        if self.offline_sample_count is not None and self.offline_sample_count < 1:
            raise ValueError(
                f"offline_sample_count must be >= 1, got "
                f"{self.offline_sample_count}"
            )
        if (
            self.performance_sample_count is not None
            and self.performance_sample_count < 1
        ):
            raise ValueError(
                f"performance_sample_count must be >= 1, got "
                f"{self.performance_sample_count}"
            )
        if self.watchdog_timeout is not None and self.watchdog_timeout <= 0:
            raise ValueError(
                f"watchdog_timeout must be positive, got {self.watchdog_timeout}"
            )
        if self.ttft_target_ns is not None and self.ttft_target_ns <= 0:
            raise ValueError(
                f"ttft_target_ns must be positive, got {self.ttft_target_ns}"
            )
        if self.tpot_target_ns is not None and self.tpot_target_ns <= 0:
            raise ValueError(
                f"tpot_target_ns must be positive, got {self.tpot_target_ns}"
            )
        if self.session_count is not None and self.session_count < 1:
            raise ValueError(
                f"session_count must be >= 1, got {self.session_count}"
            )
        if self.session_turns_min < 1:
            raise ValueError(
                f"session_turns_min must be >= 1, got {self.session_turns_min}"
            )
        if self.session_turns_max < self.session_turns_min:
            raise ValueError(
                "session_turns_max must be >= session_turns_min, got "
                f"{self.session_turns_max} < {self.session_turns_min}"
            )
        if self.session_think_time_mean < 0:
            raise ValueError(
                f"session_think_time_mean must be >= 0, got "
                f"{self.session_think_time_mean}"
            )
        if self.session_new_tokens_min < 1:
            raise ValueError(
                f"session_new_tokens_min must be >= 1, got "
                f"{self.session_new_tokens_min}"
            )
        if self.session_new_tokens_max < self.session_new_tokens_min:
            raise ValueError(
                "session_new_tokens_max must be >= session_new_tokens_min, "
                f"got {self.session_new_tokens_max} < "
                f"{self.session_new_tokens_min}"
            )
        if self.server_rate_bursts is not None:
            windows = tuple(tuple(w) for w in self.server_rate_bursts)
            for window in windows:
                if len(window) != 3:
                    raise ValueError(
                        "each rate burst must be (start, duration, "
                        f"multiplier), got {window!r}"
                    )
                start, duration, multiplier = window
                if start < 0:
                    raise ValueError(
                        f"burst start must be >= 0, got {start}")
                if duration <= 0:
                    raise ValueError(
                        f"burst duration must be positive, got {duration}")
                if multiplier <= 0:
                    raise ValueError(
                        f"burst multiplier must be positive, got {multiplier}")
            for earlier, later in zip(windows, windows[1:]):
                if earlier[0] + earlier[1] > later[0]:
                    raise ValueError(
                        "rate bursts must be sorted and non-overlapping: "
                        f"{earlier!r} overlaps {later!r}"
                    )
            self.server_rate_bursts = windows

    # -- resolved rule values -------------------------------------------------

    def _rules(self) -> Optional[TaskRules]:
        return _TASK_RULES.get(self.task) if self.task is not None else None

    @property
    def resolved_multistream_interval(self) -> float:
        if self.multistream_interval is not None:
            return self.multistream_interval
        rules = self._rules()
        if rules is None:
            raise ValueError("multistream_interval unset and no task given")
        return rules.multistream_interval

    @property
    def resolved_server_latency_bound(self) -> float:
        if self.server_latency_bound is not None:
            return self.server_latency_bound
        rules = self._rules()
        if rules is None:
            raise ValueError("server_latency_bound unset and no task given")
        return rules.server_latency_bound

    @property
    def resolved_tail_percentile(self) -> float:
        if self.tail_latency_percentile is not None:
            return self.tail_latency_percentile
        rules = self._rules()
        if rules is None:
            # Vision default.
            return 0.99
        return rules.tail_latency_percentile

    @property
    def resolved_min_query_count(self) -> int:
        if self.min_query_count is not None:
            return self.min_query_count
        if self.scenario is Scenario.SINGLE_STREAM:
            return SINGLE_STREAM_MIN_QUERIES
        if self.scenario is Scenario.OFFLINE:
            return 1
        if self.scenario is Scenario.SESSION:
            # The session rule gates on completed *sessions* (see
            # validate_run), not a turn count; an explicit override
            # above still applies.
            return 1
        rules = self._rules()
        if rules is not None:
            return rules.latency_bounded_query_count
        return 270_336

    @property
    def resolved_min_duration(self) -> float:
        if self.min_duration is not None:
            return self.min_duration
        return MIN_DURATION_SECONDS

    @property
    def resolved_offline_samples(self) -> int:
        if self.offline_sample_count is not None:
            return self.offline_sample_count
        return OFFLINE_MIN_SAMPLES

    @property
    def resolved_max_violation_fraction(self) -> float:
        rules = self._rules()
        if rules is not None:
            return rules.max_violation_fraction
        return 1.0 - self.resolved_tail_percentile

    @property
    def resolved_session_count(self) -> int:
        """Sessions the session scenario replays (default 64)."""
        if self.session_count is not None:
            return self.session_count
        return DEFAULT_SESSION_COUNT

    @property
    def resolved_ttft_target(self) -> Optional[float]:
        """TTFT SLO in seconds, or None when unset."""
        if self.ttft_target_ns is None:
            return None
        return self.ttft_target_ns / 1e9

    @property
    def resolved_tpot_target(self) -> Optional[float]:
        """TPOT SLO in seconds, or None when unset."""
        if self.tpot_target_ns is None:
            return None
        return self.tpot_target_ns / 1e9

    @property
    def has_stream_slos(self) -> bool:
        return self.ttft_target_ns is not None or self.tpot_target_ns is not None

    def with_overrides(self, **kwargs) -> "TestSettings":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)
