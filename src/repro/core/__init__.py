"""Core benchmark machinery: the LoadGen, scenarios, and run rules."""

from .config import (
    DEFAULT_SEED,
    MIN_DURATION_SECONDS,
    OFFLINE_MIN_SAMPLES,
    SERVER_REQUIRED_RUNS,
    SINGLE_STREAM_MIN_QUERIES,
    Scenario,
    Task,
    TaskRules,
    TestMode,
    TestSettings,
    task_rules,
)
from .events import Clock, EventLoop, RunAbortedError, VirtualClock, WallClock
from .experimental import (
    BurstSettings,
    find_max_burst_rate,
    run_burst_benchmark,
)
from .loadgen import LoadGen, LoadGenResult, run_benchmark
from .logging import QueryLog
from .metrics import (
    ScenarioMetrics,
    StreamMetrics,
    compute_metrics,
    compute_stream_metrics,
    empty_metrics,
)
from .query import (
    Query,
    QueryFailure,
    QueryRecord,
    QuerySample,
    QuerySampleResponse,
    StreamChunk,
)
from .stats import (
    QueryRequirement,
    inverse_normal_cdf,
    margin_for_tail_latency,
    percentile,
    queries_for_confidence,
    required_queries,
    round_up_to_unit,
    table_iv,
)
from .sut import QuerySampleLibrary, SutBase, SystemUnderTest
from .trace import to_chrome_trace, write_chrome_trace
from .validation import ValidityReport, validate_run

__all__ = [
    "BurstSettings",
    "Clock",
    "DEFAULT_SEED",
    "EventLoop",
    "LoadGen",
    "LoadGenResult",
    "MIN_DURATION_SECONDS",
    "OFFLINE_MIN_SAMPLES",
    "Query",
    "QueryFailure",
    "QueryLog",
    "QueryRecord",
    "QueryRequirement",
    "QuerySample",
    "QuerySampleLibrary",
    "QuerySampleResponse",
    "RunAbortedError",
    "SERVER_REQUIRED_RUNS",
    "SINGLE_STREAM_MIN_QUERIES",
    "Scenario",
    "ScenarioMetrics",
    "StreamChunk",
    "StreamMetrics",
    "SutBase",
    "SystemUnderTest",
    "Task",
    "TaskRules",
    "TestMode",
    "TestSettings",
    "ValidityReport",
    "VirtualClock",
    "WallClock",
    "compute_metrics",
    "compute_stream_metrics",
    "empty_metrics",
    "find_max_burst_rate",
    "run_burst_benchmark",
    "inverse_normal_cdf",
    "margin_for_tail_latency",
    "percentile",
    "queries_for_confidence",
    "required_queries",
    "round_up_to_unit",
    "run_benchmark",
    "table_iv",
    "to_chrome_trace",
    "write_chrome_trace",
    "task_rules",
    "validate_run",
]
