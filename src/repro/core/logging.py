"""Structured run logs (paper Section IV-B).

The LoadGen "records queries and responses from the SUT, and at the end
of the run, it reports statistics, summarizes the results, and determines
whether the run was valid".  :class:`QueryLog` is that record.  The
accuracy script and the audit tests consume it rather than reaching into
LoadGen internals, mirroring the real system where they parse log files.

In performance mode response payloads are normally discarded to avoid
perturbing the measurement; the accuracy-verification audit turns on
random payload logging via ``log_sample_probability``.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

import numpy as np

from .query import Query, QueryRecord, QuerySampleResponse, StreamChunk


class QueryLog:
    """Append-only log of query lifecycles for one LoadGen run.

    The log is also the referee's misbehavior detector: completions for
    unknown queries, duplicate completions, and malformed response sets
    are recorded as anomalies (``unsolicited_responses``,
    ``duplicate_completions``, failed records) via
    :meth:`observe_completion` so the run can terminate with a precise
    INVALID verdict instead of crashing mid-flight.  The strict
    :meth:`record_completion` API, which raises on the same conditions,
    remains for callers that build logs by hand.
    """

    def __init__(self, log_sample_probability: float = 0.0, seed: int = 0) -> None:
        if not 0.0 <= log_sample_probability <= 1.0:
            raise ValueError(
                f"log_sample_probability must be in [0, 1], got {log_sample_probability}"
            )
        self._records: Dict[int, QueryRecord] = {}
        self._order: List[int] = []
        #: Records that reached a terminal state (completed or failed),
        #: kept incrementally so :attr:`outstanding` is O(1) - it is
        #: polled per event by the janitor, the watchdog, the snapshot
        #: sampler, and the ``loadgen_queries_outstanding`` gauge.
        self._resolved_count = 0
        self.log_sample_probability = log_sample_probability
        self._rng = np.random.default_rng(seed)
        #: Optional lifecycle tap, called as ``observer(event, query,
        #: time, payload)`` with event ``"issued"`` (payload None),
        #: ``"completed"`` (payload: response list) or ``"failed"``
        #: (payload: reason) *after* the log recorded the event.  The
        #: write-ahead run journal (``repro.durability``) attaches here;
        #: the hook costs one None-check per event when unused.
        self.observer = None
        #: Count of issued samples (not queries) for throughput metrics.
        self.issued_samples = 0
        #: (query_id, time) of completions that arrived more than once.
        self.duplicate_completions: List[Tuple[int, float]] = []
        #: (query_id, time) of completions for queries never issued.
        self.unsolicited_responses: List[Tuple[int, float]] = []
        #: (query_id, time, reason) of chunk deliveries that violated
        #: stream ordering: duplicate sequence numbers, gaps, chunks
        #: after the final chunk, chunks timestamped before issue.
        self.stream_chunk_anomalies: List[Tuple[int, float, str]] = []
        #: (query_id, time) of queries that completed while their stream
        #: was still open (chunks seen, but never a ``last=True`` chunk):
        #: truncated streams.
        self.truncated_streams: List[Tuple[int, float]] = []
        #: Accepted chunk / token totals across all records.
        self.stream_chunks = 0
        self.stream_tokens = 0

    def record_issue(self, query: Query, issue_time: float,
                     scheduled_time: Optional[float] = None) -> None:
        if query.id in self._records:
            raise ValueError(f"query {query.id} issued twice")
        self._records[query.id] = QueryRecord(
            query=query, issue_time=issue_time, scheduled_time=scheduled_time
        )
        self._order.append(query.id)
        self.issued_samples += query.sample_count
        if self.observer is not None:
            self.observer("issued", query, issue_time, None)

    def record_completion(
        self,
        query: Query,
        completion_time: float,
        responses: List[QuerySampleResponse],
        keep_responses: bool,
    ) -> None:
        record = self._records.get(query.id)
        if record is None:
            raise ValueError(f"completion for unknown query {query.id}")
        if record.resolved:
            raise ValueError(f"query {query.id} completed twice")
        if completion_time < record.issue_time:
            raise ValueError(
                f"query {query.id} completed before it was issued "
                f"({completion_time} < {record.issue_time})"
            )
        if len(responses) != query.sample_count:
            raise ValueError(
                f"query {query.id}: expected {query.sample_count} responses, "
                f"got {len(responses)}"
            )
        record.completion_time = completion_time
        self._resolved_count += 1
        if keep_responses or (
            self.log_sample_probability > 0.0
            and self._rng.random() < self.log_sample_probability
        ):
            record.responses = list(responses)
        if self.observer is not None:
            self.observer("completed", query, completion_time, responses)

    # -- tolerant referee path -------------------------------------------------

    def observe_completion(
        self,
        query: Query,
        completion_time: float,
        responses: List[QuerySampleResponse],
        keep_responses: bool,
    ) -> str:
        """Record a completion, classifying misbehavior instead of raising.

        Returns the terminal classification:

        * ``"completed"``   - a clean completion, recorded as usual;
        * ``"failed"``      - the query resolved, but its response set was
          malformed (wrong count, wrong sample ids, time before issue);
        * ``"duplicate"``   - the query was already resolved; noted in
          :attr:`duplicate_completions`, record untouched;
        * ``"unsolicited"`` - no such query was ever issued; noted in
          :attr:`unsolicited_responses`.
        """
        record = self._records.get(query.id)
        if record is None:
            self.unsolicited_responses.append((query.id, completion_time))
            return "unsolicited"
        if record.resolved:
            self.duplicate_completions.append((query.id, completion_time))
            return "duplicate"
        if completion_time < record.issue_time:
            return self.record_failure(
                query, completion_time,
                f"completed at {completion_time} before issue at "
                f"{record.issue_time}",
            )
        if len(responses) != query.sample_count:
            return self.record_failure(
                query, completion_time,
                f"expected {query.sample_count} responses, got {len(responses)}",
            )
        expected_ids = {s.id for s in query.samples}
        got_ids = {r.sample_id for r in responses}
        if got_ids != expected_ids:
            return self.record_failure(
                query, completion_time,
                f"{len(got_ids - expected_ids)} responses name sample ids "
                "that are not part of the query",
            )
        if record.chunk_count > 0 and not record.stream_closed:
            # The stream never delivered its final chunk: a truncated
            # stream.  The completion is still recorded (the terminal
            # outcome did arrive) but the run carries the misbehavior.
            self.truncated_streams.append((query.id, completion_time))
        record.completion_time = completion_time
        self._resolved_count += 1
        if keep_responses or (
            self.log_sample_probability > 0.0
            and self._rng.random() < self.log_sample_probability
        ):
            record.responses = list(responses)
        if self.observer is not None:
            self.observer("completed", query, completion_time, responses)
        return "completed"

    def record_chunk(self, query: Query, time: float, chunk: StreamChunk) -> str:
        """Record one streamed chunk, classifying misbehavior.

        Returns the classification:

        * ``"chunk"``       - in-sequence chunk, timing recorded;
        * ``"restart"``     - ``seq == 0`` after prior progress: the
          stream restarted (a retry or reroute reissued the query).
          Allowed - the attempt's timing resets so TTFT/TPOT reflect
          the answer the client actually received - but counted in
          ``QueryRecord.stream_restarts``;
        * ``"anomaly"``     - out-of-order / duplicate / post-final /
          pre-issue chunk, noted in :attr:`stream_chunk_anomalies`;
        * ``"late"``        - chunk for an already-resolved query, also
          noted in :attr:`stream_chunk_anomalies`;
        * ``"unsolicited"`` - chunk for a query never issued.
        """
        record = self._records.get(query.id)
        if record is None:
            self.unsolicited_responses.append((query.id, time))
            return "unsolicited"
        if record.resolved:
            self.stream_chunk_anomalies.append(
                (query.id, time,
                 f"chunk seq {chunk.seq} arrived after the query resolved")
            )
            return "late"
        if time < record.issue_time:
            self.stream_chunk_anomalies.append(
                (query.id, time,
                 f"chunk seq {chunk.seq} timestamped before issue")
            )
            return "anomaly"
        restarted = chunk.seq == 0 and record.chunk_count > 0
        if restarted:
            record.stream_restarts += 1
            record.first_chunk_time = None
            record.last_chunk_time = None
            record.chunk_count = 0
            record.token_count = 0
            record.stream_closed = False
        elif record.stream_closed:
            self.stream_chunk_anomalies.append(
                (query.id, time,
                 f"chunk seq {chunk.seq} arrived after the final chunk")
            )
            return "anomaly"
        elif chunk.seq != record.chunk_count:
            kind = "duplicate" if chunk.seq < record.chunk_count else "out-of-order"
            self.stream_chunk_anomalies.append(
                (query.id, time,
                 f"{kind} chunk seq {chunk.seq} "
                 f"(expected {record.chunk_count})")
            )
            return "anomaly"
        if record.chunk_count == 0:
            record.first_chunk_time = time
        record.last_chunk_time = time
        record.chunk_count += 1
        record.token_count += chunk.token_count
        if chunk.last:
            record.stream_closed = True
        self.stream_chunks += 1
        self.stream_tokens += chunk.token_count
        if self.observer is not None:
            self.observer("chunk", query, time, chunk)
        return "restart" if restarted else "chunk"

    def record_failure(self, query: Query, time: float, reason: str) -> str:
        """Mark an issued query as failed (it will never complete cleanly).

        Classifies like :meth:`observe_completion`: failures for unknown
        or already-resolved queries are themselves anomalies.
        """
        record = self._records.get(query.id)
        if record is None:
            self.unsolicited_responses.append((query.id, time))
            return "unsolicited"
        if record.resolved:
            self.duplicate_completions.append((query.id, time))
            return "duplicate"
        record.failure_reason = reason
        record.failure_time = time
        self._resolved_count += 1
        if self.observer is not None:
            self.observer("failed", query, time, reason)
        return "failed"

    # -- views ----------------------------------------------------------------

    def records(self) -> List[QueryRecord]:
        """All records in issue order."""
        return [self._records[qid] for qid in self._order]

    def record_for(self, query_id: int) -> Optional[QueryRecord]:
        """The record for one query id, or None if never issued."""
        return self._records.get(query_id)

    def completed_records(self) -> List[QueryRecord]:
        """Cleanly completed records (failed queries are excluded)."""
        return [r for r in self.records() if r.completed and not r.failed]

    def failed_records(self) -> List[QueryRecord]:
        """Records that resolved as failures (malformed, retries spent)."""
        return [r for r in self.records() if r.failed]

    def outstanding_records(self) -> List[QueryRecord]:
        """Issued queries that never reached a terminal state."""
        return [r for r in self.records() if not r.resolved]

    def latencies(self) -> List[float]:
        return [r.latency for r in self.completed_records()]

    @property
    def query_count(self) -> int:
        return len(self._order)

    @property
    def outstanding(self) -> int:
        return len(self._records) - self._resolved_count

    def streamed_records(self) -> List[QueryRecord]:
        """Cleanly completed records that received at least one chunk."""
        return [r for r in self.completed_records() if r.streamed]

    @property
    def anomaly_count(self) -> int:
        """Total misbehavior observations (duplicates + unsolicited +
        failed records + stream anomalies)."""
        return (
            len(self.duplicate_completions)
            + len(self.unsolicited_responses)
            + len(self.failed_records())
            + len(self.stream_chunk_anomalies)
            + len(self.truncated_streams)
        )

    def logged_responses(self) -> Dict[int, object]:
        """Map sample id -> response payload for records that kept them."""
        out: Dict[int, object] = {}
        for record in self.records():
            if record.responses is None:
                continue
            for response in record.responses:
                out[response.sample_id] = response.data
        return out

    def sample_index_of(self, sample_id: int) -> int:
        """Reverse-map a sample id to its data set index."""
        for record in self.records():
            for sample in record.query.samples:
                if sample.id == sample_id:
                    return sample.index
        raise KeyError(f"unknown sample id {sample_id}")

    def sample_index_map(self) -> Dict[int, int]:
        """Map of every issued sample id to its data set index."""
        out: Dict[int, int] = {}
        for record in self.records():
            for sample in record.query.samples:
                out[sample.id] = sample.index
        return out

    # -- serialization (the "log files" of Fig. 3 step 7) ----------------------

    def to_jsonl(self) -> str:
        """Serialize the trace to JSON lines, omitting raw payloads that
        are not JSON-serializable (they are replaced by ``repr``)."""
        lines = []
        for record in self.records():
            entry = {
                "query_id": record.query.id,
                "sample_indices": list(record.query.sample_indices),
                "sample_ids": [s.id for s in record.query.samples],
                "issue_time": record.issue_time,
                "scheduled_time": record.scheduled_time,
                "completion_time": record.completion_time,
            }
            if record.query.session is not None:
                turn = record.query.session
                entry["session_id"] = turn.session_id
                entry["turn_index"] = turn.turn_index
                entry["turn_count"] = turn.turn_count
                entry["prefix_tokens"] = turn.prefix_tokens
            if record.failed:
                entry["failure_reason"] = record.failure_reason
                entry["failure_time"] = record.failure_time
            if record.streamed:
                entry["first_chunk_time"] = record.first_chunk_time
                entry["last_chunk_time"] = record.last_chunk_time
                entry["chunk_count"] = record.chunk_count
                entry["token_count"] = record.token_count
                entry["stream_closed"] = record.stream_closed
                entry["stream_restarts"] = record.stream_restarts
            if record.responses is not None:
                entry["responses"] = [
                    _jsonable(r.data) for r in record.responses
                ]
            lines.append(json.dumps(entry))
        return "\n".join(lines)


def _jsonable(value: object) -> object:
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, np.ndarray):
        return value.tolist()
    return repr(value)
