"""Discrete-event simulation engine and clock abstractions.

The MLPerf Inference scenarios are defined in terms of wall-clock time:
Poisson arrivals in the server scenario, fixed arrival intervals in
multistream, a 60-second minimum run duration, and so on.  Running the
paper's query counts (270,336 queries for a 99th-percentile guarantee) in
real time would take hours, exactly as the paper notes for multistream
runs (2.5-7.0 hours).  This module provides a virtual-time event loop so
the same scenario logic executes in milliseconds while preserving the
timing semantics exactly.

Two clock implementations are provided:

* :class:`VirtualClock` - advanced only by the event loop; deterministic.
* :class:`WallClock` - reads ``time.monotonic``; used when a real backend
  must be measured (its measured durations are then replayed as virtual
  service times, see ``repro.sut.backend``).

The event loop is intentionally small: a heap of ``(time, sequence,
callback)`` entries.  The sequence number guarantees FIFO ordering among
events scheduled for the same instant, which matters for reproducibility
of query logs.

A loop built over a non-virtual clock (any :class:`Clock` that is not a
:class:`VirtualClock`) runs in *realtime* mode: instead of teleporting
the clock to the next event it sleeps until that event is due, and it
accepts work from other threads through the thread-safe :meth:`EventLoop.post`
- the mechanism the network subsystem's socket reader threads use to
deliver completions back onto the run's single-threaded timeline.
"""

from __future__ import annotations

import collections
import heapq
import itertools
import threading
import time as _time
from dataclasses import dataclass, field
from typing import Callable, Deque, List, Optional


class RunAbortedError(RuntimeError):
    """An event callback raised and the run cannot continue.

    Wraps the original exception with the event-loop context a bare
    traceback loses: the virtual time at which the event fired and the
    callback that owned it.  The LoadGen converts this into an INVALID
    run result instead of crashing the whole process.
    """

    def __init__(self, message: str, *, time: float, origin: str,
                 cause: Optional[BaseException] = None) -> None:
        super().__init__(message)
        self.time = time
        self.origin = origin
        self.cause = cause


class Clock:
    """Minimal time source interface used throughout the benchmark."""

    def now(self) -> float:
        """Return the current time in seconds."""
        raise NotImplementedError


class WallClock(Clock):
    """Real time, via ``time.monotonic``."""

    def now(self) -> float:
        return _time.monotonic()


class VirtualClock(Clock):
    """Simulated time, advanced explicitly by an :class:`EventLoop`."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance_to(self, t: float) -> None:
        """Move the clock forward to ``t``.  Time never runs backwards."""
        if t < self._now:
            raise ValueError(
                f"clock cannot run backwards: now={self._now}, target={t}"
            )
        self._now = t


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Handle returned by :meth:`EventLoop.schedule`; allows cancellation."""

    def __init__(self, event: _Event) -> None:
        self._event = event

    def cancel(self) -> None:
        self._event.cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def time(self) -> float:
        return self._event.time


class EventLoop:
    """A deterministic discrete-event loop over a :class:`VirtualClock`.

    Events are callbacks scheduled at absolute virtual times.  ``run``
    drains the heap; each callback may schedule further events.  The loop
    is single-threaded, which makes every benchmark run reproducible given
    the same seeds.

    Over a non-virtual clock the loop runs in *realtime* mode: ``run``
    sleeps until the next event is due instead of advancing the clock,
    and callbacks handed to :meth:`post` from other threads (socket
    readers, worker pools) wake the sleep and execute on the loop's
    thread.  Everything else - ordering, cancellation, abort wrapping -
    behaves identically, so scenario drivers work unmodified under
    measured time.
    """

    def __init__(self, clock: Optional[Clock] = None) -> None:
        self.clock = clock if clock is not None else VirtualClock()
        #: True when this loop runs against real time (sleeps) rather
        #: than a virtual clock (teleports).
        self.realtime = not isinstance(self.clock, VirtualClock)
        self._heap: List[_Event] = []
        self._seq = itertools.count()
        self._stopped = False
        self._posted: Deque[Callable[[], None]] = collections.deque()
        self._wakeup = threading.Condition()

    @property
    def now(self) -> float:
        return self.clock.now()

    def schedule(self, when: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at absolute time ``when`` (seconds)."""
        if when < self.now:
            if not self.realtime:
                raise ValueError(
                    f"cannot schedule event in the past: now={self.now}, when={when}"
                )
            # Under measured time "the past" is routine - a deadline
            # computed a microsecond ago has already slipped.  Run the
            # callback as soon as possible instead of failing the run.
            when = self.now
        event = _Event(time=when, seq=next(self._seq), callback=callback)
        heapq.heappush(self._heap, event)
        return EventHandle(event)

    def post(self, callback: Callable[[], None]) -> None:
        """Hand ``callback`` to the loop from any thread.

        The only :class:`EventLoop` entry point that is safe to call off
        the loop's own thread.  Posted callbacks run at the loop's
        current time, before any heap event, in posting order; a sleeping
        realtime loop is woken immediately.
        """
        with self._wakeup:
            self._posted.append(callback)
            self._wakeup.notify()

    def schedule_after(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.schedule(self.now + delay, callback)

    def stop(self) -> None:
        """Stop the loop after the currently executing event returns."""
        self._stopped = True

    def run(self, until: Optional[float] = None) -> float:
        """Process events in time order.

        Runs until the heap is empty, ``stop`` is called, or the next
        event would occur after ``until`` (in which case the clock is
        advanced to ``until``).  Returns the final clock reading.

        In realtime mode the loop sleeps (interruptibly - :meth:`post`
        wakes it) until the next event is due, and exits once both the
        heap and the posted queue are empty; callers that expect work
        from other threads keep a future event (deadline, janitor tick)
        in the heap so the loop stays alive to receive it.
        """
        self._stopped = False
        while not self._stopped:
            posted = self._next_posted()
            if posted is not None:
                self._execute(posted, self.now)
                continue
            while self._heap and self._heap[0].cancelled:
                heapq.heappop(self._heap)
            if not self._heap:
                break
            event = self._heap[0]
            if until is not None and event.time > until:
                break
            if self.realtime:
                delay = event.time - self.now
                if delay > 0:
                    with self._wakeup:
                        if not self._posted:
                            self._wakeup.wait(timeout=delay)
                    continue  # re-check: a post may have arrived
            heapq.heappop(self._heap)
            if not self.realtime:
                self.clock.advance_to(event.time)
            self._execute(event.callback, event.time)
        if until is not None and until > self.now and not self.realtime:
            self.clock.advance_to(until)
        return self.now

    def _next_posted(self) -> Optional[Callable[[], None]]:
        with self._wakeup:
            if self._posted:
                return self._posted.popleft()
        return None

    def _execute(self, callback: Callable[[], None], when: float) -> None:
        try:
            callback()
        except RunAbortedError:
            raise
        except Exception as exc:
            origin = getattr(
                callback, "__qualname__", None
            ) or repr(callback)
            raise RunAbortedError(
                f"event callback raised at t={when:.6f}s "
                f"(origin {origin}): {exc!r}",
                time=when,
                origin=origin,
                cause=exc,
            ) from exc

    def pending(self) -> int:
        """Number of not-yet-cancelled events in the queue."""
        return sum(1 for e in self._heap if not e.cancelled)

    def next_event_time(self) -> Optional[float]:
        """Time of the earliest pending event, or ``None`` if idle."""
        for event in sorted(self._heap):
            if not event.cancelled:
                return event.time
        return None
