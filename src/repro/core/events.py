"""Discrete-event simulation engine and clock abstractions.

The MLPerf Inference scenarios are defined in terms of wall-clock time:
Poisson arrivals in the server scenario, fixed arrival intervals in
multistream, a 60-second minimum run duration, and so on.  Running the
paper's query counts (270,336 queries for a 99th-percentile guarantee) in
real time would take hours, exactly as the paper notes for multistream
runs (2.5-7.0 hours).  This module provides a virtual-time event loop so
the same scenario logic executes in milliseconds while preserving the
timing semantics exactly.

Two clock implementations are provided:

* :class:`VirtualClock` - advanced only by the event loop; deterministic.
* :class:`WallClock` - reads ``time.monotonic``; used when a real backend
  must be measured (its measured durations are then replayed as virtual
  service times, see ``repro.sut.backend``).

The event loop is intentionally small: a heap of ``(time, sequence,
callback)`` entries.  The sequence number guarantees FIFO ordering among
events scheduled for the same instant, which matters for reproducibility
of query logs.
"""

from __future__ import annotations

import heapq
import itertools
import time as _time
from dataclasses import dataclass, field
from typing import Callable, List, Optional


class RunAbortedError(RuntimeError):
    """An event callback raised and the run cannot continue.

    Wraps the original exception with the event-loop context a bare
    traceback loses: the virtual time at which the event fired and the
    callback that owned it.  The LoadGen converts this into an INVALID
    run result instead of crashing the whole process.
    """

    def __init__(self, message: str, *, time: float, origin: str,
                 cause: Optional[BaseException] = None) -> None:
        super().__init__(message)
        self.time = time
        self.origin = origin
        self.cause = cause


class Clock:
    """Minimal time source interface used throughout the benchmark."""

    def now(self) -> float:
        """Return the current time in seconds."""
        raise NotImplementedError


class WallClock(Clock):
    """Real time, via ``time.monotonic``."""

    def now(self) -> float:
        return _time.monotonic()


class VirtualClock(Clock):
    """Simulated time, advanced explicitly by an :class:`EventLoop`."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance_to(self, t: float) -> None:
        """Move the clock forward to ``t``.  Time never runs backwards."""
        if t < self._now:
            raise ValueError(
                f"clock cannot run backwards: now={self._now}, target={t}"
            )
        self._now = t


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Handle returned by :meth:`EventLoop.schedule`; allows cancellation."""

    def __init__(self, event: _Event) -> None:
        self._event = event

    def cancel(self) -> None:
        self._event.cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def time(self) -> float:
        return self._event.time


class EventLoop:
    """A deterministic discrete-event loop over a :class:`VirtualClock`.

    Events are callbacks scheduled at absolute virtual times.  ``run``
    drains the heap; each callback may schedule further events.  The loop
    is single-threaded, which makes every benchmark run reproducible given
    the same seeds.
    """

    def __init__(self, clock: Optional[VirtualClock] = None) -> None:
        self.clock = clock if clock is not None else VirtualClock()
        self._heap: List[_Event] = []
        self._seq = itertools.count()
        self._stopped = False

    @property
    def now(self) -> float:
        return self.clock.now()

    def schedule(self, when: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at absolute time ``when`` (seconds)."""
        if when < self.now:
            raise ValueError(
                f"cannot schedule event in the past: now={self.now}, when={when}"
            )
        event = _Event(time=when, seq=next(self._seq), callback=callback)
        heapq.heappush(self._heap, event)
        return EventHandle(event)

    def schedule_after(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.schedule(self.now + delay, callback)

    def stop(self) -> None:
        """Stop the loop after the currently executing event returns."""
        self._stopped = True

    def run(self, until: Optional[float] = None) -> float:
        """Process events in time order.

        Runs until the heap is empty, ``stop`` is called, or the next
        event would occur after ``until`` (in which case the clock is
        advanced to ``until``).  Returns the final clock reading.
        """
        self._stopped = False
        while self._heap and not self._stopped:
            event = self._heap[0]
            if event.cancelled:
                heapq.heappop(self._heap)
                continue
            if until is not None and event.time > until:
                break
            heapq.heappop(self._heap)
            self.clock.advance_to(event.time)
            try:
                event.callback()
            except RunAbortedError:
                raise
            except Exception as exc:
                origin = getattr(
                    event.callback, "__qualname__", None
                ) or repr(event.callback)
                raise RunAbortedError(
                    f"event callback raised at t={event.time:.6f}s "
                    f"(origin {origin}): {exc!r}",
                    time=event.time,
                    origin=origin,
                    cause=exc,
                ) from exc
        if until is not None and until > self.now:
            self.clock.advance_to(until)
        return self.now

    def pending(self) -> int:
        """Number of not-yet-cancelled events in the queue."""
        return sum(1 for e in self._heap if not e.cancelled)

    def next_event_time(self) -> Optional[float]:
        """Time of the earliest pending event, or ``None`` if idle."""
        for event in sorted(self._heap):
            if not event.cancelled:
                return event.time
        return None
