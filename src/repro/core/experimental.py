"""Experimental scenarios beyond the v0.5 four (paper Sections I, IV-B).

The paper names two extensions the decoupled LoadGen design was built to
absorb: a **burst mode** ("new scenarios (e.g., 'burst' mode)") and a
**multitenancy mode** ("the LoadGen is extensible to support more
scenarios, such as a multitenancy mode where the SUT must continuously
serve multiple models while maintaining QoS constraints").

This module implements burst mode: bursts of ``burst_size`` single-
sample queries arrive back to back, with burst *start* times drawn from
a Poisson process - the traffic shape of, say, a camera trap or a
scroll-triggered feed ranker.  The metric mirrors the server scenario
(sustainable burst rate under the task's QoS bound), and the same
validity machinery applies: bursty traffic at an equal average sample
rate is strictly harder than smooth Poisson arrivals, which the
``benchmarks/test_ext_burst_mode.py`` ablation quantifies.

Multitenancy lives in ``repro.harness.multitenant`` (it composes
existing scenario drivers over a shared device rather than defining a
new arrival process).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from .config import Scenario, Task, TestSettings, task_rules
from .events import EventLoop, RunAbortedError, VirtualClock
from .loadgen import LoadGenResult
from .logging import QueryLog
from .metrics import compute_metrics, empty_metrics
from .query import Query
from .sampler import SampleSelector
from .scenarios import PerformanceSource, ScenarioDriver
from .sut import QuerySampleLibrary, SystemUnderTest
from .validation import validate_run


@dataclass(frozen=True)
class BurstSettings:
    """Configuration of one burst-mode run."""

    task: Task
    #: Queries per burst (all issued at the same instant).
    burst_size: int = 8
    #: Average bursts per second (Poisson over burst start times).
    bursts_per_second: float = 1.0
    #: QoS bound per query; defaults to the task's Table III server bound.
    latency_bound: Optional[float] = None
    min_query_count: int = 4_096
    min_duration: float = 2.0
    seed: int = 0xB0B5

    def __post_init__(self) -> None:
        if self.burst_size < 1:
            raise ValueError(f"burst_size must be >= 1, got {self.burst_size}")
        if self.bursts_per_second <= 0:
            raise ValueError("bursts_per_second must be positive")

    @property
    def resolved_bound(self) -> float:
        if self.latency_bound is not None:
            return self.latency_bound
        return task_rules(self.task).server_latency_bound

    @property
    def average_qps(self) -> float:
        return self.burst_size * self.bursts_per_second

    def to_test_settings(self) -> TestSettings:
        """The equivalent server-scenario settings (for validation)."""
        return TestSettings(
            scenario=Scenario.SERVER,
            task=self.task,
            server_target_qps=self.average_qps,
            server_latency_bound=self.resolved_bound,
            min_query_count=self.min_query_count,
            min_duration=self.min_duration,
            seed=self.seed,
        )


class BurstDriver(ScenarioDriver):
    """Poisson-spaced bursts of back-to-back single-sample queries."""

    scenario = Scenario.SERVER   # shares the server metric & validation

    def __init__(self, loop, settings: TestSettings, sut, source, log,
                 burst_size: int) -> None:
        super().__init__(loop, settings, sut, source, log)
        self.burst_size = burst_size
        self._arrival_rng = np.random.default_rng(
            np.random.SeedSequence(settings.seed).spawn(1)[0]
        )

    @property
    def bursts_per_second(self) -> float:
        return self.settings.server_target_qps / self.burst_size

    def start(self) -> None:
        self.stats.start_time = self.loop.now
        self._schedule_next_burst()

    def _schedule_next_burst(self) -> None:
        gap = self._arrival_rng.exponential(1.0 / self.bursts_per_second)
        self.loop.schedule_after(gap, self._burst)

    def _burst(self) -> None:
        for _ in range(self.burst_size):
            indices = self.source.next(1)
            if indices is None:
                self._close_issue_phase()
                return
            self._issue(indices, scheduled_time=self.loop.now)
        if self._should_issue_more():
            self._schedule_next_burst()
        else:
            self._close_issue_phase()

    def on_completion(self, query: Query) -> None:
        """Burst queries are independent; nothing to do on completion."""


def run_burst_benchmark(
    sut: SystemUnderTest,
    qsl: QuerySampleLibrary,
    burst: BurstSettings,
) -> LoadGenResult:
    """Execute one burst-mode run and return the standard result."""
    settings = burst.to_test_settings()
    total = qsl.total_sample_count
    budget = min(qsl.performance_sample_count, total)
    loaded = list(range(budget))
    qsl.load_samples(loaded)
    try:
        loop = EventLoop(VirtualClock())
        log = QueryLog()
        source = PerformanceSource(SampleSelector(loaded, seed=burst.seed))
        driver = BurstDriver(loop, settings, sut, source, log,
                             burst_size=burst.burst_size)
        sut.start_run(loop, driver.handle_completion)
        driver.start()
        try:
            loop.run()
        except RunAbortedError as abort:
            driver.stats.aborted = str(abort)
        if log.completed_records():
            metrics = compute_metrics(log, settings)
        else:
            metrics = empty_metrics(log, settings)
        validity = validate_run(log, settings, driver.stats)
        return LoadGenResult(settings=settings, log=log, metrics=metrics,
                             validity=validity, loaded_indices=loaded,
                             stats=driver.stats)
    finally:
        qsl.unload_samples(loaded)


def find_max_burst_rate(
    sut_factory: Callable[[], SystemUnderTest],
    qsl: QuerySampleLibrary,
    burst: BurstSettings,
    relative_tolerance: float = 0.1,
    max_probes: int = 30,
    min_rate: float = 1e-3,
) -> Optional[float]:
    """Highest average QPS (as ``burst_size`` x bursts/s) that stays valid.

    Returns ``None`` when no rate down to ``min_rate`` qualifies.
    """
    probes = 0

    def valid_at(bursts_per_second: float) -> bool:
        nonlocal probes
        probes += 1
        probe = BurstSettings(
            task=burst.task, burst_size=burst.burst_size,
            bursts_per_second=bursts_per_second,
            latency_bound=burst.latency_bound,
            min_query_count=burst.min_query_count,
            min_duration=burst.min_duration, seed=burst.seed,
        )
        return run_burst_benchmark(sut_factory(), qsl, probe).valid

    rate = burst.bursts_per_second
    if valid_at(rate):
        lo = rate
        hi = rate
        while probes < max_probes:
            hi *= 4.0
            if not valid_at(hi):
                break
            lo = hi
        else:
            return lo * burst.burst_size
    else:
        hi = rate
        lo = None
        while probes < max_probes and hi / 4.0 >= min_rate:
            candidate = hi / 4.0
            if valid_at(candidate):
                lo = candidate
                break
            hi = candidate
        if lo is None:
            return None

    while hi / lo > 1.0 + relative_tolerance and probes < max_probes:
        mid = math.sqrt(lo * hi)
        if valid_at(mid):
            lo = mid
        else:
            hi = mid
    return lo * burst.burst_size
