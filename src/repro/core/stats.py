"""Statistical query requirements (paper Section III-D, Table IV).

MLPerf Inference sizes each run so the reported tail latency is
statistically meaningful: with confidence ``C`` the true tail-latency
percentile lies within ``margin`` of the measurement.  The paper fixes
``C = 99%`` and sets the margin to one-twentieth of the distance between
the tail-latency percentile and 100% (Equation 1), then derives the
required number of queries from the normal approximation to a binomial
proportion (Equation 2) - the same math as sizing an electoral poll.

Finally, the count is rounded up to the next multiple of 2^13 = 8192
(Table IV: 23,886 -> 24,576; 50,425 -> 57,344; 262,742 -> 270,336).

The inverse normal CDF is implemented from scratch (Acklam's rational
approximation, |relative error| < 1.15e-9) so the core library has no
scipy dependency; the test suite cross-checks it against scipy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Confidence level used throughout MLPerf Inference v0.5.
DEFAULT_CONFIDENCE = 0.99

#: Query counts are rounded up to a multiple of 2^13.
QUERY_ROUNDING_UNIT = 2 ** 13


def inverse_normal_cdf(p: float) -> float:
    """Return ``z`` such that ``Phi(z) = p`` for the standard normal CDF.

    Uses Peter Acklam's rational approximation with one step of Halley's
    method refinement, giving near machine precision over (0, 1).
    """
    if not 0.0 < p < 1.0:
        raise ValueError(f"p must be in (0, 1), got {p}")

    # Coefficients for the central and tail rational approximations.
    a = (-3.969683028665376e+01, 2.209460984245205e+02,
         -2.759285104469687e+02, 1.383577518672690e+02,
         -3.066479806614716e+01, 2.506628277459239e+00)
    b = (-5.447609879822406e+01, 1.615858368580409e+02,
         -1.556989798598866e+02, 6.680131188771972e+01,
         -1.328068155288572e+01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01,
         -2.400758277161838e+00, -2.549732539343734e+00,
         4.374664141464968e+00, 2.938163982698783e+00)
    d = (7.784695709041462e-03, 3.224671290700398e-01,
         2.445134137142996e+00, 3.754408661907416e+00)

    p_low = 0.02425
    p_high = 1.0 - p_low

    if p < p_low:
        q = math.sqrt(-2.0 * math.log(p))
        x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / \
            ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    elif p <= p_high:
        q = p - 0.5
        r = q * q
        x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / \
            (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0)
    else:
        q = math.sqrt(-2.0 * math.log(1.0 - p))
        x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / \
            ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)

    # One Halley refinement using erfc for the residual.
    e = 0.5 * math.erfc(-x / math.sqrt(2.0)) - p
    u = e * math.sqrt(2.0 * math.pi) * math.exp(x * x / 2.0)
    x = x - u / (1.0 + x * u / 2.0)
    return x


def normal_cdf(z: float) -> float:
    """Standard normal CDF, via ``erfc`` for numerical stability."""
    return 0.5 * math.erfc(-z / math.sqrt(2.0))


def margin_for_tail_latency(tail_latency: float) -> float:
    """Equation 1: margin = (1 - TailLatency) / 20."""
    if not 0.0 < tail_latency < 1.0:
        raise ValueError(f"tail_latency must be in (0, 1), got {tail_latency}")
    return (1.0 - tail_latency) / 20.0


def queries_for_confidence(
    tail_latency: float,
    confidence: float = DEFAULT_CONFIDENCE,
    margin: float = None,
) -> int:
    """Equation 2: the raw (unrounded) number of queries required.

    ``NumQueries = NormsInv((1-C)/2)^2 * p*(1-p) / margin^2`` where
    ``p`` is the tail-latency percentile.  The result is rounded to the
    nearest integer, matching Table IV exactly (the 95th-percentile row
    is 50,425 = round(50,425.2), not ceil).
    """
    if margin is None:
        margin = margin_for_tail_latency(tail_latency)
    if margin <= 0:
        raise ValueError(f"margin must be positive, got {margin}")
    z = inverse_normal_cdf((1.0 - confidence) / 2.0)
    raw = (z * z) * tail_latency * (1.0 - tail_latency) / (margin * margin)
    return int(round(raw))


def round_up_to_unit(count: int, unit: int = QUERY_ROUNDING_UNIT) -> int:
    """Round ``count`` up to the nearest multiple of ``unit``."""
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    return ((count + unit - 1) // unit) * unit


def required_queries(
    tail_latency: float,
    confidence: float = DEFAULT_CONFIDENCE,
) -> int:
    """Full Table IV pipeline: Eq. 1 margin, Eq. 2 count, 2^13 round-up."""
    return round_up_to_unit(queries_for_confidence(tail_latency, confidence))


@dataclass(frozen=True)
class QueryRequirement:
    """One row of Table IV."""

    tail_latency: float
    confidence: float
    margin: float
    inferences: int
    rounded_inferences: int

    @classmethod
    def for_percentile(
        cls, tail_latency: float, confidence: float = DEFAULT_CONFIDENCE
    ) -> "QueryRequirement":
        margin = margin_for_tail_latency(tail_latency)
        raw = queries_for_confidence(tail_latency, confidence, margin)
        return cls(
            tail_latency=tail_latency,
            confidence=confidence,
            margin=margin,
            inferences=raw,
            rounded_inferences=round_up_to_unit(raw),
        )


def table_iv() -> list:
    """Reproduce Table IV: requirements at the 90th/95th/99th percentiles."""
    return [QueryRequirement.for_percentile(p) for p in (0.90, 0.95, 0.99)]


def percentile(values, pct: float) -> float:
    """Nearest-rank percentile as used for MLPerf latency reporting.

    The p-th percentile is the smallest value such that at least ``p`` of
    the observations are <= that value (nearest-rank definition, which is
    what a latency SLO check needs: no interpolation between samples).
    """
    if not 0.0 < pct <= 1.0:
        raise ValueError(f"pct must be in (0, 1], got {pct}")
    ordered = sorted(values)
    if not ordered:
        raise ValueError("cannot take a percentile of no values")
    rank = math.ceil(pct * len(ordered))
    return ordered[rank - 1]
