"""Deterministic query-sample selection (paper Sections IV-B and V-B).

The LoadGen "produces queries by randomly selecting query samples with
replacement from the data set"; the pattern is fully determined by the
PRNG seed, which is why optimizations keyed to the official seed are
prohibited and why the alternate-random-seed audit test exists.

In accuracy mode the LoadGen instead walks the entire data set exactly
once so the accuracy script can evaluate the full benchmark data set.
"""

from __future__ import annotations

import itertools
from typing import Iterator, List, Sequence

import numpy as np

from .query import Query, QuerySample


class SampleSelector:
    """Draws sample indices from the loaded performance set.

    Performance mode draws uniformly *with replacement* - duplicate
    indices are expected and the caching-detection audit relies on them.
    """

    def __init__(self, loaded_indices: Sequence[int], seed: int) -> None:
        if not loaded_indices:
            raise ValueError("loaded_indices must not be empty")
        self._indices = np.asarray(loaded_indices, dtype=np.int64)
        self._rng = np.random.default_rng(seed)

    def draw(self, count: int) -> List[int]:
        """Draw ``count`` indices with replacement."""
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        picks = self._rng.integers(0, len(self._indices), size=count)
        return [int(self._indices[p]) for p in picks]


class QueryFactory:
    """Assembles :class:`Query` objects with unique query and sample ids.

    Sample ids are unique per issued sample instance (two draws of data
    set index 7 get different ids), mirroring the real LoadGen's
    ``QuerySampleId`` semantics.
    """

    def __init__(self) -> None:
        self._query_ids = itertools.count(1)
        self._sample_ids = itertools.count(1)

    def make_query(self, sample_indices: Sequence[int], issue_time: float = 0.0) -> Query:
        samples = tuple(
            QuerySample(id=next(self._sample_ids), index=int(idx))
            for idx in sample_indices
        )
        return Query(id=next(self._query_ids), samples=samples, issue_time=issue_time)


def accuracy_mode_indices(total_sample_count: int) -> List[int]:
    """Accuracy mode visits every data set sample exactly once."""
    if total_sample_count < 1:
        raise ValueError("data set is empty")
    return list(range(total_sample_count))


def chunk_indices(indices: Sequence[int], chunk: int) -> Iterator[List[int]]:
    """Split ``indices`` into consecutive chunks of size ``chunk``.

    The final chunk may be short.  Used by accuracy mode to form queries
    whose sample count matches the scenario (N for multistream).
    """
    if chunk < 1:
        raise ValueError(f"chunk must be >= 1, got {chunk}")
    for start in range(0, len(indices), chunk):
        yield list(indices[start:start + chunk])
