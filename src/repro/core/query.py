"""Query, sample, and response types exchanged between LoadGen and SUT.

Terminology follows the paper (Section IV): a *sample* is one unit of
inference input (one image, one sentence); a *query* is a request for
inference on one or more samples.  Single-stream and server queries carry
one sample, multistream queries carry N, and the offline scenario issues
a single query containing the whole performance set (>= 24,576 samples).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, NamedTuple, Optional, Tuple


class SessionTurn(NamedTuple):
    """Conversation-turn coordinates carried by a session-workload query.

    ``session_id`` identifies the user conversation; ``turn_index`` is
    this query's zero-based position within it and ``turn_count`` the
    conversation's planned length, so the referee can tell a finished
    session from one whose tail was lost.  ``prefix_tokens`` is the
    context shared with earlier turns (what a prefix cache can reuse),
    ``new_tokens`` the fresh prompt this turn appends, and
    ``response_tokens`` the answer's planned length - together they
    determine the next turn's prefix, which is what lets the
    prefix-cache audit recompute expected hits from the replay graph
    alone (see ``docs/sessions.md``).
    """

    session_id: int
    turn_index: int
    turn_count: int
    prefix_tokens: int
    new_tokens: int
    response_tokens: int


class QuerySample(NamedTuple):
    """One sample within a query.

    ``id`` uniquely identifies the sample instance within the run (used
    to match responses to issues); ``index`` is the position of the
    underlying data in the query sample library, so duplicate indices can
    and do occur - the sampler draws with replacement.

    A NamedTuple rather than a dataclass: offline and multistream
    queries carry tens of thousands of samples, so construction cost is
    on the benchmark's own hot path.
    """

    id: int
    index: int


@dataclass
class Query:
    """A request for inference on one or more samples.

    ``contiguous`` records that the samples' data are adjacent in memory,
    which the multistream and offline rules guarantee so that SUTs need
    not copy samples into a contiguous region before starting inference.
    """

    id: int
    samples: Tuple[QuerySample, ...]
    issue_time: float = 0.0
    contiguous: bool = True
    #: Set on session-workload queries: which conversation turn this is.
    #: ``None`` for the classic independent-query scenarios, so nothing
    #: downstream pays for sessions it does not use.
    session: Optional[SessionTurn] = None

    def __post_init__(self) -> None:
        if not self.samples:
            raise ValueError("a query must contain at least one sample")

    @property
    def sample_count(self) -> int:
        return len(self.samples)

    @property
    def sample_indices(self) -> Tuple[int, ...]:
        return tuple(s.index for s in self.samples)


class QueryFailure:
    """A SUT's admission that it cannot answer a query.

    Delivered through the same responder channel as a normal response
    list (``SutBase.fail``), so the referee hears about permanent
    failures - retry exhaustion, output-count mismatches, backend
    crashes - instead of waiting forever for responses that will never
    come.  The LoadGen records the query as *failed* (not completed) and
    the run is INVALID, but it terminates cleanly.
    """

    __slots__ = ("reason",)

    def __init__(self, reason: str) -> None:
        self.reason = reason

    def __repr__(self) -> str:
        return f"QueryFailure(reason={self.reason!r})"


class StreamChunk:
    """One increment of a streamed answer.

    Streaming SUTs deliver their output as an ordered sequence of
    chunks through the same responder channel used for terminal
    outcomes (``SutBase.emit_chunk``), followed by a normal response
    list once the stream ends.  ``seq`` numbers chunks from zero;
    ``last`` marks the final chunk; ``token_count`` is how many output
    tokens the chunk carries (chunks may batch several tokens, as real
    streaming APIs do).  A stream that restarts - because a retry or
    reroute reissued the query - begins again at ``seq == 0``; the
    referee counts the restart and keeps only the final attempt's
    timing.

    Slotted: chunks outnumber queries by the mean token count, so they
    sit on the hottest completion path in a streaming run.
    """

    __slots__ = ("query_id", "seq", "token_count", "last", "data")

    def __init__(
        self,
        query_id: int,
        seq: int,
        token_count: int = 1,
        last: bool = False,
        data: object = None,
    ) -> None:
        self.query_id = query_id
        self.seq = seq
        self.token_count = token_count
        self.last = last
        self.data = data

    def __repr__(self) -> str:
        return (
            f"StreamChunk(query_id={self.query_id}, seq={self.seq}, "
            f"token_count={self.token_count}, last={self.last})"
        )


class QuerySampleResponse:
    """The SUT's answer for one sample of a query.

    ``data`` is the raw inference output (label index, detection list,
    token ids, ...) and is only retained in accuracy mode or when the
    accuracy-verification audit randomly logs performance-mode results.
    Slotted for the same hot-path reason as :class:`QuerySample`.
    """

    __slots__ = ("sample_id", "data")

    def __init__(self, sample_id: int, data: object = None) -> None:
        self.sample_id = sample_id
        self.data = data

    def __repr__(self) -> str:
        return f"QuerySampleResponse(sample_id={self.sample_id}, data={self.data!r})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, QuerySampleResponse)
            and self.sample_id == other.sample_id
            and self.data == other.data
        )


@dataclass
class QueryRecord:
    """Everything the LoadGen logs about one query's lifecycle."""

    query: Query
    issue_time: float
    completion_time: Optional[float] = None
    responses: Optional[List[QuerySampleResponse]] = None
    scheduled_time: Optional[float] = None
    #: Set when the query resolved as a failure (malformed completion,
    #: retry exhaustion, ...) rather than a clean response.
    failure_reason: Optional[str] = None
    failure_time: Optional[float] = None
    #: Streaming lifecycle (all None/zero for non-streamed queries).
    #: Chunk times are the *current attempt's*: a stream restart resets
    #: them, so TTFT/TPOT reflect the attempt that actually answered.
    first_chunk_time: Optional[float] = None
    last_chunk_time: Optional[float] = None
    chunk_count: int = 0
    token_count: int = 0
    #: True once a chunk with ``last=True`` arrived for the current
    #: attempt; a streamed record completing without it is *truncated*.
    stream_closed: bool = False
    #: How many times the stream restarted at ``seq == 0`` (retries,
    #: reroutes).  Informational, not misbehavior.
    stream_restarts: int = 0

    @property
    def latency(self) -> float:
        """Seconds from issue to completion (the timed interval)."""
        if self.completion_time is None:
            raise ValueError(f"query {self.query.id} never completed")
        return self.completion_time - self.issue_time

    @property
    def completed(self) -> bool:
        return self.completion_time is not None

    @property
    def failed(self) -> bool:
        return self.failure_reason is not None

    @property
    def resolved(self) -> bool:
        """The query reached *some* terminal state (clean or failed)."""
        return self.completed or self.failed

    @property
    def streamed(self) -> bool:
        """At least one chunk arrived for this query."""
        return self.first_chunk_time is not None

    @property
    def ttft(self) -> Optional[float]:
        """Time to first token: first chunk minus issue, in seconds.

        ``None`` until a chunk arrives.  For non-streamed queries the
        caller falls back to the full latency (the whole answer *is*
        the first token).
        """
        if self.first_chunk_time is None:
            return None
        return self.first_chunk_time - self.issue_time

    @property
    def session_id(self) -> Optional[int]:
        """The owning conversation's id, or None for independent queries."""
        turn = self.query.session
        return None if turn is None else turn.session_id

    @property
    def turn_index(self) -> Optional[int]:
        """This query's zero-based turn position within its session."""
        turn = self.query.session
        return None if turn is None else turn.turn_index

    @property
    def tpot(self) -> Optional[float]:
        """Time per output token after the first, in seconds.

        ``(last_chunk - first_chunk) / (tokens - 1)``; zero for a
        single-token stream (there is no inter-token interval to
        measure); ``None`` for non-streamed queries.
        """
        if self.first_chunk_time is None or self.last_chunk_time is None:
            return None
        if self.token_count <= 1:
            return 0.0
        return (self.last_chunk_time - self.first_chunk_time) / (
            self.token_count - 1
        )
