"""Query, sample, and response types exchanged between LoadGen and SUT.

Terminology follows the paper (Section IV): a *sample* is one unit of
inference input (one image, one sentence); a *query* is a request for
inference on one or more samples.  Single-stream and server queries carry
one sample, multistream queries carry N, and the offline scenario issues
a single query containing the whole performance set (>= 24,576 samples).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, NamedTuple, Optional, Tuple


class QuerySample(NamedTuple):
    """One sample within a query.

    ``id`` uniquely identifies the sample instance within the run (used
    to match responses to issues); ``index`` is the position of the
    underlying data in the query sample library, so duplicate indices can
    and do occur - the sampler draws with replacement.

    A NamedTuple rather than a dataclass: offline and multistream
    queries carry tens of thousands of samples, so construction cost is
    on the benchmark's own hot path.
    """

    id: int
    index: int


@dataclass
class Query:
    """A request for inference on one or more samples.

    ``contiguous`` records that the samples' data are adjacent in memory,
    which the multistream and offline rules guarantee so that SUTs need
    not copy samples into a contiguous region before starting inference.
    """

    id: int
    samples: Tuple[QuerySample, ...]
    issue_time: float = 0.0
    contiguous: bool = True

    def __post_init__(self) -> None:
        if not self.samples:
            raise ValueError("a query must contain at least one sample")

    @property
    def sample_count(self) -> int:
        return len(self.samples)

    @property
    def sample_indices(self) -> Tuple[int, ...]:
        return tuple(s.index for s in self.samples)


class QueryFailure:
    """A SUT's admission that it cannot answer a query.

    Delivered through the same responder channel as a normal response
    list (``SutBase.fail``), so the referee hears about permanent
    failures - retry exhaustion, output-count mismatches, backend
    crashes - instead of waiting forever for responses that will never
    come.  The LoadGen records the query as *failed* (not completed) and
    the run is INVALID, but it terminates cleanly.
    """

    __slots__ = ("reason",)

    def __init__(self, reason: str) -> None:
        self.reason = reason

    def __repr__(self) -> str:
        return f"QueryFailure(reason={self.reason!r})"


class QuerySampleResponse:
    """The SUT's answer for one sample of a query.

    ``data`` is the raw inference output (label index, detection list,
    token ids, ...) and is only retained in accuracy mode or when the
    accuracy-verification audit randomly logs performance-mode results.
    Slotted for the same hot-path reason as :class:`QuerySample`.
    """

    __slots__ = ("sample_id", "data")

    def __init__(self, sample_id: int, data: object = None) -> None:
        self.sample_id = sample_id
        self.data = data

    def __repr__(self) -> str:
        return f"QuerySampleResponse(sample_id={self.sample_id}, data={self.data!r})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, QuerySampleResponse)
            and self.sample_id == other.sample_id
            and self.data == other.data
        )


@dataclass
class QueryRecord:
    """Everything the LoadGen logs about one query's lifecycle."""

    query: Query
    issue_time: float
    completion_time: Optional[float] = None
    responses: Optional[List[QuerySampleResponse]] = None
    scheduled_time: Optional[float] = None
    #: Set when the query resolved as a failure (malformed completion,
    #: retry exhaustion, ...) rather than a clean response.
    failure_reason: Optional[str] = None
    failure_time: Optional[float] = None

    @property
    def latency(self) -> float:
        """Seconds from issue to completion (the timed interval)."""
        if self.completion_time is None:
            raise ValueError(f"query {self.query.id} never completed")
        return self.completion_time - self.issue_time

    @property
    def completed(self) -> bool:
        return self.completion_time is not None

    @property
    def failed(self) -> bool:
        return self.failure_reason is not None

    @property
    def resolved(self) -> bool:
        """The query reached *some* terminal state (clean or failed)."""
        return self.completed or self.failed
