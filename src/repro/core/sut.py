"""System-under-test and query-sample-library interfaces (paper Fig. 3).

The benchmark draws a hard boundary between MLPerf-owned components (the
LoadGen, data set, accuracy script) and the submitter-owned SUT.  These
abstract interfaces are that boundary:

* :class:`QuerySampleLibrary` (QSL) wraps the data set.  The LoadGen asks
  the SUT to load a set of samples into memory as an *untimed* operation
  (steps 1-4 in Fig. 3) before any query is issued.
* :class:`SystemUnderTest` (SUT) receives queries and must complete each
  one by calling the responder the LoadGen provides (steps 5-6).

A SUT may complete queries synchronously inside ``issue_query`` or later
via events it schedules on the run's event loop; both styles appear in
``repro.sut``.
"""

from __future__ import annotations

from typing import Callable, List, Protocol, Sequence, runtime_checkable

from .events import EventLoop
from .query import Query, QueryFailure, QuerySampleResponse, StreamChunk

#: Signature of the completion callback handed to the SUT.  The second
#: argument is normally the response list; a SUT may instead deliver a
#: :class:`~repro.core.query.QueryFailure` (see :meth:`SutBase.fail`) to
#: report that the query will never complete cleanly, or a
#: :class:`~repro.core.query.StreamChunk` (see :meth:`SutBase.emit_chunk`)
#: to stream an incremental piece of the answer.  Chunks are *progress*,
#: not a terminal outcome: a streaming SUT still delivers the normal
#: response list (or a failure) after its last chunk, which is what lets
#: every non-streaming consumer of this channel keep working unchanged.
Responder = Callable[[Query, List[QuerySampleResponse]], None]


@runtime_checkable
class QuerySampleLibrary(Protocol):
    """The LoadGen's view of a data set."""

    @property
    def name(self) -> str: ...

    @property
    def total_sample_count(self) -> int:
        """Number of samples in the full (accuracy-mode) data set."""
        ...

    @property
    def performance_sample_count(self) -> int:
        """Number of samples guaranteed to fit in memory for perf mode."""
        ...

    def load_samples(self, indices: Sequence[int]) -> None:
        """Untimed: bring the given samples into memory."""
        ...

    def unload_samples(self, indices: Sequence[int]) -> None:
        """Untimed: release the given samples."""
        ...

    def get_sample(self, index: int) -> object:
        """Return the (preprocessed) input data for one sample."""
        ...


@runtime_checkable
class SystemUnderTest(Protocol):
    """The submitter-owned inference system."""

    @property
    def name(self) -> str: ...

    def start_run(self, loop: EventLoop, responder: Responder) -> None:
        """Called once before the first query of a run.

        Untimed setup (compilation, cache warm-up, weight layout) belongs
        here; the clock has not started counting toward any latency.
        """
        ...

    def issue_query(self, query: Query) -> None:
        """Receive one query.  Must eventually invoke the responder."""
        ...

    def flush(self) -> None:
        """Hint that no further queries will arrive (offline scenario)."""
        ...


class SutBase:
    """Convenience base class implementing the boring parts of the SUT
    protocol; concrete SUTs override :meth:`issue_query`."""

    def __init__(self, name: str) -> None:
        self._name = name
        self._loop: EventLoop = None
        self._responder: Responder = None

    @property
    def name(self) -> str:
        return self._name

    @property
    def loop(self) -> EventLoop:
        if self._loop is None:
            raise RuntimeError("start_run was never called on this SUT")
        return self._loop

    def start_run(self, loop: EventLoop, responder: Responder) -> None:
        self._loop = loop
        self._responder = responder

    def complete(self, query: Query, responses: List[QuerySampleResponse]) -> None:
        """Report ``query`` finished with ``responses`` to the LoadGen."""
        if self._responder is None:
            raise RuntimeError("start_run was never called on this SUT")
        self._responder(query, responses)

    def fail(self, query: Query, reason: str) -> None:
        """Report that ``query`` will never complete cleanly.

        The referee records the failure (the run becomes INVALID with a
        "malformed responses" verdict) but keeps running - a misbehaving
        backend must not kill the harness.
        """
        if self._responder is None:
            raise RuntimeError("start_run was never called on this SUT")
        self._responder(query, QueryFailure(reason))

    def emit_chunk(self, query: Query, chunk: StreamChunk) -> None:
        """Stream one incremental piece of ``query``'s answer.

        Chunks ride the same responder channel as terminal outcomes, so
        every wrapper in the stack (retry, healing, fleet, network) sees
        them without a second callback plumbing.  The stream must end
        with a chunk marked ``last=True`` followed by the usual
        :meth:`complete` (or :meth:`fail`) call.
        """
        if self._responder is None:
            raise RuntimeError("start_run was never called on this SUT")
        self._responder(query, chunk)

    def issue_query(self, query: Query) -> None:
        raise NotImplementedError

    def flush(self) -> None:
        """Default: nothing buffered."""
