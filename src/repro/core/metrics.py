"""Scenario performance metrics (paper Table II).

Each scenario reports a different figure of merit:

* single-stream: 90th-percentile query latency (seconds);
* multistream:   number of concurrent streams N sustained under the bound;
* server:        Poisson queries/second sustained under the QoS bound;
* offline:       throughput in samples/second.

The functions here compute those metrics from a completed
:class:`~repro.core.logging.QueryLog`; validity checking lives in
``repro.core.validation``.
"""

from __future__ import annotations

from dataclasses import dataclass

from .config import Scenario, TestSettings
from .logging import QueryLog
from .stats import percentile


@dataclass(frozen=True)
class ScenarioMetrics:
    """Summary statistics computed from one run's query log."""

    scenario: Scenario
    query_count: int
    sample_count: int
    duration: float
    latency_mean: float
    latency_p50: float
    latency_p90: float
    latency_p99: float
    #: Scenario-specific primary metric (Table II).
    primary_metric: float
    primary_metric_name: str
    #: Measured throughput in samples/second over the run window.
    throughput: float


def run_duration(log: QueryLog) -> float:
    """Seconds from first issue to last completion."""
    records = log.completed_records()
    if not records:
        return 0.0
    first = min(r.issue_time for r in records)
    last = max(r.completion_time for r in records)
    return last - first


def scenario_metric_name(scenario: Scenario) -> str:
    """The Table II primary-metric label for ``scenario``."""
    return {
        Scenario.SINGLE_STREAM: "90th-percentile latency (s)",
        Scenario.MULTI_STREAM: "streams",
        Scenario.SERVER: "scheduled queries/s",
        Scenario.OFFLINE: "samples/s",
    }[scenario]


def empty_metrics(log: QueryLog, settings: TestSettings) -> ScenarioMetrics:
    """Zeroed metrics for a run that completed no queries cleanly.

    Such a run is necessarily INVALID, but the referee still reports a
    result object (query counts, zero throughput) rather than crashing -
    the verdict, not an exception, is how a misbehaving SUT surfaces.
    """
    return ScenarioMetrics(
        scenario=settings.scenario,
        query_count=log.query_count,
        sample_count=0,
        duration=0.0,
        latency_mean=0.0,
        latency_p50=0.0,
        latency_p90=0.0,
        latency_p99=0.0,
        primary_metric=0.0,
        primary_metric_name=scenario_metric_name(settings.scenario),
        throughput=0.0,
    )


def compute_metrics(log: QueryLog, settings: TestSettings) -> ScenarioMetrics:
    """Compute the Table II metric (plus latency summary) for a run."""
    latencies = log.latencies()
    if not latencies:
        raise ValueError("run completed no queries; cannot compute metrics")
    duration = run_duration(log)
    sample_count = sum(r.query.sample_count for r in log.completed_records())
    throughput = sample_count / duration if duration > 0 else float("inf")

    scenario = settings.scenario
    name = scenario_metric_name(scenario)
    if scenario is Scenario.SINGLE_STREAM:
        primary = percentile(latencies, 0.90)
    elif scenario is Scenario.MULTI_STREAM:
        primary = float(settings.multistream_samples_per_query)
    elif scenario is Scenario.SERVER:
        primary = settings.server_target_qps
    elif scenario is Scenario.OFFLINE:
        primary = throughput
    else:  # pragma: no cover - exhaustive over the enum
        raise ValueError(f"unknown scenario {scenario}")

    n = len(latencies)
    return ScenarioMetrics(
        scenario=scenario,
        query_count=log.query_count,
        sample_count=sample_count,
        duration=duration,
        latency_mean=sum(latencies) / n,
        latency_p50=percentile(latencies, 0.50),
        latency_p90=percentile(latencies, 0.90),
        latency_p99=percentile(latencies, 0.99),
        primary_metric=primary,
        primary_metric_name=name,
        throughput=throughput,
    )
