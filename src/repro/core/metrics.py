"""Scenario performance metrics (paper Table II).

Each scenario reports a different figure of merit:

* single-stream: 90th-percentile query latency (seconds);
* multistream:   number of concurrent streams N sustained under the bound;
* server:        Poisson queries/second sustained under the QoS bound;
* offline:       throughput in samples/second.

The functions here compute those metrics from a completed
:class:`~repro.core.logging.QueryLog`; validity checking lives in
``repro.core.validation``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .config import Scenario, TestSettings
from .logging import QueryLog
from .query import QueryRecord
from .stats import percentile


@dataclass(frozen=True)
class StreamMetrics:
    """Token-level summary of a streamed run (see ``docs/streaming.md``).

    TTFT is time-to-first-token (issue to first chunk); TPOT is the mean
    inter-token interval after the first token, per query.  *Goodput* is
    the paper-faithful throughput-under-QoS generalisation: queries per
    second counting only queries that met **every** configured SLO.
    """

    #: Clean completions that streamed at least one chunk.
    streamed_query_count: int
    chunk_count: int
    token_count: int
    #: Total stream restarts observed (retries / reroutes); not misbehavior.
    restart_count: int
    ttft_mean: float
    ttft_p50: float
    ttft_p90: float
    ttft_p99: float
    tpot_mean: float
    tpot_p50: float
    tpot_p90: float
    tpot_p99: float
    #: Clean completions that met every configured token SLO.
    slo_compliant_count: int
    ttft_violations: int
    tpot_violations: int
    #: SLO-compliant queries per second over the run window.
    goodput: float


@dataclass(frozen=True)
class SessionMetrics:
    """Per-conversation summary of a session run (``docs/sessions.md``).

    Everything here is derived from the query log alone - sessions are
    reconstructed from the :class:`~repro.core.query.SessionTurn` tags
    on completed records, independently of the driver's bookkeeping, so
    the two can be cross-checked.  *Session latency* is the sum of a
    conversation's turn latencies (the time the user actually spent
    waiting, think time excluded); *turn TTFT* is effective TTFT over
    all session turns, streamed or not.
    """

    #: Distinct conversations with at least one clean completion.
    session_count: int
    #: Conversations whose every planned turn completed cleanly.
    completed_session_count: int
    #: Clean completions carrying a session tag.
    turn_count: int
    turns_per_session_mean: float
    session_latency_mean: float
    session_latency_p50: float
    session_latency_p90: float
    session_latency_p99: float
    turn_ttft_p50: float
    turn_ttft_p90: float
    turn_ttft_p99: float
    #: Fully completed conversations per second over the run window.
    sessions_per_second: float


@dataclass(frozen=True)
class ScenarioMetrics:
    """Summary statistics computed from one run's query log."""

    scenario: Scenario
    query_count: int
    sample_count: int
    duration: float
    latency_mean: float
    latency_p50: float
    latency_p90: float
    latency_p99: float
    #: Scenario-specific primary metric (Table II).
    primary_metric: float
    primary_metric_name: str
    #: Measured throughput in samples/second over the run window.
    throughput: float
    #: Token-level metrics; None when the run streamed no chunks.
    stream: Optional[StreamMetrics] = None
    #: Per-conversation metrics; None when no query carried a session tag.
    session: Optional[SessionMetrics] = None


def run_duration(log: QueryLog) -> float:
    """Seconds from first issue to last completion."""
    records = log.completed_records()
    if not records:
        return 0.0
    first = min(r.issue_time for r in records)
    last = max(r.completion_time for r in records)
    return last - first


def scenario_metric_name(scenario: Scenario) -> str:
    """The Table II primary-metric label for ``scenario``."""
    return {
        Scenario.SINGLE_STREAM: "90th-percentile latency (s)",
        Scenario.MULTI_STREAM: "streams",
        Scenario.SERVER: "scheduled queries/s",
        Scenario.OFFLINE: "samples/s",
        Scenario.SESSION: "completed sessions/s",
    }[scenario]


def empty_metrics(log: QueryLog, settings: TestSettings) -> ScenarioMetrics:
    """Zeroed metrics for a run that completed no queries cleanly.

    Such a run is necessarily INVALID, but the referee still reports a
    result object (query counts, zero throughput) rather than crashing -
    the verdict, not an exception, is how a misbehaving SUT surfaces.
    """
    return ScenarioMetrics(
        scenario=settings.scenario,
        query_count=log.query_count,
        sample_count=0,
        duration=0.0,
        latency_mean=0.0,
        latency_p50=0.0,
        latency_p90=0.0,
        latency_p99=0.0,
        primary_metric=0.0,
        primary_metric_name=scenario_metric_name(settings.scenario),
        throughput=0.0,
    )


def effective_ttft(record: QueryRecord) -> float:
    """TTFT with the non-streamed fallback: a query answered in one
    atomic completion delivered its whole answer as its "first token"."""
    ttft = record.ttft
    return record.latency if ttft is None else ttft


def effective_tpot(record: QueryRecord) -> float:
    """TPOT with the non-streamed fallback (a single atomic answer has
    no inter-token interval, so it contributes zero)."""
    tpot = record.tpot
    return 0.0 if tpot is None else tpot


def record_meets_stream_slos(record: QueryRecord, settings: TestSettings) -> bool:
    """Did this clean completion meet every configured token SLO?"""
    ttft_target = settings.resolved_ttft_target
    if ttft_target is not None and effective_ttft(record) > ttft_target:
        return False
    tpot_target = settings.resolved_tpot_target
    if tpot_target is not None and effective_tpot(record) > tpot_target:
        return False
    return True


def compute_stream_metrics(
    log: QueryLog, settings: TestSettings
) -> Optional[StreamMetrics]:
    """Token-level metrics for a run, or None if nothing streamed."""
    completed = log.completed_records()
    streamed = [r for r in completed if r.streamed]
    if not streamed:
        return None
    duration = run_duration(log)
    # SLO compliance is judged over *all* clean completions (a query
    # that never streamed still either met or missed the targets via
    # the fallback semantics); percentiles are reported over the
    # streamed population, which is what TTFT/TPOT describe.
    ttfts = [effective_ttft(r) for r in streamed]
    tpots = [effective_tpot(r) for r in streamed]
    ttft_target = settings.resolved_ttft_target
    tpot_target = settings.resolved_tpot_target
    ttft_violations = (
        sum(1 for r in completed if effective_ttft(r) > ttft_target)
        if ttft_target is not None else 0
    )
    tpot_violations = (
        sum(1 for r in completed if effective_tpot(r) > tpot_target)
        if tpot_target is not None else 0
    )
    compliant = sum(
        1 for r in completed if record_meets_stream_slos(r, settings)
    )
    n = len(streamed)
    return StreamMetrics(
        streamed_query_count=n,
        chunk_count=sum(r.chunk_count for r in streamed),
        token_count=sum(r.token_count for r in streamed),
        restart_count=sum(r.stream_restarts for r in completed),
        ttft_mean=sum(ttfts) / n,
        ttft_p50=percentile(ttfts, 0.50),
        ttft_p90=percentile(ttfts, 0.90),
        ttft_p99=percentile(ttfts, 0.99),
        tpot_mean=sum(tpots) / n,
        tpot_p50=percentile(tpots, 0.50),
        tpot_p90=percentile(tpots, 0.90),
        tpot_p99=percentile(tpots, 0.99),
        slo_compliant_count=compliant,
        ttft_violations=ttft_violations,
        tpot_violations=tpot_violations,
        goodput=compliant / duration if duration > 0 else float("inf"),
    )


def compute_session_metrics(
    log: QueryLog, settings: TestSettings
) -> Optional[SessionMetrics]:
    """Per-conversation metrics, or None if no query carried a session tag.

    A session counts as *completed* when the log holds a clean
    completion for every one of its planned turns (``turn_count`` from
    the tag) - a referee-side reconstruction that never trusts the
    driver's own counters.
    """
    completed = log.completed_records()
    tagged = [r for r in completed if r.query.session is not None]
    if not tagged:
        return None
    by_session: dict = {}
    for record in tagged:
        by_session.setdefault(record.session_id, []).append(record)
    completed_sessions = 0
    session_latencies = []
    for records in by_session.values():
        planned = records[0].query.session.turn_count
        if len(records) == planned:
            completed_sessions += 1
        session_latencies.append(sum(r.latency for r in records))
    duration = run_duration(log)
    ttfts = [effective_ttft(r) for r in tagged]
    n = len(by_session)
    return SessionMetrics(
        session_count=n,
        completed_session_count=completed_sessions,
        turn_count=len(tagged),
        turns_per_session_mean=len(tagged) / n,
        session_latency_mean=sum(session_latencies) / n,
        session_latency_p50=percentile(session_latencies, 0.50),
        session_latency_p90=percentile(session_latencies, 0.90),
        session_latency_p99=percentile(session_latencies, 0.99),
        turn_ttft_p50=percentile(ttfts, 0.50),
        turn_ttft_p90=percentile(ttfts, 0.90),
        turn_ttft_p99=percentile(ttfts, 0.99),
        sessions_per_second=(
            completed_sessions / duration if duration > 0 else float("inf")
        ),
    )


def compute_metrics(log: QueryLog, settings: TestSettings) -> ScenarioMetrics:
    """Compute the Table II metric (plus latency summary) for a run."""
    latencies = log.latencies()
    if not latencies:
        raise ValueError("run completed no queries; cannot compute metrics")
    duration = run_duration(log)
    sample_count = sum(r.query.sample_count for r in log.completed_records())
    throughput = sample_count / duration if duration > 0 else float("inf")

    scenario = settings.scenario
    name = scenario_metric_name(scenario)
    session = compute_session_metrics(log, settings)
    if scenario is Scenario.SINGLE_STREAM:
        primary = percentile(latencies, 0.90)
    elif scenario is Scenario.MULTI_STREAM:
        primary = float(settings.multistream_samples_per_query)
    elif scenario is Scenario.SERVER:
        primary = settings.server_target_qps
    elif scenario is Scenario.OFFLINE:
        primary = throughput
    elif scenario is Scenario.SESSION:
        primary = session.sessions_per_second if session is not None else 0.0
    else:  # pragma: no cover - exhaustive over the enum
        raise ValueError(f"unknown scenario {scenario}")

    n = len(latencies)
    return ScenarioMetrics(
        scenario=scenario,
        query_count=log.query_count,
        sample_count=sample_count,
        duration=duration,
        latency_mean=sum(latencies) / n,
        latency_p50=percentile(latencies, 0.50),
        latency_p90=percentile(latencies, 0.90),
        latency_p99=percentile(latencies, 0.99),
        primary_metric=primary,
        primary_metric_name=name,
        throughput=throughput,
        stream=compute_stream_metrics(log, settings),
        session=session,
    )
