"""Run-validity rules (paper Sections III-C and III-D).

A performance run is VALID only if:

* every issued query completed;
* it issued at least the scenario/task minimum number of queries
  (Table V) - 1,024 for single-stream, 270,336 (90,112 for translation)
  for multistream and server, and a single query of >= 24,576 samples for
  offline;
* it ran for at least 60 seconds;
* server: no more than 1% (3% for translation) of queries exceeded the
  task's QoS latency bound (Table III);
* multistream: no more than 1% (3%) of queries produced one or more
  skipped arrival intervals;
* session (our extension): every planned conversation completed - a
  stalled or aborted session invalidates the run (``docs/sessions.md``).

On top of the paper's rules, the referee flags SUT misbehavior it
detected while the run was in flight (the paper's v0.5 round relied on
audits to catch exactly this, Section V): duplicate completions,
unsolicited responses for queries never issued, malformed response sets,
a fired watchdog, and aborted runs all yield their own INVALID reasons.

Accuracy-mode runs only require full, well-formed completion - their
pass/fail judgement belongs to the accuracy script
(``repro.accuracy.checker``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from .config import Scenario, TestMode, TestSettings
from .logging import QueryLog
from .metrics import (
    compute_session_metrics,
    effective_tpot,
    effective_ttft,
    record_meets_stream_slos,
)
from .scenarios import DriverStats


@dataclass
class ValidityReport:
    """Outcome of the validity checks for one run."""

    valid: bool
    reasons: List[str] = field(default_factory=list)
    details: Dict[str, object] = field(default_factory=dict)

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.valid


#: Cap on per-query diagnostics (issue times, reasons) copied into
#: ``ValidityReport.details`` - enough to see where a run stalled
#: without dragging a 270k-query log into the report.
_DETAIL_LIMIT = 16


def _check_misbehavior(
    log: QueryLog, stats: DriverStats,
    reasons: List[str], details: Dict[str, object],
) -> None:
    """SUT-misbehavior verdicts; they apply to every mode and scenario."""
    if stats.aborted:
        reasons.append(f"run aborted: {stats.aborted}")

    if stats.watchdog_fired:
        reasons.append(
            f"watchdog fired at {stats.watchdog_time:.3f}s with "
            f"{log.outstanding} queries outstanding"
        )
        details["watchdog_time"] = stats.watchdog_time

    if log.outstanding:
        stuck = log.outstanding_records()
        issue_times = sorted(r.issue_time for r in stuck)
        reasons.append(f"{log.outstanding} queries never completed")
        # Where the run stalled: the first/last stuck issue, plus a
        # sample of issue times for the report.
        details["outstanding_issue_times"] = issue_times[:_DETAIL_LIMIT]
        details["first_stuck_issue_time"] = issue_times[0]
        details["last_stuck_issue_time"] = issue_times[-1]

    if log.duplicate_completions:
        times = [t for _qid, t in log.duplicate_completions]
        reasons.append(
            f"{len(log.duplicate_completions)} duplicate completions"
        )
        details["duplicate_completion_count"] = len(log.duplicate_completions)
        details["first_duplicate_time"] = min(times)

    if log.unsolicited_responses:
        reasons.append(
            f"{len(log.unsolicited_responses)} unsolicited responses "
            "(completions for queries never issued)"
        )
        details["unsolicited_response_count"] = len(log.unsolicited_responses)

    failed = log.failed_records()
    if failed:
        reasons.append(
            f"{len(failed)} malformed responses "
            f"(e.g. query {failed[0].query.id}: {failed[0].failure_reason})"
        )
        details["malformed_response_count"] = len(failed)
        details["failure_reasons"] = [
            r.failure_reason for r in failed[:_DETAIL_LIMIT]
        ]

    if log.stream_chunk_anomalies:
        first = log.stream_chunk_anomalies[0]
        reasons.append(
            f"{len(log.stream_chunk_anomalies)} stream chunk anomalies "
            f"(e.g. query {first[0]}: {first[2]})"
        )
        details["stream_chunk_anomaly_count"] = len(log.stream_chunk_anomalies)
        details["stream_chunk_anomalies"] = [
            reason for _qid, _t, reason in
            log.stream_chunk_anomalies[:_DETAIL_LIMIT]
        ]

    if log.truncated_streams:
        reasons.append(
            f"{len(log.truncated_streams)} truncated streams (completed "
            "without a final chunk)"
        )
        details["truncated_stream_count"] = len(log.truncated_streams)


def validate_run(
    log: QueryLog, settings: TestSettings, stats: DriverStats
) -> ValidityReport:
    """Apply the v0.5 validity rules to a finished run."""
    reasons: List[str] = []
    details: Dict[str, object] = {}

    _check_misbehavior(log, stats, reasons, details)

    records = log.completed_records()
    if not records:
        reasons.append("no queries completed")
        return ValidityReport(valid=False, reasons=reasons, details=details)

    # Duration runs from the driver's start (the clock the 60 s rule is
    # written against) to the final completion.
    duration = max(r.completion_time for r in records) - stats.start_time
    details["duration"] = duration
    details["query_count"] = log.query_count
    details["sample_count"] = sum(r.query.sample_count for r in records)

    if settings.mode is TestMode.ACCURACY:
        # Accuracy runs are exempt from the performance minimums.
        return ValidityReport(valid=not reasons, reasons=reasons, details=details)

    if duration < settings.resolved_min_duration:
        reasons.append(
            f"run duration {duration:.3f}s below minimum "
            f"{settings.resolved_min_duration:.0f}s"
        )

    scenario = settings.scenario
    if scenario is Scenario.OFFLINE:
        min_samples = settings.resolved_offline_samples
        if details["sample_count"] < min_samples:
            reasons.append(
                f"offline processed {details['sample_count']:.0f} samples, "
                f"minimum is {min_samples}"
            )
    else:
        min_queries = settings.resolved_min_query_count
        if log.query_count < min_queries:
            reasons.append(
                f"issued {log.query_count} queries, minimum is {min_queries}"
            )

    # The session scenario opts into the same per-query (per-turn) tail
    # rule when an explicit bound is configured - what the fleet
    # capacity sweep probes against; without one, session runs are
    # judged on conversation validity alone, as before.
    if scenario is Scenario.SERVER or (
            scenario is Scenario.SESSION
            and settings.server_latency_bound is not None):
        bound = settings.resolved_server_latency_bound
        violations = sum(1 for r in records if r.latency > bound)
        fraction = violations / len(records)
        details["latency_bound"] = bound
        details["violation_fraction"] = fraction
        budget = settings.resolved_max_violation_fraction
        if fraction > budget:
            reasons.append(
                f"{fraction:.4%} of queries exceeded the {bound * 1e3:.0f} ms "
                f"bound (budget {budget:.0%})"
            )

    # Token-level SLOs (streamed responses): violations draw on the same
    # tail budget as the classic latency rule, and goodput - queries/s
    # counting only fully SLO-compliant queries - lands in the details.
    ttft_target = settings.resolved_ttft_target
    tpot_target = settings.resolved_tpot_target
    if ttft_target is not None or tpot_target is not None:
        budget = settings.resolved_max_violation_fraction
        if ttft_target is not None:
            violations = sum(
                1 for r in records if effective_ttft(r) > ttft_target
            )
            fraction = violations / len(records)
            details["ttft_target"] = ttft_target
            details["ttft_violation_fraction"] = fraction
            if fraction > budget:
                reasons.append(
                    f"{fraction:.4%} of queries exceeded the TTFT target "
                    f"{ttft_target * 1e3:.1f} ms (budget {budget:.0%})"
                )
        if tpot_target is not None:
            violations = sum(
                1 for r in records if effective_tpot(r) > tpot_target
            )
            fraction = violations / len(records)
            details["tpot_target"] = tpot_target
            details["tpot_violation_fraction"] = fraction
            if fraction > budget:
                reasons.append(
                    f"{fraction:.4%} of queries exceeded the TPOT target "
                    f"{tpot_target * 1e3:.1f} ms (budget {budget:.0%})"
                )
        compliant = sum(
            1 for r in records if record_meets_stream_slos(r, settings)
        )
        details["slo_compliant_queries"] = compliant
        details["goodput"] = (
            compliant / duration if duration > 0 else float("inf")
        )

    if scenario is Scenario.SESSION:
        # The session rule gates on whole conversations, not turns: every
        # planned session must have started and finished.  A *stalled*
        # session (started but neither completed nor aborted) is the
        # multi-turn-hang signature - a lost turn means the next one was
        # never issued, so outstanding-query checks alone can miss it.
        details["sessions_started"] = stats.sessions_started
        details["sessions_completed"] = stats.sessions_completed
        details["sessions_aborted"] = stats.sessions_aborted
        stalled = (stats.sessions_started - stats.sessions_completed
                   - stats.sessions_aborted)
        if stalled > 0:
            details["sessions_stalled"] = stalled
            reasons.append(
                f"{stalled} sessions stalled mid-conversation (a turn was "
                "issued but its answer never arrived)"
            )
        if stats.sessions_aborted > 0:
            reasons.append(
                f"{stats.sessions_aborted} sessions aborted after a failed "
                "turn"
            )
        required = settings.resolved_session_count
        if stats.sessions_completed < required:
            reasons.append(
                f"completed {stats.sessions_completed} sessions, minimum is "
                f"{required}"
            )
        session = compute_session_metrics(log, settings)
        if session is not None:
            details["session_latency_p50"] = session.session_latency_p50
            details["session_latency_p90"] = session.session_latency_p90
            details["session_latency_p99"] = session.session_latency_p99
            details["turn_ttft_p50"] = session.turn_ttft_p50
            details["turn_ttft_p90"] = session.turn_ttft_p90
            details["turn_ttft_p99"] = session.turn_ttft_p99
            details["sessions_per_second"] = session.sessions_per_second
            # Referee cross-check: the log-derived completion count must
            # agree with the driver's bookkeeping.
            if session.completed_session_count != stats.sessions_completed:
                reasons.append(
                    f"driver reports {stats.sessions_completed} completed "
                    f"sessions but the log shows "
                    f"{session.completed_session_count}"
                )

    if scenario is Scenario.MULTI_STREAM:
        offenders = sum(1 for v in stats.skipped_intervals.values() if v > 0)
        fraction = offenders / log.query_count if log.query_count else 0.0
        details["skipped_query_fraction"] = fraction
        details["total_skipped_ticks"] = stats.total_skipped_ticks
        budget = settings.resolved_max_violation_fraction
        if fraction > budget:
            reasons.append(
                f"{fraction:.4%} of queries produced skipped intervals "
                f"(budget {budget:.0%})"
            )

    return ValidityReport(valid=not reasons, reasons=reasons, details=details)
