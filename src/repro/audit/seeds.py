"""Alternate-random-seed test (paper Section V-B, test 3).

Optimizations keyed to the official LoadGen seed are prohibited: the
traffic pattern is pseudorandom but *predetermined*, so a submitter
could in principle precompute responses or schedules.  The test replays
the benchmark under several alternate seeds and checks that performance
does not collapse relative to the official-seed run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Sequence

from ..core.config import TestSettings
from ..core.loadgen import LoadGen
from ..core.sut import QuerySampleLibrary, SystemUnderTest

#: Alternate-seed throughput may not fall below this fraction of the
#: official-seed throughput.
DEFAULT_MIN_RELATIVE = 0.90

DEFAULT_ALTERNATE_SEEDS = (0xA17E12, 0xA17E13, 0xA17E14)


@dataclass
class SeedTestReport:
    """Outcome of the alternate-seed audit."""

    passed: bool
    official_throughput: float
    alternate_throughputs: List[float] = field(default_factory=list)
    min_relative: float = DEFAULT_MIN_RELATIVE

    @property
    def worst_relative(self) -> float:
        if not self.alternate_throughputs:
            return 1.0
        return min(self.alternate_throughputs) / self.official_throughput

    def summary(self) -> str:
        verdict = "PASSED" if self.passed else "FAILED (seed-tuned behaviour)"
        return (
            f"alternate-seed: {verdict} "
            f"(worst alternate/official throughput "
            f"{self.worst_relative:.3f}, floor {self.min_relative:.2f})"
        )


def run_seed_test(
    sut_factory: Callable[[], SystemUnderTest],
    qsl: QuerySampleLibrary,
    settings: TestSettings,
    alternate_seeds: Sequence[int] = DEFAULT_ALTERNATE_SEEDS,
    min_relative: float = DEFAULT_MIN_RELATIVE,
) -> SeedTestReport:
    """Measure throughput at the official seed, then at alternates."""
    official = LoadGen(settings).run(sut_factory(), qsl)
    alternates = []
    for seed in alternate_seeds:
        result = LoadGen(settings.with_overrides(seed=seed)).run(
            sut_factory(), qsl
        )
        alternates.append(result.metrics.throughput)
    report = SeedTestReport(
        passed=True,
        official_throughput=official.metrics.throughput,
        alternate_throughputs=alternates,
        min_relative=min_relative,
    )
    report.passed = report.worst_relative >= min_relative
    return report
