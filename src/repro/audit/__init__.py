"""The Section V-B validation suite used during result review."""

from .accuracy_verification import (
    AccuracyVerificationReport,
    run_accuracy_verification,
)
from .caching import CachingDetectionReport, run_caching_detection
from .custom_dataset import CustomDatasetReport, run_custom_dataset_test
from .seeds import SeedTestReport, run_seed_test

__all__ = [
    "AccuracyVerificationReport",
    "CachingDetectionReport",
    "CustomDatasetReport",
    "SeedTestReport",
    "run_accuracy_verification",
    "run_caching_detection",
    "run_custom_dataset_test",
    "run_seed_test",
]
