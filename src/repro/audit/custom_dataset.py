"""Custom-data-set result-caching check (paper Section V-B, test 4).

Beyond LoadGen-level tests, MLPerf validates behaviour by swapping the
reference data set for a custom one and comparing quality and
performance.  A system that memorized the reference data keeps its
reference accuracy on the swap only by luck; a system that caches whole
results keeps its *speed* but loses its *accuracy*.  The test runs
accuracy mode on both data sets and requires the quality on the custom
set to track the reference quality within a tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..accuracy.checker import check_accuracy
from ..core.config import TestMode, TestSettings
from ..core.loadgen import LoadGen
from ..core.sut import SystemUnderTest
from ..datasets.base import Dataset
from ..datasets.qsl import DatasetQSL


@dataclass
class CustomDatasetReport:
    """Outcome of the custom-data-set audit."""

    passed: bool
    reference_quality: float
    custom_quality: float
    max_relative_drop: float

    @property
    def relative_drop(self) -> float:
        if self.reference_quality == 0:
            return 0.0
        return 1.0 - self.custom_quality / self.reference_quality

    def summary(self) -> str:
        verdict = "PASSED" if self.passed else "FAILED (data-set-specific behaviour)"
        return (
            f"custom-dataset: {verdict} "
            f"(reference {self.reference_quality:.4g}, "
            f"custom {self.custom_quality:.4g}, "
            f"drop {self.relative_drop:.2%})"
        )


def run_custom_dataset_test(
    sut_for_qsl: Callable[[DatasetQSL], SystemUnderTest],
    reference_dataset: Dataset,
    custom_dataset: Dataset,
    settings: TestSettings,
    task_type: str,
    max_relative_drop: float = 0.05,
) -> CustomDatasetReport:
    """Accuracy-mode both data sets; quality must carry over.

    ``sut_for_qsl`` builds the submitter's SUT around a given QSL - the
    auditor substitutes the data set underneath the same system.
    """
    accuracy_settings = settings.with_overrides(mode=TestMode.ACCURACY)

    reference_qsl = DatasetQSL(reference_dataset)
    reference_result = LoadGen(accuracy_settings).run(
        sut_for_qsl(reference_qsl), reference_qsl
    )
    reference_report = check_accuracy(
        reference_result, reference_dataset, task_type, quality_target=0.0
    )

    custom_qsl = DatasetQSL(custom_dataset)
    custom_result = LoadGen(accuracy_settings).run(
        sut_for_qsl(custom_qsl), custom_qsl
    )
    custom_report = check_accuracy(
        custom_result, custom_dataset, task_type, quality_target=0.0
    )

    drop = 1.0 - (
        custom_report.value / reference_report.value
        if reference_report.value else 0.0
    )
    return CustomDatasetReport(
        passed=drop <= max_relative_drop,
        reference_quality=reference_report.value,
        custom_quality=custom_report.value,
        max_relative_drop=max_relative_drop,
    )
