"""On-the-fly caching detection (paper Section V-B, test 2).

The rules prohibit caching of queries and intermediate data.  Because
the LoadGen draws samples *with replacement*, high-performance systems
see many duplicate indices; a caching SUT runs the duplicate-heavy
traffic suspiciously faster.  The test runs two performance passes - one
whose loaded set makes duplicates rare (large unique pool) and one where
they are guaranteed (a tiny pool drawn repeatedly) - and flags the
submission if the duplicate-heavy pass is significantly faster.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..core.config import TestSettings
from ..core.loadgen import LoadGen
from ..core.sut import QuerySampleLibrary, SystemUnderTest

#: Speedup on duplicate-heavy traffic above which caching is reported.
DEFAULT_SPEEDUP_THRESHOLD = 1.25

#: Size of the tiny pool used to force duplicate samples.
DUPLICATE_POOL_SIZE = 4


@dataclass
class CachingDetectionReport:
    """Outcome of the caching-detection audit."""

    passed: bool
    unique_throughput: float
    duplicate_throughput: float
    speedup: float
    threshold: float

    def summary(self) -> str:
        verdict = "PASSED" if self.passed else "FAILED (caching suspected)"
        return (
            f"caching-detection: {verdict} "
            f"(duplicate/unique speedup {self.speedup:.2f}x, "
            f"threshold {self.threshold:.2f}x)"
        )


def run_caching_detection(
    sut_factory: Callable[[], SystemUnderTest],
    qsl: QuerySampleLibrary,
    settings: TestSettings,
    speedup_threshold: float = DEFAULT_SPEEDUP_THRESHOLD,
) -> CachingDetectionReport:
    """Compare throughput on unique-heavy vs duplicate-heavy traffic."""
    unique_settings = settings.with_overrides(
        performance_sample_count=qsl.performance_sample_count,
    )
    unique_result = LoadGen(unique_settings).run(sut_factory(), qsl)

    duplicate_settings = settings.with_overrides(
        performance_sample_count=DUPLICATE_POOL_SIZE,
        seed=settings.seed + 1,
    )
    duplicate_result = LoadGen(duplicate_settings).run(sut_factory(), qsl)

    unique_throughput = unique_result.metrics.throughput
    duplicate_throughput = duplicate_result.metrics.throughput
    speedup = duplicate_throughput / unique_throughput
    return CachingDetectionReport(
        passed=speedup <= speedup_threshold,
        unique_throughput=unique_throughput,
        duplicate_throughput=duplicate_throughput,
        speedup=speedup,
        threshold=speedup_threshold,
    )
