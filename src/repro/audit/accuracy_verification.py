"""Accuracy-verification audit (paper Section V-B, test 1).

In performance mode the LoadGen normally discards responses, so a
dishonest SUT could return garbage at full speed.  This test re-runs the
submission in performance mode with *random response logging* enabled
and cross-checks every logged response against the accuracy-mode log for
the same data set index.  Mismatches mean the performance run is not
computing real inferences.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

import numpy as np

from ..core.config import TestMode, TestSettings
from ..core.loadgen import LoadGen, LoadGenResult
from ..core.sut import QuerySampleLibrary, SystemUnderTest

#: Fraction of performance-mode queries whose responses are logged.
DEFAULT_LOG_PROBABILITY = 0.10


@dataclass
class AccuracyVerificationReport:
    """Outcome of the accuracy-verification audit."""

    passed: bool
    checked: int
    mismatches: int
    mismatch_indices: List[int] = field(default_factory=list)

    def summary(self) -> str:
        verdict = "PASSED" if self.passed else "FAILED"
        return (
            f"accuracy-verification: {verdict} "
            f"({self.mismatches}/{self.checked} logged responses mismatched)"
        )


def _payload_equal(a: object, b: object) -> bool:
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.array_equal(np.asarray(a), np.asarray(b))
    return a == b


def run_accuracy_verification(
    sut_factory: Callable[[], SystemUnderTest],
    qsl: QuerySampleLibrary,
    performance_settings: TestSettings,
    log_probability: float = DEFAULT_LOG_PROBABILITY,
) -> AccuracyVerificationReport:
    """Run the test: accuracy pass, then sampled performance pass."""
    accuracy_settings = performance_settings.with_overrides(
        mode=TestMode.ACCURACY
    )
    accuracy_result = LoadGen(accuracy_settings).run(sut_factory(), qsl)
    reference = _responses_by_index(accuracy_result)

    performance_result = LoadGen(performance_settings).run(
        sut_factory(), qsl, log_sample_probability=log_probability
    )
    sampled = _responses_by_index(performance_result)
    if not sampled:
        raise RuntimeError(
            "performance run logged no responses; raise log_probability"
        )

    mismatches = []
    for index, payload in sampled.items():
        if index not in reference:
            mismatches.append(index)
        elif not _payload_equal(payload, reference[index]):
            mismatches.append(index)
    return AccuracyVerificationReport(
        passed=not mismatches,
        checked=len(sampled),
        mismatches=len(mismatches),
        mismatch_indices=sorted(mismatches),
    )


def _responses_by_index(result: LoadGenResult) -> Dict[int, object]:
    index_map = result.log.sample_index_map()
    out: Dict[int, object] = {}
    for sample_id, payload in result.log.logged_responses().items():
        out[index_map[sample_id]] = payload
    return out
