"""The full-size image-classification model family (paper Figure 1).

Figure 1 (after Bianco et al.) shows why no single model is optimal:
Top-1 accuracy and computational complexity trade off along a Pareto
frontier, complexity varies ~50x across the family, and "even a small
accuracy change (e.g., a few percent) can drastically alter the
computational requirements (e.g., by 5-10x)".

This module pairs our architecture definitions' *computed* operation
counts with the models' *published* ImageNet accuracies (accuracy cannot
be computed offline - it is a property of trained weights - so the
published figures play the role of the plot's y-axis).  The Figure 1
benchmark asserts the paper's quantitative claims against this family.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Tuple

from .arch.mobilenet import build_mobilenet_v1
from .arch.mobilenet_v2 import build_mobilenet_v2
from .arch.resnet import build_resnet

INPUT = (224, 224, 3)


@dataclass(frozen=True)
class FamilyMember:
    """One point on the accuracy/complexity plane."""

    name: str
    #: Published ImageNet Top-1 accuracy (%) of the canonical trained
    #: weights (torchvision / TF-Slim reference figures).
    published_top1: float
    build: Callable[[], object]

    def gops(self) -> float:
        return 2 * self.build().macs(INPUT) / 1e9

    def parameters(self) -> int:
        return self.build().param_count(INPUT)


#: The family, ordered by published accuracy.
MODEL_FAMILY: Tuple[FamilyMember, ...] = (
    FamilyMember("MobileNet-v1-0.25", 49.8,
                 lambda: build_mobilenet_v1(width_multiplier=0.25)),
    FamilyMember("MobileNet-v1-0.5", 63.3,
                 lambda: build_mobilenet_v1(width_multiplier=0.5)),
    FamilyMember("MobileNet-v2-0.5", 65.4,
                 lambda: build_mobilenet_v2(width_multiplier=0.5)),
    FamilyMember("MobileNet-v1-0.75", 68.4,
                 lambda: build_mobilenet_v1(width_multiplier=0.75)),
    FamilyMember("ResNet-18", 69.8, lambda: build_resnet(18)),
    FamilyMember("MobileNet-v1-1.0", 71.7,
                 lambda: build_mobilenet_v1(width_multiplier=1.0)),
    FamilyMember("MobileNet-v2-1.0", 71.9,
                 lambda: build_mobilenet_v2(width_multiplier=1.0)),
    FamilyMember("ResNet-34", 73.3, lambda: build_resnet(34)),
    FamilyMember("ResNet-50-v1.5", 76.5, lambda: build_resnet(50)),
    FamilyMember("ResNet-101", 77.4, lambda: build_resnet(101)),
    FamilyMember("ResNet-152", 78.3, lambda: build_resnet(152)),
)


def family_points() -> List[Tuple[str, float, float]]:
    """``(name, gops, published_top1)`` for every member."""
    return [(m.name, m.gops(), m.published_top1) for m in MODEL_FAMILY]


def pareto_frontier(points: List[Tuple[str, float, float]]
                    ) -> List[str]:
    """Names of the non-dominated members (less compute, more accuracy)."""
    frontier = []
    for name, gops, top1 in points:
        dominated = any(
            other_gops <= gops and other_top1 >= top1
            and (other_name != name)
            and (other_gops, other_top1) != (gops, top1)
            for other_name, other_gops, other_top1 in points
        )
        if not dominated:
            frontier.append(name)
    return frontier
