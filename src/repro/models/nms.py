"""Non-maximum suppression: regular and "fast" variants.

Section II-C of the paper uses NMS as the canonical example of why
porting models across frameworks is subtle: TensorFlow's regular NMS is
unavailable in TensorFlow Lite, whose *fast* NMS drops SSD-MobileNet-v1
accuracy from 23.1 to 22.3 mAP.  Both algorithms are implemented here,
and the quantization/ablation benchmarks reproduce the qualitative gap.

Boxes are ``(N, 4)`` arrays in ``(y1, x1, y2, x2)`` order, any scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np


def box_area(boxes: np.ndarray) -> np.ndarray:
    """Areas of ``(N, 4)`` boxes; degenerate boxes have zero area."""
    heights = np.maximum(boxes[:, 2] - boxes[:, 0], 0.0)
    widths = np.maximum(boxes[:, 3] - boxes[:, 1], 0.0)
    return heights * widths


def iou_matrix(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Pairwise intersection-over-union: ``(len(a), len(b))``."""
    a = np.atleast_2d(a)
    b = np.atleast_2d(b)
    y1 = np.maximum(a[:, None, 0], b[None, :, 0])
    x1 = np.maximum(a[:, None, 1], b[None, :, 1])
    y2 = np.minimum(a[:, None, 2], b[None, :, 2])
    x2 = np.minimum(a[:, None, 3], b[None, :, 3])
    inter = np.maximum(y2 - y1, 0.0) * np.maximum(x2 - x1, 0.0)
    union = box_area(a)[:, None] + box_area(b)[None, :] - inter
    with np.errstate(divide="ignore", invalid="ignore"):
        iou = np.where(union > 0.0, inter / union, 0.0)
    return iou


def nms(boxes: np.ndarray, scores: np.ndarray, iou_threshold: float = 0.5,
        max_output: int = 100) -> np.ndarray:
    """Regular (greedy) NMS; returns kept indices in score order.

    Each round keeps the highest-scoring remaining box and suppresses
    every remaining box whose IoU with it exceeds the threshold - a box
    is only allowed to suppress others if it itself survived.
    """
    if len(boxes) != len(scores):
        raise ValueError(f"{len(boxes)} boxes but {len(scores)} scores")
    order = np.argsort(scores)[::-1]
    keep: List[int] = []
    suppressed = np.zeros(len(boxes), dtype=bool)
    for idx in order:
        if suppressed[idx]:
            continue
        keep.append(int(idx))
        if len(keep) >= max_output:
            break
        ious = iou_matrix(boxes[idx:idx + 1], boxes)[0]
        suppressed |= ious > iou_threshold
        suppressed[idx] = True
    return np.asarray(keep, dtype=np.int64)


def fast_nms(boxes: np.ndarray, scores: np.ndarray,
             iou_threshold: float = 0.5, max_output: int = 100) -> np.ndarray:
    """Matrix ("fast") NMS, the mobile-runtime approximation.

    A box is removed if ANY higher-scoring box overlaps it beyond the
    threshold - even if that higher-scoring box was itself suppressed.
    One matrix operation instead of a sequential loop, at the cost of
    over-suppression (the source of the 23.1 -> 22.3 mAP drop).
    """
    if len(boxes) != len(scores):
        raise ValueError(f"{len(boxes)} boxes but {len(scores)} scores")
    order = np.argsort(scores)[::-1]
    sorted_boxes = boxes[order]
    ious = iou_matrix(sorted_boxes, sorted_boxes)
    # Zero the diagonal and lower triangle: only higher-scored boxes
    # (earlier in sort order) can suppress.
    ious = np.triu(ious, k=1)
    max_overlap = ious.max(axis=0, initial=0.0)
    keep_mask = max_overlap <= iou_threshold
    kept = order[keep_mask]
    return kept[:max_output].astype(np.int64)


@dataclass(frozen=True)
class Detection:
    """One post-NMS detection."""

    box: Tuple[float, float, float, float]
    score: float
    class_id: int


def multiclass_nms(
    boxes: np.ndarray,
    class_scores: np.ndarray,
    score_threshold: float = 0.05,
    iou_threshold: float = 0.5,
    max_per_class: int = 100,
    max_total: int = 200,
    algorithm: str = "regular",
    background_class: int = 0,
) -> List[Detection]:
    """Per-class NMS over SSD head output.

    ``boxes``: ``(A, 4)`` decoded anchors; ``class_scores``: ``(A, C)``
    softmax scores including the background column, which is skipped.
    """
    if algorithm == "regular":
        suppress = nms
    elif algorithm == "fast":
        suppress = fast_nms
    else:
        raise ValueError(f"unknown NMS algorithm {algorithm!r}")

    detections: List[Detection] = []
    num_classes = class_scores.shape[1]
    for class_id in range(num_classes):
        if class_id == background_class:
            continue
        scores = class_scores[:, class_id]
        mask = scores >= score_threshold
        if not mask.any():
            continue
        candidate_boxes = boxes[mask]
        candidate_scores = scores[mask]
        keep = suppress(candidate_boxes, candidate_scores,
                        iou_threshold=iou_threshold, max_output=max_per_class)
        for idx in keep:
            detections.append(Detection(
                box=tuple(float(v) for v in candidate_boxes[idx]),
                score=float(candidate_scores[idx]),
                class_id=class_id,
            ))
    detections.sort(key=lambda d: d.score, reverse=True)
    return detections[:max_total]
