"""Numerical-format quantization (paper Section IV-A).

MLPerf's closed division permits quantizing the FP32 reference weights
to a registered list of formats - INT4, INT8, INT16, UINT8, UINT16,
FP11 (1-5-5), FP16, bfloat16 - provided the quality target is still met
without retraining.  MLPerf ships a small fixed calibration set for
choosing quantization ranges.

This module implements *fake quantization*: tensors are quantized to the
target format's grid and immediately dequantized back to float32, so the
numerics of the low-precision format flow through the unmodified numpy
kernels.  Integer formats use affine (scale/zero-point) quantization,
per-tensor or per-channel; float formats round the mantissa and clamp to
the format's exponent range.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence, Tuple

import numpy as np

from .graph import Layer


class NumericFormat(enum.Enum):
    """The formats MLPerf v0.5 approved for closed-division submissions."""

    FP32 = "fp32"
    FP16 = "fp16"
    BF16 = "bfloat16"
    FP11 = "fp11"
    INT16 = "int16"
    UINT16 = "uint16"
    INT8 = "int8"
    UINT8 = "uint8"
    INT4 = "int4"

    @property
    def is_integer(self) -> bool:
        return self in _INT_RANGES

    @property
    def bits(self) -> int:
        return {
            NumericFormat.FP32: 32, NumericFormat.FP16: 16,
            NumericFormat.BF16: 16, NumericFormat.FP11: 11,
            NumericFormat.INT16: 16, NumericFormat.UINT16: 16,
            NumericFormat.INT8: 8, NumericFormat.UINT8: 8,
            NumericFormat.INT4: 4,
        }[self]


#: (qmin, qmax) for the integer formats.
_INT_RANGES = {
    NumericFormat.INT4: (-8, 7),
    NumericFormat.INT8: (-128, 127),
    NumericFormat.UINT8: (0, 255),
    NumericFormat.INT16: (-32768, 32767),
    NumericFormat.UINT16: (0, 65535),
}

#: (mantissa_bits, exponent_bits) for the reduced float formats.
_FLOAT_SPECS = {
    NumericFormat.FP16: (10, 5),
    NumericFormat.BF16: (7, 8),
    NumericFormat.FP11: (5, 5),
}


def _quantize_affine(array: np.ndarray, fmt: NumericFormat,
                     low: np.ndarray, high: np.ndarray) -> np.ndarray:
    """Affine fake-quantize ``array`` given clip range ``[low, high]``."""
    qmin, qmax = _INT_RANGES[fmt]
    low = np.minimum(low, 0.0)
    high = np.maximum(high, 0.0)
    span = np.maximum(high - low, 1e-12)
    scale = span / (qmax - qmin)
    zero_point = np.round(qmin - low / scale)
    q = np.round(array / scale + zero_point)
    q = np.clip(q, qmin, qmax)
    # The span floor (and zero-point rounding) can place grid points
    # outside [low, high]; the reconstruction must not exceed the clip
    # range it was derived from.
    recon = np.clip((q - zero_point) * scale, low, high)
    return recon.astype(np.float32)


def _quantize_float(array: np.ndarray, fmt: NumericFormat) -> np.ndarray:
    """Round to ``fmt``'s mantissa grid and clamp its exponent range."""
    if fmt is NumericFormat.FP16:
        return array.astype(np.float16).astype(np.float32)
    mantissa_bits, exponent_bits = _FLOAT_SPECS[fmt]
    out = np.asarray(array, dtype=np.float32).copy()
    finite = np.isfinite(out) & (out != 0.0)
    if finite.any():
        values = out[finite]
        mantissa, exponent = np.frexp(values)
        scale = 2.0 ** mantissa_bits
        mantissa = np.round(mantissa * scale) / scale
        values = np.ldexp(mantissa, exponent)
        # Exponent clamp (bias per IEEE-style format).
        max_exp = 2 ** (exponent_bits - 1)
        limit = float(np.ldexp(1.0 - 2.0 ** (-mantissa_bits - 1), max_exp))
        min_normal = float(np.ldexp(1.0, -(max_exp - 2)))
        values = np.clip(values, -limit, limit)
        values = np.where(np.abs(values) < min_normal / 2, 0.0, values)
        out[finite] = values
    return out


@dataclass(frozen=True)
class QuantizationSpec:
    """How to quantize a model's parameters.

    ``per_channel`` quantizes each output channel of conv/dense weights
    with its own range - the standard trick that keeps depthwise
    convolutions (MobileNet's weak spot) usable at INT8.
    ``clip_percentile`` discards extreme weight outliers when computing
    the range (100.0 keeps the full min/max range); it is the knob the
    calibration-set search tunes.
    """

    fmt: NumericFormat
    per_channel: bool = False
    clip_percentile: float = 100.0

    def __post_init__(self) -> None:
        if not 50.0 < self.clip_percentile <= 100.0:
            raise ValueError(
                f"clip_percentile must be in (50, 100], got {self.clip_percentile}"
            )


def quantize_tensor(array: np.ndarray, spec: QuantizationSpec) -> np.ndarray:
    """Fake-quantize one tensor according to ``spec``."""
    array = np.asarray(array, dtype=np.float32)
    if spec.fmt is NumericFormat.FP32:
        return array.copy()
    if not spec.fmt.is_integer:
        return _quantize_float(array, spec.fmt)

    if spec.per_channel and array.ndim >= 2:
        # Channels are the trailing axis for all our weight layouts.
        flat = array.reshape(-1, array.shape[-1])
        if spec.clip_percentile >= 100.0:
            low = flat.min(axis=0)
            high = flat.max(axis=0)
        else:
            low = np.percentile(flat, 100.0 - spec.clip_percentile, axis=0)
            high = np.percentile(flat, spec.clip_percentile, axis=0)
        out = _quantize_affine(flat, spec.fmt, low, high)
        return out.reshape(array.shape)

    if spec.clip_percentile >= 100.0:
        low = float(array.min())
        high = float(array.max())
    else:
        low = float(np.percentile(array, 100.0 - spec.clip_percentile))
        high = float(np.percentile(array, spec.clip_percentile))
    return _quantize_affine(array, spec.fmt, np.float64(low), np.float64(high))


#: Parameter names that stay in float even in quantized deployments
#: (batch-norm statistics are folded, not quantized, in practice).
_SKIP_SUFFIXES = ("gamma", "beta", "mean", "variance")


def quantize_layer(layer: Layer, spec: QuantizationSpec) -> int:
    """Fake-quantize ``layer``'s parameters in place; returns tensor count."""
    count = 0
    for key in list(layer.params):
        if key.endswith(_SKIP_SUFFIXES):
            continue
        layer.params[key] = quantize_tensor(layer.params[key], spec)
        count += 1
    return count


def quantize_model(model: Layer, spec: QuantizationSpec) -> int:
    """Fake-quantize every eligible parameter tensor of ``model``.

    Works on any layer tree that implements ``named_parameters`` by
    walking the concrete layer objects via duck typing.  Returns the
    number of tensors quantized.
    """
    count = 0
    for layer in iter_layers(model):
        count += quantize_layer(layer, spec)
    return count


def iter_layers(root: Layer) -> Iterable[Layer]:
    """Yield every concrete layer in a graph (depth first)."""
    from .graph import Residual, Sequential  # local to avoid cycles
    from .arch.ssd import SSDArch

    if isinstance(root, Sequential):
        for child in root.children:
            yield from iter_layers(child)
    elif isinstance(root, Residual):
        yield from iter_layers(root.body)
        if root.shortcut is not None:
            yield from iter_layers(root.shortcut)
    elif isinstance(root, SSDArch):
        for stage in root.stages:
            yield from iter_layers(stage)
        for head in root.class_heads:
            yield head
        for head in root.box_heads:
            yield head
    else:
        yield root


def cross_layer_equalization(graph) -> int:
    """Balance per-channel weight ranges across consecutive layers.

    The data-free fix for per-tensor quantization of scale-imbalanced
    networks (Nagel et al.): for a producing layer whose output channel
    ``c`` feeds - through positively homogeneous layers only (ReLU,
    max/avg pooling) - a consuming layer, rescale the producer's channel
    by ``s_c`` and the consumer's matching inputs by ``1/s_c`` with
    ``s_c = sqrt(r1_c * r2_c) / r1_c``, equalizing both ranges at
    ``sqrt(r1_c * r2_c)``.  FP32 behaviour is exactly unchanged; the
    per-tensor quantization grid stops starving small channels.

    This is the analytic counterpart of the paper's "trained the
    MobileNet models for quantization-friendly weights" (Section III-B).
    Returns the number of layer pairs equalized.
    """
    from .graph import (
        Activation,
        AvgPool2D,
        Conv2D,
        Dense,
        GlobalAvgPool,
        GlobalMaxPool,
        MaxPool2D,
        Sequential,
    )

    if not isinstance(graph, Sequential):
        raise TypeError("cross_layer_equalization expects a Sequential graph")

    def positively_homogeneous(layer) -> bool:
        if isinstance(layer, Activation):
            return layer.kind == "relu"   # relu6's cap breaks homogeneity
        return isinstance(layer, (MaxPool2D, AvgPool2D, GlobalAvgPool,
                                  GlobalMaxPool))

    children = graph.children
    equalized = 0
    for i, producer in enumerate(children):
        if not isinstance(producer, Conv2D) or "weights" not in producer.params:
            continue
        # Walk forward through homogeneous layers to the consumer.
        j = i + 1
        while j < len(children) and positively_homogeneous(children[j]):
            j += 1
        if j >= len(children):
            continue
        consumer = children[j]
        w1 = producer.params["weights"]              # (kh, kw, cin, C)
        r1 = np.abs(w1).max(axis=(0, 1, 2))
        r1 = np.maximum(r1, 1e-12)
        if isinstance(consumer, Dense) and "weights" in consumer.params:
            w2 = consumer.params["weights"]          # (C, out)
            if w2.shape[0] != w1.shape[-1]:
                continue
            r2 = np.maximum(np.abs(w2).max(axis=1), 1e-12)
            scale = np.sqrt(r1 * r2) / r1
            producer.params["weights"] = (w1 * scale).astype(np.float32)
            consumer.params["weights"] = (
                w2 / scale[:, None]).astype(np.float32)
        elif isinstance(consumer, Conv2D) and "weights" in consumer.params:
            w2 = consumer.params["weights"]          # (kh, kw, C, out)
            if w2.shape[2] != w1.shape[-1]:
                continue
            r2 = np.maximum(np.abs(w2).max(axis=(0, 1, 3)), 1e-12)
            scale = np.sqrt(r1 * r2) / r1
            producer.params["weights"] = (w1 * scale).astype(np.float32)
            consumer.params["weights"] = (
                w2 / scale[None, None, :, None]).astype(np.float32)
        else:
            continue
        if producer.use_bias:
            producer.params["bias"] = (
                producer.params["bias"] * scale).astype(np.float32)
        equalized += 1
    return equalized


def calibrate_clip_percentile(
    build_and_eval: Callable[[QuantizationSpec], float],
    fmt: NumericFormat,
    per_channel: bool = False,
    candidates: Sequence[float] = (100.0, 99.99, 99.9, 99.5, 99.0),
) -> Tuple[QuantizationSpec, float]:
    """Calibration-set search over clip percentiles (Section IV-A).

    ``build_and_eval`` quantizes a fresh copy of the model with the given
    spec and returns its accuracy **on the calibration set**.  The best
    spec and its calibration accuracy are returned.  This mirrors the
    MLPerf flow: the fixed calibration data set may be used to choose
    ranges, the test set may not.
    """
    best_spec: Optional[QuantizationSpec] = None
    best_quality = -math.inf
    for pct in candidates:
        spec = QuantizationSpec(fmt=fmt, per_channel=per_channel,
                                clip_percentile=pct)
        quality = build_and_eval(spec)
        if quality > best_quality:
            best_quality = quality
            best_spec = spec
    assert best_spec is not None
    return best_spec, best_quality
