"""Runnable (tiny) instantiations of the reference models."""

from .classifier import GlyphClassifier, build_glyph_classifier, evaluate_classifier
from .detector import GlyphDetector, build_glyph_detector, evaluate_detector
from .gnmt_tiny import TinyGNMT
from .translator import CipherTranslator, build_cipher_translator, evaluate_translator

__all__ = [
    "CipherTranslator",
    "GlyphClassifier",
    "GlyphDetector",
    "TinyGNMT",
    "build_cipher_translator",
    "build_glyph_classifier",
    "build_glyph_detector",
    "evaluate_classifier",
    "evaluate_detector",
    "evaluate_translator",
]
