"""Runnable translator for the synthetic WMT task.

An attention-based encoder-decoder executed by the numpy kernels, with
*constructed* weights that solve the cipher-with-reversal language pair:

* token embeddings are one-hot (an identity embedding table), so encoder
  outputs carry token identity exactly;
* attention is genuine scaled dot-product attention between learned
  position codes: the decoder's query at output step ``t`` matches the
  key planted at source position ``L - 1 - t``, producing the reversed
  alignment GNMT's attention would have to learn;
* the output projection is the cipher permutation matrix over the
  vocabulary.

Quantization perturbs the embedding table, position codes, and
projection exactly as it would a trained model's weights, degrading
BLEU mechanistically.  (DESIGN.md records the substitution: the paper's
GNMT uses LSTM stacks, which our :class:`~repro.models.graph.LSTMLayer`
implements and the perf-workload tests execute, but constructing exact
cipher behaviour through saturating LSTM gates is not tractable; the
attention transducer preserves the benchmark-relevant properties -
sequence-length-dependent cost and weight-sensitivity of quality.)
"""

from __future__ import annotations

import copy
from typing import Iterable, List, Optional, Sequence

import numpy as np

from ...datasets.wmt import SyntheticWmt
from ..graph import Dense, Embedding
from ..layers import softmax
from ..quantization import QuantizationSpec, quantize_layer

#: Default maximum source length the position codes cover.
MAX_POSITIONS = 64


class CipherTranslator:
    """Attention transducer translating token-id sequences."""

    def __init__(
        self,
        embedding: Embedding,
        projection: Dense,
        position_codes: np.ndarray,
        sharpness: float,
    ) -> None:
        self.embedding = embedding
        self.projection = projection
        self.position_codes = position_codes
        self.sharpness = sharpness

    @property
    def name(self) -> str:
        return "cipher-translator"

    @property
    def vocab_size(self) -> int:
        return self.embedding.vocab_size

    def translate(self, source: Sequence[int]) -> List[int]:
        """Greedy-decode the translation of ``source``."""
        source = list(source)
        if not source:
            return []
        length = len(source)
        if length > self.position_codes.shape[0]:
            raise ValueError(
                f"source length {length} exceeds the {self.position_codes.shape[0]} "
                "supported positions"
            )
        # Encode: one-hot token vectors (N, V).
        memory = self.embedding.forward(np.asarray(source))
        # Keys: position codes planted in reversed order.
        keys = self.position_codes[length - 1::-1]          # (L, D)
        output: List[int] = []
        for step in range(length):
            query = self.position_codes[step]               # (D,)
            scores = keys @ query * self.sharpness          # (L,)
            weights = softmax(scores[None, :], axis=-1)[0]
            context = weights @ memory                      # (V,)
            logits = self.projection.forward(context[None, :])[0]
            output.append(int(np.argmax(logits)))
        return output

    def macs_per_sentence(self, length: int) -> int:
        """Attention + projection MACs for a length-``length`` sentence."""
        d = self.position_codes.shape[1]
        v = self.vocab_size
        per_step = length * d + length * v + v * v
        return per_step * length

    def quantized(self, spec: QuantizationSpec) -> "CipherTranslator":
        """Return a fake-quantized deep copy (the original is untouched)."""
        clone = copy.deepcopy(self)
        quantize_layer(clone.embedding, spec)
        quantize_layer(clone.projection, spec)
        from ..quantization import quantize_tensor
        clone.position_codes = quantize_tensor(clone.position_codes, spec)
        return clone


def build_cipher_translator(
    dataset: SyntheticWmt,
    position_dim: int = 6,
    sharpness: float = 3.0,
    synonym_weight: float = 0.75,
    max_positions: int = MAX_POSITIONS,
    seed: int = 7,
) -> CipherTranslator:
    """Construct the reference translator for ``dataset``.

    The defaults are tuned so the FP32 model sits just under the ideal
    cipher BLEU while INT8/FP16/FP11 keep >= 99% of it and INT4 dips
    marginally below - the same gradient the paper reports for real
    models (Section III-B: ~1% at INT8 "easily achievable without
    retraining"; 4-bit needed open-division freedom).  ``synonym_weight``
    plants a near-tie runner-up logit per token; soft attention plus
    that tie is what makes precision matter.
    """
    vocab = dataset.vocab_size
    embedding = Embedding(vocab, vocab, name="onehot_emb")
    embedding.initialize((), np.random.default_rng(seed))
    embedding.set_parameter("table", np.eye(vocab, dtype=np.float32))

    projection = Dense(vocab, use_bias=False, name="cipher_proj")
    projection.initialize((vocab,), np.random.default_rng(seed))
    cipher_matrix = np.zeros((vocab, vocab), dtype=np.float32)
    for source_token, target_token in dataset.cipher.items():
        cipher_matrix[source_token, target_token] = 1.0
    for source_token, synonym_token in dataset.synonyms.items():
        cipher_matrix[source_token, synonym_token] = max(
            cipher_matrix[source_token, synonym_token], synonym_weight
        )
    projection.set_parameter("weights", cipher_matrix)

    rng = np.random.default_rng(seed)
    codes = rng.normal(0.0, 1.0, size=(max_positions, position_dim))
    codes /= np.linalg.norm(codes, axis=1, keepdims=True)
    return CipherTranslator(
        embedding, projection, codes.astype(np.float32), sharpness
    )


def evaluate_translator(
    model: CipherTranslator,
    dataset: SyntheticWmt,
    indices: Optional[Iterable[int]] = None,
) -> float:
    """Corpus BLEU of ``model`` over ``dataset``."""
    from ...accuracy.bleu import corpus_bleu

    if indices is None:
        indices = dataset.evaluation_indices
    indices = list(indices)
    hypotheses = [model.translate(dataset.get_sample(i)) for i in indices]
    references = [dataset.get_label(i) for i in indices]
    return corpus_bleu(hypotheses, references)
