"""Anchor generation and box decoding for the runnable SSD detectors.

Anchor ordering matches :meth:`repro.models.arch.ssd.SSDArch.forward`:
feature-map major, then row, column, anchor index - so head outputs and
anchor boxes line up one-to-one after the reshape.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from ..layers import _same_pad_amounts, conv_output_size


def single_map_anchors(
    image_size: int,
    kernel: int,
    stride: int,
    scales: Sequence[int],
    padding: str = "valid",
) -> np.ndarray:
    """Anchors for one feature map produced by a convolution.

    Feature cell ``(i, j)`` corresponds to the conv window starting at
    ``(i * stride - pad, j * stride - pad)``; the anchor of scale ``s``
    is the ``s``-by-``s`` box centred in that window (where a template
    embedded centrally in the kernel would match).  Returns
    ``(H * W * len(scales), 4)`` boxes as ``(y1, x1, y2, x2)``.

    The runnable detectors use VALID padding: SAME padding would shift
    every window start by the (odd) asymmetric pad amount and break the
    phase alignment between stride-2 windows and the block glyphs.
    """
    out = conv_output_size(image_size, kernel, stride, padding)
    if padding == "same":
        pad_before, _ = _same_pad_amounts(image_size, kernel, stride)
    else:
        pad_before = 0
    anchors = np.empty((out, out, len(scales), 4), dtype=np.float32)
    for i in range(out):
        top = i * stride - pad_before
        for j in range(out):
            left = j * stride - pad_before
            for a, scale in enumerate(scales):
                offset = (kernel - scale) // 2
                y1 = top + offset
                x1 = left + offset
                anchors[i, j, a] = (y1, x1, y1 + scale, x1 + scale)
    return anchors.reshape(-1, 4)


def boxes_to_centers(boxes: np.ndarray) -> np.ndarray:
    """``(y1, x1, y2, x2)`` -> ``(cy, cx, h, w)``."""
    cy = (boxes[:, 0] + boxes[:, 2]) / 2.0
    cx = (boxes[:, 1] + boxes[:, 3]) / 2.0
    h = boxes[:, 2] - boxes[:, 0]
    w = boxes[:, 3] - boxes[:, 1]
    return np.stack([cy, cx, h, w], axis=1)


def centers_to_boxes(centers: np.ndarray) -> np.ndarray:
    """``(cy, cx, h, w)`` -> ``(y1, x1, y2, x2)``."""
    y1 = centers[:, 0] - centers[:, 2] / 2.0
    x1 = centers[:, 1] - centers[:, 3] / 2.0
    y2 = centers[:, 0] + centers[:, 2] / 2.0
    x2 = centers[:, 1] + centers[:, 3] / 2.0
    return np.stack([y1, x1, y2, x2], axis=1)


def decode_boxes(anchors: np.ndarray, offsets: np.ndarray,
                 variance: Tuple[float, float] = (0.1, 0.2)) -> np.ndarray:
    """Standard SSD box decoding.

    ``offsets`` are ``(ty, tx, th, tw)`` per anchor; zero offsets decode
    to the anchor itself.
    """
    if anchors.shape != offsets.shape:
        raise ValueError(
            f"anchors {anchors.shape} and offsets {offsets.shape} differ"
        )
    centers = boxes_to_centers(anchors)
    cy = centers[:, 0] + offsets[:, 0] * variance[0] * centers[:, 2]
    cx = centers[:, 1] + offsets[:, 1] * variance[0] * centers[:, 3]
    h = centers[:, 2] * np.exp(np.clip(offsets[:, 2] * variance[1], -10, 10))
    w = centers[:, 3] * np.exp(np.clip(offsets[:, 3] * variance[1], -10, 10))
    return centers_to_boxes(np.stack([cy, cx, h, w], axis=1))
