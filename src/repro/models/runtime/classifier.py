"""Runnable image classifiers for the synthetic ImageNet task.

These are real convolutional networks executed by the numpy kernels;
their weights are *constructed* (matched-filter templates) rather than
trained, which makes them exact in FP32 yet genuinely sensitive to
quantization - the property the Section III-B experiments need.

Two variants mirror Table I's heavy/light split:

* ``heavy`` (the ResNet-50 proxy): full-resolution templates, stride 1 -
  more MACs, higher accuracy.
* ``light`` (the MobileNet-v1 proxy): a stride-2 subsampling convolution
  followed by half-resolution templates - an order of magnitude fewer
  MACs and a few points less accurate (the subsampled image keeps half
  the matched-filter SNR).  Its template channels are additionally given
  a wide per-channel scale spread that a following dense layer
  compensates in FP32; per-tensor INT8 quantization crushes the
  small-scale channels, reproducing MobileNet's notorious quantization
  fragility (and the per-channel fix).
"""

from __future__ import annotations

import copy
from typing import Iterable, List

import numpy as np

from ...datasets.imagenet import SyntheticImageNet
from ..graph import (
    Activation,
    AvgPool2D,
    Conv2D,
    Dense,
    GlobalMaxPool,
    Sequential,
)
from ..quantization import QuantizationSpec, quantize_model
from ...datasets.glyphs import glyph_templates, resize_glyphs

#: Per-channel scale spread applied to the light variant (decades).
LIGHT_SCALE_SPREAD = 3.0


class GlyphClassifier:
    """A runnable classifier with a Sequential graph and predict API."""

    def __init__(self, graph: Sequential, input_shape, variant: str) -> None:
        self.graph = graph
        self.input_shape = tuple(input_shape)
        self.variant = variant

    @property
    def name(self) -> str:
        return f"glyph-classifier-{self.variant}"

    def logits(self, images: np.ndarray) -> np.ndarray:
        """Forward a batch ``(N, H, W, 1)`` to class logits ``(N, C)``."""
        if images.ndim == 3:
            images = images[None]
        return self.graph.forward(images.astype(np.float32))

    def predict(self, images: np.ndarray) -> np.ndarray:
        """Batch Top-1 predictions."""
        return np.argmax(self.logits(images), axis=-1)

    def predict_one(self, image: np.ndarray) -> int:
        return int(self.predict(image[None])[0])

    def macs(self) -> int:
        return self.graph.macs(self.input_shape)

    def param_count(self) -> int:
        return self.graph.param_count(self.input_shape)

    def quantized(self, spec: QuantizationSpec) -> "GlyphClassifier":
        """Return a fake-quantized deep copy (the original is untouched)."""
        clone = copy.deepcopy(self)
        quantize_model(clone.graph, spec)
        return clone


def build_glyph_classifier(
    dataset: SyntheticImageNet,
    variant: str = "heavy",
    gain: float = 4.0,
) -> GlyphClassifier:
    """Construct a matched-filter classifier for ``dataset``.

    The first convolution's filters are the (normalized) class glyph
    templates; global max pooling picks out each template's peak response;
    a dense layer maps template responses to class logits.
    """
    num_classes = dataset.num_classes
    input_shape = (dataset.image_size, dataset.image_size, 1)

    front: List = []
    if variant == "heavy":
        templates = glyph_templates(dataset.glyphs)       # (g, g, 1, C)
        channel_scales = np.ones(num_classes, dtype=np.float32)
    elif variant == "light":
        # Work at half resolution: a stride-2 1x1 subsampling convolution
        # recovers the coarse block pattern exactly at any glyph offset,
        # then half-size templates match it.
        subsample = Conv2D(1, 1, stride=2, padding="same", use_bias=False,
                           name="subsample")
        front.append(subsample)
        small = resize_glyphs(dataset.glyphs, max(3, dataset.glyph_size // 2))
        templates = glyph_templates(small)
        # Spread channel magnitudes across LIGHT_SCALE_SPREAD decades.
        exponents = np.linspace(
            -LIGHT_SCALE_SPREAD / 2, LIGHT_SCALE_SPREAD / 2, num_classes
        )
        channel_scales = (10.0 ** exponents).astype(np.float32)
    else:
        raise ValueError(f"unknown variant {variant!r}")

    conv = Conv2D(templates.shape[0], num_classes, stride=1,
                  padding="same", use_bias=False, name="template_conv")
    relu = Activation("relu", name="rectify")
    pool = GlobalMaxPool(name="pool")
    head = Dense(num_classes, use_bias=False, name="head")

    graph = Sequential(front + [conv, relu, pool, head],
                       name=f"glyph_classifier_{variant}")
    rng = np.random.default_rng(0)
    graph.initialize(input_shape, rng)

    if front:
        front[0].set_parameter("weights", np.ones((1, 1, 1, 1), dtype=np.float32))
    conv.set_parameter(
        "weights", (templates * gain * channel_scales).astype(np.float32)
    )
    # The head undoes the channel scaling (FP32-exact compensation).
    head.set_parameter(
        "weights", np.diag(1.0 / channel_scales).astype(np.float32)
    )
    return GlyphClassifier(graph, input_shape, variant)


def evaluate_classifier(
    model: GlyphClassifier,
    dataset: SyntheticImageNet,
    indices: Iterable[int] = None,
    batch_size: int = 64,
) -> float:
    """Top-1 accuracy (%) of ``model`` over ``dataset``.

    Convenience wrapper for calibration/experiments; benchmark runs
    instead flow through the LoadGen and the accuracy script.
    """
    if indices is None:
        indices = dataset.evaluation_indices
    indices = list(indices)
    correct = 0
    for start in range(0, len(indices), batch_size):
        chunk = indices[start:start + batch_size]
        images = np.stack([dataset.get_sample(i) for i in chunk])
        labels = np.array([dataset.get_label(i) for i in chunk])
        correct += int(np.sum(model.predict(images) == labels))
    return 100.0 * correct / len(indices)
