"""Runnable SSD detectors for the synthetic COCO task.

The detector is a genuine single-shot architecture built on
:class:`~repro.models.arch.ssd.SSDArch`: one convolutional stage whose
filters are the class glyph templates at the data set's two object
scales, a 1x1 class head wiring each template channel to the matching
(anchor, class) logit, and a box head (zero offsets - anchors are dense
enough that the undisplaced anchor clears the 0.5-IoU matching bar).
Softmax scores then flow through real multi-class NMS.

Variants mirror Table I:

* ``heavy`` (SSD-ResNet-34 proxy): stride-2 feature grid, full-size
  templates - denser anchors, higher mAP, ~5x the MACs.
* ``light`` (SSD-MobileNet-v1 proxy): stride-4 grid with subsampled
  templates - cheaper, lower mAP (sparser anchors miss more of the
  misaligned objects).
"""

from __future__ import annotations

import copy
from typing import Iterable, List, Optional

import numpy as np

from ...datasets.coco import GroundTruthObject, SyntheticCoco
from ...datasets.glyphs import glyph_templates
from ..arch.ssd import SSDArch
from ..graph import Activation, Conv2D, Sequential
from ..layers import softmax
from ..nms import Detection, multiclass_nms
from ..quantization import QuantizationSpec, quantize_model
from .anchors import decode_boxes, single_map_anchors


class GlyphDetector:
    """A runnable detector wrapping an :class:`SSDArch` instance."""

    def __init__(
        self,
        arch: SSDArch,
        anchors: np.ndarray,
        input_shape,
        variant: str,
        score_threshold: float = 0.3,
        nms_algorithm: str = "regular",
        nms_iou: float = 0.5,
    ) -> None:
        self.arch = arch
        self.anchors = anchors
        self.input_shape = tuple(input_shape)
        self.variant = variant
        self.score_threshold = score_threshold
        self.nms_algorithm = nms_algorithm
        self.nms_iou = nms_iou

    @property
    def name(self) -> str:
        return f"glyph-detector-{self.variant}"

    def macs(self) -> int:
        return self.arch.macs(self.input_shape)

    def param_count(self) -> int:
        return self.arch.param_count(self.input_shape)

    def predict(self, images: np.ndarray) -> List[List[Detection]]:
        """Detect objects in a batch ``(N, H, W, 1)``."""
        if images.ndim == 3:
            images = images[None]
        logits, offsets = self.arch.forward(images.astype(np.float32))
        results: List[List[Detection]] = []
        for n in range(images.shape[0]):
            scores = softmax(logits[n], axis=-1)
            boxes = decode_boxes(self.anchors, offsets[n])
            results.append(multiclass_nms(
                boxes,
                scores,
                score_threshold=self.score_threshold,
                iou_threshold=self.nms_iou,
                algorithm=self.nms_algorithm,
            ))
        return results

    def predict_one(self, image: np.ndarray) -> List[Detection]:
        return self.predict(image[None])[0]

    def quantized(self, spec: QuantizationSpec) -> "GlyphDetector":
        """Return a fake-quantized deep copy (the original is untouched)."""
        clone = copy.deepcopy(self)
        quantize_model(clone.arch, spec)
        return clone

    def with_nms(self, algorithm: str) -> "GlyphDetector":
        """Copy of this detector using a different NMS algorithm."""
        clone = copy.copy(self)
        clone.nms_algorithm = algorithm
        return clone


def build_glyph_detector(
    dataset: SyntheticCoco,
    variant: str = "heavy",
    gain: float = 4.0,
    background_bias: float = 9.0,
    score_threshold: float = 0.3,
    nms_algorithm: str = "regular",
) -> GlyphDetector:
    """Construct a template-matching SSD for ``dataset``."""
    num_classes = dataset.num_classes
    small_size, large_size = dataset.object_scales
    input_shape = (dataset.image_size, dataset.image_size, 1)

    if variant == "heavy":
        stride = 2
        small_bank = glyph_templates(dataset.glyphs)            # (s,s,1,C)
        large_bank = glyph_templates(dataset.large_glyphs)      # (l,l,1,C)
    elif variant == "light":
        stride = 4
        small_bank = glyph_templates(dataset.glyphs)
        large_bank = glyph_templates(dataset.large_glyphs)
    else:
        raise ValueError(f"unknown variant {variant!r}")

    kernel = large_size
    # Embed both template banks in a kernel of the large size; the small
    # bank sits centred, so its anchors share the window centre.
    filters = np.zeros((kernel, kernel, 1, 2 * num_classes), dtype=np.float32)
    pad = (kernel - small_size) // 2
    filters[pad:pad + small_size, pad:pad + small_size, :, :num_classes] = (
        small_bank * gain
    )
    filters[:, :, :, num_classes:] = large_bank * gain

    feature_conv = Conv2D(kernel, 2 * num_classes, stride=stride,
                          padding="valid", use_bias=False, name="templates")
    stage = Sequential([feature_conv, Activation("relu", name="rect")],
                       name="feature_stage")

    total_classes = num_classes + 1   # plus background
    arch = SSDArch(
        stages=[stage],
        anchors_per_cell=(2,),
        num_classes=total_classes,
        head_kernel=1,
        name=f"glyph_ssd_{variant}",
    )
    rng = np.random.default_rng(0)
    arch.initialize(input_shape, rng)
    feature_conv.set_parameter("weights", filters)

    # Class head: anchor 0 (small scale) reads the small template bank,
    # anchor 1 (large scale) the large bank; background is bias-only.
    cls_head = arch.class_heads[0]
    cls_weights = np.zeros((1, 1, 2 * num_classes, 2 * total_classes),
                           dtype=np.float32)
    cls_bias = np.zeros(2 * total_classes, dtype=np.float32)
    for anchor_index in range(2):
        base = anchor_index * total_classes
        cls_bias[base + 0] = background_bias
        for class_index in range(num_classes):
            feature_channel = anchor_index * num_classes + class_index
            cls_weights[0, 0, feature_channel, base + 1 + class_index] = 1.0
    cls_head.set_parameter("weights", cls_weights)
    cls_head.set_parameter("bias", cls_bias)

    # Box head: zero offsets - the anchors themselves are the boxes.
    box_head = arch.box_heads[0]
    box_head.set_parameter(
        "weights", np.zeros_like(box_head.params["weights"]))
    box_head.set_parameter("bias", np.zeros_like(box_head.params["bias"]))

    anchors = single_map_anchors(
        dataset.image_size, kernel, stride,
        scales=(small_size, large_size), padding="valid",
    )
    return GlyphDetector(
        arch, anchors, input_shape, variant,
        score_threshold=score_threshold,
        nms_algorithm=nms_algorithm,
    )


def evaluate_detector(
    model: GlyphDetector,
    dataset: SyntheticCoco,
    indices: Optional[Iterable[int]] = None,
    batch_size: int = 32,
) -> float:
    """mAP of ``model`` over ``dataset`` (convenience wrapper)."""
    from ...accuracy.map import mean_average_precision

    if indices is None:
        indices = dataset.evaluation_indices
    indices = list(indices)
    all_detections: List[List[Detection]] = []
    all_truth: List[List[GroundTruthObject]] = []
    for start in range(0, len(indices), batch_size):
        chunk = indices[start:start + batch_size]
        images = np.stack([dataset.get_sample(i) for i in chunk])
        all_detections.extend(model.predict(images))
        all_truth.extend(dataset.get_label(i) for i in chunk)
    return mean_average_precision(all_detections, all_truth)
