"""A tiny executable GNMT: LSTM encoder-decoder with additive attention.

The quality-bearing translation reference is the cipher transducer
(``repro.models.runtime.translator``); this module complements it with a
*computationally faithful* GNMT: a bidirectional-first LSTM encoder, a
residual LSTM decoder whose later layers consume the attention context,
Bahdanau attention, and greedy decoding - all executed step by step with
the numpy LSTM cell.  Weights are randomly initialized (there is no
offline way to obtain trained ones), so its outputs carry no meaning;
what it provides is the RNN compute *workload*: sequential dependency,
per-token cost, and sentence-length sensitivity - the properties behind
GNMT's distinctive server-scenario behaviour (Section VI-B).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ...datasets.wmt import BOS_ID, EOS_ID
from ..graph import Dense, Embedding, LSTMLayer
from ..layers import lstm_cell, softmax


class TinyGNMT:
    """Executable GNMT-v2-style network at toy scale."""

    def __init__(
        self,
        vocab_size: int = 64,
        hidden: int = 32,
        encoder_layers: int = 2,
        decoder_layers: int = 2,
        seed: int = 11,
    ) -> None:
        if encoder_layers < 2 or decoder_layers < 2:
            raise ValueError("TinyGNMT needs >= 2 encoder and decoder layers")
        self.vocab_size = vocab_size
        self.hidden = hidden
        rng = np.random.default_rng(seed)

        self.src_embedding = Embedding(vocab_size, hidden, name="src_emb")
        self.src_embedding.initialize((), rng)
        self.tgt_embedding = Embedding(vocab_size, hidden, name="tgt_emb")
        self.tgt_embedding.initialize((), rng)

        # Encoder: layer 1 bidirectional, layer 2 consumes the concat,
        # further layers hidden -> hidden.
        self.encoder: List[LSTMLayer] = [
            LSTMLayer(hidden, bidirectional=True, name="enc1")
        ]
        self.encoder[0].initialize((1, hidden), rng)
        widths = [2 * hidden] + [hidden] * (encoder_layers - 2)
        for i, width in enumerate(widths, start=2):
            layer = LSTMLayer(hidden, name=f"enc{i}")
            layer.initialize((1, width), rng)
            self.encoder.append(layer)

        # Decoder cells: layer 1 input = target embedding; layers 2+
        # input = previous hidden concat attention context.
        self.decoder_params: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        scale = 1.0 / np.sqrt(hidden)
        for i in range(decoder_layers):
            width = hidden if i == 0 else 2 * hidden
            w = rng.uniform(-scale, scale, (width, 4 * hidden)).astype(np.float32)
            u = rng.uniform(-scale, scale, (hidden, 4 * hidden)).astype(np.float32)
            b = np.zeros(4 * hidden, dtype=np.float32)
            self.decoder_params.append((w, u, b))

        # Bahdanau attention: score = v . tanh(Wq q + Wk k).
        self.attn_query = Dense(hidden, use_bias=False, name="attn_q")
        self.attn_query.initialize((hidden,), rng)
        self.attn_key = Dense(hidden, use_bias=False, name="attn_k")
        self.attn_key.initialize((hidden,), rng)
        self.attn_v = rng.normal(0, scale, hidden).astype(np.float32)

        self.projection = Dense(vocab_size, name="proj")
        self.projection.initialize((hidden,), rng)

    @property
    def name(self) -> str:
        return "tiny-gnmt"

    # -- encoder -----------------------------------------------------------------

    def encode(self, source: Sequence[int]) -> np.ndarray:
        """Run the encoder stack; returns memory ``(L, hidden)``."""
        ids = np.asarray(list(source))
        if ids.size == 0:
            raise ValueError("cannot encode an empty source sentence")
        x = self.src_embedding.forward(ids)[None]      # (1, L, H)
        for layer in self.encoder:
            y = layer.forward(x)
            # Residual connections once widths match (GNMT-style).
            x = y + x if y.shape == x.shape else y
        return x[0]

    # -- attention ----------------------------------------------------------------

    def _attend(self, query: np.ndarray, keys: np.ndarray,
                memory: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        projected_query = self.attn_query.forward(query[None])[0]
        scores = np.tanh(keys + projected_query) @ self.attn_v
        weights = softmax(scores[None], axis=-1)[0]
        return weights @ memory, weights

    # -- decoder ------------------------------------------------------------------

    def translate(self, source: Sequence[int],
                  max_length: Optional[int] = None) -> List[int]:
        """Greedy decode; stops at EOS or ``max_length`` tokens."""
        memory = self.encode(source)
        keys = self.attn_key.forward(memory)
        if max_length is None:
            max_length = 2 * len(list(source)) + 4

        hidden = self.hidden
        states = [
            (np.zeros((1, hidden), dtype=np.float32),
             np.zeros((1, hidden), dtype=np.float32))
            for _ in self.decoder_params
        ]
        token = BOS_ID
        output: List[int] = []
        for _step in range(max_length):
            x = self.tgt_embedding.forward(np.asarray([token]))  # (1, H)
            # Layer 1 drives the attention query.
            w, u, b = self.decoder_params[0]
            h, c = lstm_cell(x, states[0][0], states[0][1], w, u, b)
            states[0] = (h, c)
            context, _weights = self._attend(h[0], keys, memory)
            # Later layers consume hidden (+ residual) concat context.
            layer_in = np.concatenate([h, context[None]], axis=1)
            for i in range(1, len(self.decoder_params)):
                w, u, b = self.decoder_params[i]
                h_next, c_next = lstm_cell(
                    layer_in, states[i][0], states[i][1], w, u, b)
                h_next = h_next + h          # residual
                states[i] = (h_next, c_next)
                layer_in = np.concatenate([h_next, context[None]], axis=1)
                h = h_next
            logits = self.projection.forward(h)[0]
            token = int(np.argmax(logits))
            if token == EOS_ID:
                break
            output.append(token)
        return output

    def translate_beam(self, source: Sequence[int], beam_size: int = 4,
                       max_length: Optional[int] = None,
                       length_penalty: float = 0.6) -> List[int]:
        """Beam-search decode (GNMT's decoding strategy).

        Hypotheses are scored by length-normalized log probability with
        GNMT's ``((5 + len) / 6) ** alpha`` penalty.  ``beam_size == 1``
        reduces to greedy decoding.
        """
        if beam_size < 1:
            raise ValueError(f"beam_size must be >= 1, got {beam_size}")
        memory = self.encode(source)
        keys = self.attn_key.forward(memory)
        if max_length is None:
            max_length = 2 * len(list(source)) + 4
        hidden = self.hidden

        def initial_states():
            return [
                (np.zeros((1, hidden), dtype=np.float32),
                 np.zeros((1, hidden), dtype=np.float32))
                for _ in self.decoder_params
            ]

        def advance(states, token):
            """One decoder step; returns (log_probs, new_states)."""
            x = self.tgt_embedding.forward(np.asarray([token]))
            new_states = list(states)
            w, u, b = self.decoder_params[0]
            h, c = lstm_cell(x, states[0][0], states[0][1], w, u, b)
            new_states[0] = (h, c)
            context, _ = self._attend(h[0], keys, memory)
            layer_in = np.concatenate([h, context[None]], axis=1)
            for i in range(1, len(self.decoder_params)):
                w, u, b = self.decoder_params[i]
                h_next, c_next = lstm_cell(
                    layer_in, states[i][0], states[i][1], w, u, b)
                h_next = h_next + h
                new_states[i] = (h_next, c_next)
                layer_in = np.concatenate([h_next, context[None]], axis=1)
                h = h_next
            logits = self.projection.forward(h)[0]
            shifted = logits - logits.max()
            log_probs = shifted - np.log(np.exp(shifted).sum())
            return log_probs, new_states

        def penalty(length):
            return ((5.0 + length) / 6.0) ** length_penalty

        # Each beam entry: (score, tokens, states, finished).
        beams = [(0.0, [], initial_states(), False)]
        for _step in range(max_length):
            candidates = []
            for score, tokens, states, finished in beams:
                if finished:
                    candidates.append((score, tokens, states, True))
                    continue
                last = tokens[-1] if tokens else BOS_ID
                log_probs, new_states = advance(states, last)
                top = np.argsort(log_probs)[::-1][:beam_size]
                for token in top:
                    token = int(token)
                    new_score = score + float(log_probs[token])
                    if token == EOS_ID:
                        candidates.append(
                            (new_score, tokens, new_states, True))
                    else:
                        candidates.append(
                            (new_score, tokens + [token], new_states, False))
            candidates.sort(
                key=lambda c: c[0] / penalty(max(len(c[1]), 1)),
                reverse=True)
            beams = candidates[:beam_size]
            if all(finished for _s, _t, _st, finished in beams):
                break
        best = max(beams,
                   key=lambda c: c[0] / penalty(max(len(c[1]), 1)))
        return best[1]

    def sequence_log_prob(self, source: Sequence[int],
                          tokens: Sequence[int]) -> float:
        """Log probability the decoder assigns to ``tokens`` (teacher
        forcing); used to compare decoding strategies."""
        memory = self.encode(source)
        keys = self.attn_key.forward(memory)
        hidden = self.hidden
        states = [
            (np.zeros((1, hidden), dtype=np.float32),
             np.zeros((1, hidden), dtype=np.float32))
            for _ in self.decoder_params
        ]
        total = 0.0
        previous = BOS_ID
        for token in list(tokens) + [EOS_ID]:
            x = self.tgt_embedding.forward(np.asarray([previous]))
            w, u, b = self.decoder_params[0]
            h, c = lstm_cell(x, states[0][0], states[0][1], w, u, b)
            states[0] = (h, c)
            context, _ = self._attend(h[0], keys, memory)
            layer_in = np.concatenate([h, context[None]], axis=1)
            for i in range(1, len(self.decoder_params)):
                w, u, b = self.decoder_params[i]
                h_next, c_next = lstm_cell(
                    layer_in, states[i][0], states[i][1], w, u, b)
                h_next = h_next + h
                states[i] = (h_next, c_next)
                layer_in = np.concatenate([h_next, context[None]], axis=1)
                h = h_next
            logits = self.projection.forward(h)[0]
            shifted = logits - logits.max()
            log_probs = shifted - np.log(np.exp(shifted).sum())
            total += float(log_probs[token])
            previous = token
        return total

    # -- accounting ----------------------------------------------------------------

    def macs_per_sentence(self, src_len: int, tgt_len: int) -> int:
        """Multiply-accumulates of one greedy translation."""
        h = self.hidden
        total = 0
        widths = [h] + [2 * h] + [h] * (len(self.encoder) - 2)
        for layer, width in zip(self.encoder, widths):
            total += layer.macs((1, width)) * src_len
        for i, (w, _u, _b) in enumerate(self.decoder_params):
            total += (w.shape[0] * 4 * h + h * 4 * h) * tgt_len
        attn = h * h * (src_len + tgt_len) + src_len * h * tgt_len
        total += attn
        total += h * self.vocab_size * tgt_len
        return total
