"""MobileNet-v2 architecture (Sandler et al. 2018).

Section III-A: "We evaluated both MobileNet-v1 and MobileNet-v2 for the
MLPerf Inference v0.5 suite, selecting the former because of its wider
adoption."  This module provides the candidate that was *not* selected,
so the selection study itself is reproducible (see
``benchmarks/test_model_selection.py``): v2's inverted residuals with
linear bottlenecks reach slightly higher accuracy at roughly half the
operations (canonically 3.50 M parameters and ~0.60 GOPs at 224x224,
versus v1's 4.23 M and 1.14 GOPs).
"""

from __future__ import annotations

from typing import List, Tuple

from ..graph import (
    Activation,
    BatchNorm,
    Conv2D,
    Dense,
    DepthwiseConv2D,
    GlobalAvgPool,
    Layer,
    Residual,
    Sequential,
)

#: (expansion t, output channels c, repeats n, first stride s) per stage,
#: exactly as published.
INVERTED_RESIDUAL_SPECS: Tuple[Tuple[int, int, int, int], ...] = (
    (1, 16, 1, 1),
    (6, 24, 2, 2),
    (6, 32, 3, 2),
    (6, 64, 4, 2),
    (6, 96, 3, 1),
    (6, 160, 3, 2),
    (6, 320, 1, 1),
)

#: Channels of the final 1x1 expansion before pooling.
LAST_CHANNELS = 1280


def _scaled(channels: int, multiplier: float) -> int:
    return max(8, int(round(channels * multiplier)))


def _conv_bn_relu6(kernel, filters: int, stride=1, name: str = "conv"
                   ) -> List[Layer]:
    return [
        Conv2D(kernel, filters, stride=stride, use_bias=False, name=name),
        BatchNorm(name=f"{name}_bn"),
        Activation("relu6", name=f"{name}_relu6"),
    ]


def inverted_residual(in_channels: int, expansion: int, out_channels: int,
                      stride: int, name: str) -> Layer:
    """Expand 1x1 -> depthwise 3x3 -> project 1x1 (linear bottleneck)."""
    layers: List[Layer] = []
    hidden = in_channels * expansion
    if expansion != 1:
        layers += _conv_bn_relu6(1, hidden, name=f"{name}_expand")
    layers += [
        DepthwiseConv2D(3, stride=stride, use_bias=False, name=f"{name}_dw"),
        BatchNorm(name=f"{name}_dw_bn"),
        Activation("relu6", name=f"{name}_dw_relu6"),
        Conv2D(1, out_channels, use_bias=False, name=f"{name}_project"),
        BatchNorm(name=f"{name}_project_bn"),
    ]
    body = Sequential(layers, name=f"{name}_body")
    if stride == 1 and in_channels == out_channels:
        # The residual join is linear: no activation after the add.
        return Residual(body, activation="", name=name)
    return body


def build_mobilenet_v2(
    num_classes: int = 1000,
    width_multiplier: float = 1.0,
    include_top: bool = True,
) -> Sequential:
    """Build MobileNet-v2 as a :class:`Sequential` graph."""
    layers: List[Layer] = _conv_bn_relu6(
        3, _scaled(32, width_multiplier), stride=2, name="stem")
    in_channels = _scaled(32, width_multiplier)
    block_index = 0
    for expansion, channels, repeats, first_stride in INVERTED_RESIDUAL_SPECS:
        out_channels = _scaled(channels, width_multiplier)
        for repeat in range(repeats):
            block_index += 1
            stride = first_stride if repeat == 0 else 1
            layers.append(inverted_residual(
                in_channels, expansion, out_channels, stride,
                name=f"block{block_index}"))
            in_channels = out_channels
    last = (
        _scaled(LAST_CHANNELS, width_multiplier)
        if width_multiplier > 1.0 else LAST_CHANNELS
    )
    layers += _conv_bn_relu6(1, last, name="head_conv")
    if include_top:
        layers.append(GlobalAvgPool(name="avgpool"))
        layers.append(Dense(num_classes, name="fc"))
    return Sequential(layers, name=f"mobilenet_v2_{width_multiplier:g}")


def mobilenet_v2(num_classes: int = 1000) -> Sequential:
    """The MobileNet-v2 candidate the paper evaluated but did not pick."""
    return build_mobilenet_v2(num_classes=num_classes)
