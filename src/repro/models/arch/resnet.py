"""ResNet architecture definitions (He et al.), v1 and v1.5 variants.

MLPerf selected ResNet-50 **v1.5** specifically because "ResNet-50" is
not a portable model name: v1 puts the stride-2 convolution in the 1x1
projection of a downsampling bottleneck, v1.5 moves it to the 3x3
convolution, changing both accuracy (+~0.5% Top-1) and cost (~+12%
GOPs).  Both variants are expressible here; the registry pins v1.5.

``build_resnet(depth=50)`` reproduces Table I: 25.6 M parameters and
8.2 GOPs (= 2 x 4.1 GMACs) on a 224x224x3 input.
"""

from __future__ import annotations

from typing import List, Sequence

from ..graph import (
    Activation,
    BatchNorm,
    Conv2D,
    Dense,
    GlobalAvgPool,
    Layer,
    MaxPool2D,
    Residual,
    Sequential,
)

#: Blocks per stage for the standard depths.
STAGE_BLOCKS = {
    18: (2, 2, 2, 2),
    34: (3, 4, 6, 3),
    50: (3, 4, 6, 3),
    101: (3, 4, 23, 3),
    152: (3, 8, 36, 3),
}

#: Depths that use the bottleneck (1x1-3x3-1x1) block.
BOTTLENECK_DEPTHS = frozenset({50, 101, 152})

BOTTLENECK_EXPANSION = 4


def conv_bn(kernel, filters: int, stride=1, activation: str = "relu",
            name: str = "conv", padding: str = "same") -> List[Layer]:
    """Conv (no bias) + BN + optional activation, the ResNet idiom."""
    block: List[Layer] = [
        Conv2D(kernel, filters, stride=stride, use_bias=False, name=name,
               padding=padding),
        BatchNorm(name=f"{name}_bn"),
    ]
    if activation:
        block.append(Activation(activation, name=f"{name}_{activation}"))
    return block


def basic_block(in_channels: int, channels: int, stride: int,
                name: str) -> Residual:
    """Two 3x3 convolutions (ResNet-18/34)."""
    body = Sequential(
        conv_bn(3, channels, stride=stride, name=f"{name}_a")
        + conv_bn(3, channels, activation="", name=f"{name}_b"),
        name=f"{name}_body",
    )
    shortcut = None
    if stride != 1 or in_channels != channels:
        shortcut = Sequential(
            conv_bn(1, channels, stride=stride, activation="",
                    name=f"{name}_proj"),
            name=f"{name}_short",
        )
    return Residual(body, shortcut, name=name)


def bottleneck_block(in_channels: int, channels: int, stride: int,
                     version: str, name: str) -> Residual:
    """1x1 reduce, 3x3, 1x1 expand (ResNet-50/101/152).

    ``version`` selects where the stride lives: ``"v1"`` strides the
    first 1x1, ``"v1.5"`` strides the 3x3.
    """
    if version not in ("v1", "v1.5"):
        raise ValueError(f"unknown ResNet version {version!r}")
    stride_1x1 = stride if version == "v1" else 1
    stride_3x3 = stride if version == "v1.5" else 1
    out_channels = channels * BOTTLENECK_EXPANSION
    body = Sequential(
        conv_bn(1, channels, stride=stride_1x1, name=f"{name}_a")
        + conv_bn(3, channels, stride=stride_3x3, name=f"{name}_b")
        + conv_bn(1, out_channels, activation="", name=f"{name}_c"),
        name=f"{name}_body",
    )
    shortcut = None
    if stride != 1 or in_channels != out_channels:
        shortcut = Sequential(
            conv_bn(1, out_channels, stride=stride, activation="",
                    name=f"{name}_proj"),
            name=f"{name}_short",
        )
    return Residual(body, shortcut, name=name)


def build_resnet(
    depth: int = 50,
    num_classes: int = 1000,
    version: str = "v1.5",
    width: int = 64,
    stage_strides: Sequence[int] = (1, 2, 2, 2),
    include_top: bool = True,
    stages: int = 4,
) -> Sequential:
    """Build a ResNet as a :class:`Sequential` graph.

    ``width`` scales every stage (64 is standard); ``stage_strides`` and
    ``stages`` exist so SSD backbones can truncate/retime the network;
    tiny runnable instantiations pass a small ``width``.
    """
    if depth not in STAGE_BLOCKS:
        raise ValueError(f"unsupported depth {depth}; choose from {sorted(STAGE_BLOCKS)}")
    if not 1 <= stages <= 4:
        raise ValueError(f"stages must be in 1..4, got {stages}")
    blocks_per_stage = STAGE_BLOCKS[depth][:stages]
    bottleneck = depth in BOTTLENECK_DEPTHS

    layers: List[Layer] = []
    layers += conv_bn(7, width, stride=2, name="conv1")
    layers.append(MaxPool2D(3, stride=2, padding="same", name="pool1"))

    in_channels = width
    for stage_index, block_count in enumerate(blocks_per_stage):
        channels = width * (2 ** stage_index)
        for block_index in range(block_count):
            stride = stage_strides[stage_index] if block_index == 0 else 1
            name = f"stage{stage_index + 1}_block{block_index + 1}"
            if bottleneck:
                block = bottleneck_block(in_channels, channels, stride,
                                         version, name)
                in_channels = channels * BOTTLENECK_EXPANSION
            else:
                block = basic_block(in_channels, channels, stride, name)
                in_channels = channels
            layers.append(block)

    if include_top:
        layers.append(GlobalAvgPool(name="avgpool"))
        layers.append(Dense(num_classes, name="fc"))

    return Sequential(layers, name=f"resnet{depth}_{version}")


def resnet50_v15(num_classes: int = 1000) -> Sequential:
    """The MLPerf heavy image-classification reference model."""
    return build_resnet(depth=50, num_classes=num_classes, version="v1.5")
