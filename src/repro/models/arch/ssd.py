"""SSD (Single Shot MultiBox Detector) architecture definitions.

Two reference detectors from Table I:

* **SSD-MobileNet-v1** (300x300 COCO, the "light" detector): MobileNet
  backbone tapped at block 11 and block 13, four extra downsampling
  stages, 1x1 prediction heads, anchors (3, 6, 6, 6, 6, 6), 91 classes.
  Target: 6.91 M parameters, 2.47 GOPs/input.

* **SSD-ResNet-34** (1200x1200 upscaled COCO, the "heavy" detector):
  ResNet-34 backbone with the stage-3 downsampling removed (the MLPerf
  modification that keeps a 150x150 feature grid at 1200x1200 input), a
  stride-3 bridge to a 50x50 grid, the ResNet stage-4 blocks, and four
  extra stages, giving the characteristic feature-map ladder
  (50, 25, 13, 7, 3, 3); 3x3 heads, anchors (4, 6, 6, 6, 4, 4),
  81 classes.  Target: 36.3 M parameters, 433 GOPs/input.

Both are built from the same :class:`SSDArch` container so the runnable
tiny detector (``repro.models.runtime.detector``) shares the exact code
path the accounting uses.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..graph import Conv2D, Layer, Sequential, Shape
from .mobilenet import build_mobilenet_v1
from .resnet import basic_block, build_resnet, conv_bn


class SSDArch(Layer):
    """Backbone stages + per-feature-map prediction heads.

    ``stages`` are applied sequentially; the output of stage ``i`` is
    feature map ``i``.  Each feature map gets a class head predicting
    ``anchors * num_classes`` logits and a box head predicting
    ``anchors * 4`` offsets.
    """

    def __init__(
        self,
        stages: Sequence[Sequential],
        anchors_per_cell: Sequence[int],
        num_classes: int,
        head_kernel: int = 3,
        name: str = "ssd",
    ) -> None:
        super().__init__(name)
        if len(stages) != len(anchors_per_cell):
            raise ValueError(
                f"{len(stages)} stages but {len(anchors_per_cell)} anchor specs"
            )
        self.stages = list(stages)
        self.anchors_per_cell = tuple(int(a) for a in anchors_per_cell)
        self.num_classes = int(num_classes)
        self.class_heads: List[Conv2D] = []
        self.box_heads: List[Conv2D] = []
        for i, anchors in enumerate(self.anchors_per_cell):
            self.class_heads.append(
                Conv2D(head_kernel, anchors * num_classes, name=f"cls_head{i}")
            )
            self.box_heads.append(
                Conv2D(head_kernel, anchors * 4, name=f"box_head{i}")
            )

    # -- shapes -----------------------------------------------------------------

    def feature_shapes(self, input_shape: Shape) -> List[Shape]:
        shapes = []
        shape = input_shape
        for stage in self.stages:
            shape = stage.output_shape(shape)
            shapes.append(shape)
        return shapes

    def output_shape(self, input_shape: Shape) -> Shape:
        """Total predictions: ``(num_anchors, num_classes + 4)``."""
        return (self.total_anchors(input_shape), self.num_classes + 4)

    def total_anchors(self, input_shape: Shape) -> int:
        total = 0
        for shape, anchors in zip(self.feature_shapes(input_shape),
                                  self.anchors_per_cell):
            total += shape[0] * shape[1] * anchors
        return total

    # -- accounting ---------------------------------------------------------------

    def param_count(self, input_shape: Shape) -> int:
        total = 0
        shape = input_shape
        for stage, cls_head, box_head in zip(
            self.stages, self.class_heads, self.box_heads
        ):
            total += stage.param_count(shape)
            shape = stage.output_shape(shape)
            total += cls_head.param_count(shape)
            total += box_head.param_count(shape)
        return total

    def macs(self, input_shape: Shape) -> int:
        total = 0
        shape = input_shape
        for stage, cls_head, box_head in zip(
            self.stages, self.class_heads, self.box_heads
        ):
            total += stage.macs(shape)
            shape = stage.output_shape(shape)
            total += cls_head.macs(shape)
            total += box_head.macs(shape)
        return total

    # -- execution ----------------------------------------------------------------

    def initialize(self, input_shape: Shape, rng: np.random.Generator) -> Shape:
        shape = input_shape
        for stage, cls_head, box_head in zip(
            self.stages, self.class_heads, self.box_heads
        ):
            shape = stage.initialize(shape, rng)
            cls_head.initialize(shape, rng)
            box_head.initialize(shape, rng)
        return self.output_shape(input_shape)

    def forward(self, x: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(class_logits, box_offsets)``.

        ``class_logits``: ``(N, total_anchors, num_classes)``;
        ``box_offsets``: ``(N, total_anchors, 4)``.  Anchor ordering is
        feature-map major, then row, column, anchor - the order
        ``repro.models.runtime.anchors`` generates.
        """
        n = x.shape[0]
        all_logits = []
        all_boxes = []
        feat = x
        for stage, cls_head, box_head, anchors in zip(
            self.stages, self.class_heads, self.box_heads,
            self.anchors_per_cell,
        ):
            feat = stage.forward(feat)
            logits = cls_head.forward(feat)
            boxes = box_head.forward(feat)
            all_logits.append(logits.reshape(n, -1, self.num_classes))
            all_boxes.append(boxes.reshape(n, -1, 4))
        return (
            np.concatenate(all_logits, axis=1),
            np.concatenate(all_boxes, axis=1),
        )

    def named_parameters(self, prefix: str = ""):
        base = f"{prefix}{self.name}."
        for i, (stage, cls_head, box_head) in enumerate(
            zip(self.stages, self.class_heads, self.box_heads)
        ):
            yield from stage.named_parameters(f"{base}stage{i}:")
            yield from cls_head.named_parameters(f"{base}stage{i}:")
            yield from box_head.named_parameters(f"{base}stage{i}:")


def _extra_stage(mid: int, out: int, stride: int, index: int,
                 kernel: int = 3, padding: str = "same") -> Sequential:
    """The standard SSD extra block: 1x1 squeeze then 3x3 (strided)."""
    name = f"extra{index}"
    return Sequential(
        conv_bn(1, mid, name=f"{name}_squeeze")
        + conv_bn(kernel, out, stride=stride, name=f"{name}_expand",
                  padding=padding),
        name=name,
    )


#: COCO class counts used by the two reference detectors (the TF object
#: detection API counts 90 things + background = 91; the torchvision SSD
#: lineage counts 80 things + background = 81).
SSD_MOBILENET_CLASSES = 91
SSD_RESNET34_CLASSES = 81

SSD_MOBILENET_ANCHORS = (3, 6, 6, 6, 6, 6)
SSD_RESNET34_ANCHORS = (4, 6, 6, 6, 4, 4)


def build_ssd_mobilenet_v1(
    num_classes: int = SSD_MOBILENET_CLASSES,
    width_multiplier: float = 1.0,
) -> SSDArch:
    """SSD-MobileNet-v1 for 300x300 inputs (the light detector)."""
    trunk = build_mobilenet_v1(
        width_multiplier=width_multiplier, include_top=False
    )
    # MobileNet layout: 3 stem layers then 6 layers per separable block.
    # Feature map 1 taps block 11 (19x19), feature map 2 taps block 13.
    split = 3 + 11 * 6
    stage1 = Sequential(trunk.children[:split], name="backbone_to_block11")
    stage2 = Sequential(trunk.children[split:], name="block12_to_block13")

    def scaled(c: int) -> int:
        return max(8, int(round(c * width_multiplier)))

    stages = [
        stage1,
        stage2,
        _extra_stage(scaled(256), scaled(512), 2, 1),
        _extra_stage(scaled(128), scaled(256), 2, 2),
        _extra_stage(scaled(128), scaled(256), 2, 3),
        _extra_stage(scaled(64), scaled(128), 2, 4),
    ]
    return SSDArch(
        stages,
        anchors_per_cell=SSD_MOBILENET_ANCHORS,
        num_classes=num_classes,
        head_kernel=1,
        name="ssd_mobilenet_v1",
    )


def build_ssd_resnet34(num_classes: int = SSD_RESNET34_CLASSES) -> SSDArch:
    """SSD-ResNet-34 for 1200x1200 inputs (the heavy detector)."""
    # Backbone: ResNet-34 conv1..stage3 with stage-3 stride removed, so a
    # 1200x1200 input keeps a 150x150 grid through stage 3.
    backbone = build_resnet(
        depth=34,
        include_top=False,
        stages=3,
        stage_strides=(1, 2, 1),
    )
    # Stride-3 bridge down to the 50x50 grid of the first feature map.
    bridge = Sequential(
        conv_bn(3, 256, stride=3, name="bridge"), name="bridge_stage"
    )
    stage1 = Sequential(backbone.children + bridge.children,
                        name="backbone_to_50x50")
    # ResNet stage 4 (three 512-channel basic blocks) down to 25x25.
    stage4_blocks = [
        basic_block(256, 512, 2, "stage4_block1"),
        basic_block(512, 512, 1, "stage4_block2"),
        basic_block(512, 512, 1, "stage4_block3"),
    ]
    stage2 = Sequential(stage4_blocks, name="stage4_to_25x25")
    stages = [
        stage1,
        stage2,
        _extra_stage(256, 512, 2, 1),                      # 25 -> 13
        _extra_stage(256, 512, 2, 2),                      # 13 -> 7
        _extra_stage(128, 256, 2, 3, padding="valid"),     # 7  -> 3
        _extra_stage(128, 256, 1, 4),                      # 3  -> 3
    ]
    return SSDArch(
        stages,
        anchors_per_cell=SSD_RESNET34_ANCHORS,
        num_classes=num_classes,
        head_kernel=3,
        name="ssd_resnet34",
    )
