"""Full-size architecture definitions reproducing Table I."""

from .gnmt import GNMTArch, build_gnmt
from .mobilenet import build_mobilenet_v1, mobilenet_v1
from .mobilenet_v2 import build_mobilenet_v2, mobilenet_v2
from .resnet import build_resnet, resnet50_v15
from .ssd import SSDArch, build_ssd_mobilenet_v1, build_ssd_resnet34

__all__ = [
    "GNMTArch",
    "SSDArch",
    "build_gnmt",
    "build_mobilenet_v1",
    "build_mobilenet_v2",
    "build_resnet",
    "build_ssd_mobilenet_v1",
    "build_ssd_resnet34",
    "mobilenet_v1",
    "mobilenet_v2",
    "resnet50_v15",
]
