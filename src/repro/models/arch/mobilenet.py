"""MobileNet-v1 architecture (Howard et al. 2017).

The MLPerf light image-classification reference is the full-width,
full-resolution MobileNet-v1-1.0-224: 4.2 M parameters and 1.138 GOPs
(= 2 x 569 MMACs) per 224x224 input - a 6.1x parameter and 6.8x
operation reduction versus ResNet-50 v1.5, which the test suite checks.

``width_multiplier`` exposes the family's accuracy/complexity knob used
by the Figure 1 Pareto-frontier benchmark.
"""

from __future__ import annotations

from typing import List, Tuple

from ..graph import (
    Activation,
    BatchNorm,
    Conv2D,
    Dense,
    DepthwiseConv2D,
    GlobalAvgPool,
    Layer,
    Sequential,
)

#: (stride, output channels) of the 13 depthwise-separable blocks.
BLOCK_SPECS: Tuple[Tuple[int, int], ...] = (
    (1, 64),
    (2, 128), (1, 128),
    (2, 256), (1, 256),
    (2, 512), (1, 512), (1, 512), (1, 512), (1, 512), (1, 512),
    (2, 1024), (1, 1024),
)


def _scaled(channels: int, multiplier: float) -> int:
    """Apply the width multiplier, keeping at least 8 channels."""
    return max(8, int(round(channels * multiplier)))


def separable_block(stride: int, out_channels: int, index: int) -> List[Layer]:
    """Depthwise 3x3 + BN + ReLU6, then pointwise 1x1 + BN + ReLU6."""
    name = f"block{index}"
    return [
        DepthwiseConv2D(3, stride=stride, use_bias=False, name=f"{name}_dw"),
        BatchNorm(name=f"{name}_dw_bn"),
        Activation("relu6", name=f"{name}_dw_relu"),
        Conv2D(1, out_channels, use_bias=False, name=f"{name}_pw"),
        BatchNorm(name=f"{name}_pw_bn"),
        Activation("relu6", name=f"{name}_pw_relu"),
    ]


def build_mobilenet_v1(
    num_classes: int = 1000,
    width_multiplier: float = 1.0,
    include_top: bool = True,
    num_blocks: int = len(BLOCK_SPECS),
) -> Sequential:
    """Build MobileNet-v1; ``num_blocks`` truncates for SSD backbones."""
    if not 1 <= num_blocks <= len(BLOCK_SPECS):
        raise ValueError(
            f"num_blocks must be in 1..{len(BLOCK_SPECS)}, got {num_blocks}"
        )
    layers: List[Layer] = [
        Conv2D(3, _scaled(32, width_multiplier), stride=2, use_bias=False,
               name="conv1"),
        BatchNorm(name="conv1_bn"),
        Activation("relu6", name="conv1_relu"),
    ]
    for index, (stride, channels) in enumerate(BLOCK_SPECS[:num_blocks], start=1):
        layers += separable_block(stride, _scaled(channels, width_multiplier),
                                  index)
    if include_top:
        layers.append(GlobalAvgPool(name="avgpool"))
        layers.append(Dense(num_classes, name="fc"))
    return Sequential(layers, name=f"mobilenet_v1_{width_multiplier:g}")


def mobilenet_v1(num_classes: int = 1000) -> Sequential:
    """The MLPerf light image-classification reference model."""
    return build_mobilenet_v1(num_classes=num_classes, width_multiplier=1.0)
