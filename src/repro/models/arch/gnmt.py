"""GNMT architecture definition (Wu et al. 2016, MLPerf v0.5 variant).

The MLPerf translation reference is the GNMT-v2 style model used by the
training benchmark: a 4-layer LSTM encoder whose first layer is
bidirectional, a 4-layer LSTM decoder with residual connections from the
second layer up, additive (Bahdanau) attention computed from the first
decoder layer and fed to the subsequent layers, separate source/target
embeddings, and a full-vocabulary softmax projection.

With hidden size 1024 and the WMT16 EN-DE BPE vocabulary (36,548
entries) the parameter count lands on Table I's 210 M figure (to within
a few percent; the test suite pins the tolerance).

Unlike CNNs, per-input cost depends on sequence length, so ``macs``
takes source/target lengths; the registry quotes the cost at the WMT16
average of ~26 tokens.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..graph import Dense, Embedding, LSTMLayer

#: WMT16 EN-DE BPE-32k vocabulary size used by the MLPerf reference.
GNMT_VOCAB_SIZE = 36_548

GNMT_HIDDEN = 1024
GNMT_ENCODER_LAYERS = 4
GNMT_DECODER_LAYERS = 4

#: Average sentence length (tokens) of the WMT16 EN-DE evaluation set;
#: used to quote a per-input operation count.
WMT16_MEAN_TOKENS = 26


@dataclass
class GNMTArch:
    """Parameter/operation accounting for the GNMT reference model."""

    vocab_size: int = GNMT_VOCAB_SIZE
    hidden: int = GNMT_HIDDEN
    encoder_layers: int = GNMT_ENCODER_LAYERS
    decoder_layers: int = GNMT_DECODER_LAYERS

    def __post_init__(self) -> None:
        if self.encoder_layers < 2 or self.decoder_layers < 2:
            raise ValueError("GNMT needs at least 2 encoder and decoder layers")
        h = self.hidden
        self.src_embedding = Embedding(self.vocab_size, h, name="src_emb")
        self.tgt_embedding = Embedding(self.vocab_size, h, name="tgt_emb")

        # Encoder: layer 1 bidirectional, layer 2 consumes the 2h concat,
        # remaining layers are h -> h.
        self.encoder: List[LSTMLayer] = [
            LSTMLayer(h, bidirectional=True, name="enc1")
        ]
        self.encoder.append(LSTMLayer(h, name="enc2"))
        for i in range(3, self.encoder_layers + 1):
            self.encoder.append(LSTMLayer(h, name=f"enc{i}"))

        # Decoder: layer 1 consumes the target embedding (h); attention
        # context (h) is concatenated into the inputs of layers 2..N.
        self.decoder: List[LSTMLayer] = [LSTMLayer(h, name="dec1")]
        for i in range(2, self.decoder_layers + 1):
            self.decoder.append(LSTMLayer(h, name=f"dec{i}"))

        # Bahdanau attention: query and key projections plus the score
        # vector.
        self.attention_query = Dense(h, use_bias=False, name="attn_q")
        self.attention_key = Dense(h, use_bias=False, name="attn_k")
        self.attention_score_params = h  # the "v" vector

        self.projection = Dense(self.vocab_size, name="proj")

    # -- per-layer input widths -------------------------------------------------

    def _encoder_input_widths(self) -> List[int]:
        h = self.hidden
        widths = [h]          # layer 1 input: source embedding
        widths.append(2 * h)  # layer 2 input: bidirectional concat
        widths.extend([h] * (self.encoder_layers - 2))
        return widths

    def _decoder_input_widths(self) -> List[int]:
        h = self.hidden
        widths = [h]                                 # layer 1: target emb
        widths.extend([2 * h] * (self.decoder_layers - 1))  # hidden + context
        return widths

    # -- accounting ---------------------------------------------------------------

    def param_count(self) -> int:
        h = self.hidden
        total = 0
        total += self.src_embedding.param_count(())
        total += self.tgt_embedding.param_count(())
        for layer, width in zip(self.encoder, self._encoder_input_widths()):
            total += layer.param_count((width,))
        for layer, width in zip(self.decoder, self._decoder_input_widths()):
            total += layer.param_count((width,))
        total += self.attention_query.param_count((h,))
        total += self.attention_key.param_count((h,))
        total += self.attention_score_params
        total += self.projection.param_count((h,))
        return total

    def macs(self, src_len: int = WMT16_MEAN_TOKENS,
             tgt_len: int = WMT16_MEAN_TOKENS) -> int:
        """Multiply-accumulates for one translation (greedy decode)."""
        h = self.hidden
        total = 0
        for layer, width in zip(self.encoder, self._encoder_input_widths()):
            total += layer.macs((width,)) * src_len
        for layer, width in zip(self.decoder, self._decoder_input_widths()):
            total += layer.macs((width,)) * tgt_len
        # Attention per decoded token: project the query, score every
        # source position, blend the context.
        per_token = (
            self.attention_query.macs((h,))
            + src_len * (h + h)     # score + weighted-sum accumulate
        )
        total += self.attention_key.macs((h,)) * src_len  # keys, once
        total += per_token * tgt_len
        total += self.projection.macs((h,)) * tgt_len
        return total

    def gops(self, src_len: int = WMT16_MEAN_TOKENS,
             tgt_len: int = WMT16_MEAN_TOKENS) -> float:
        return 2.0 * self.macs(src_len, tgt_len) / 1e9


def build_gnmt() -> GNMTArch:
    """The MLPerf machine-translation reference model."""
    return GNMTArch()
