"""Numpy kernels for the reference-model layers.

These are the mathematical primitives from which the Table I reference
models are built: convolutions (via im2col so the inner loop is a single
GEMM), depthwise convolutions, dense layers, batch normalization,
pooling, the usual activations, an LSTM cell, and embedding lookup.

Everything operates on channels-last float arrays: images are
``(N, H, W, C)``, sequences are ``(N, T, C)``.  The kernels favour
clarity and vectorization over micro-optimization - they are the
"reference implementation" a submitter would be allowed to rewrite.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def _pair(value) -> Tuple[int, int]:
    if isinstance(value, int):
        return value, value
    a, b = value
    return int(a), int(b)


def conv_output_size(size: int, kernel: int, stride: int, padding: str) -> int:
    """Spatial output size for one dimension under SAME/VALID padding."""
    if padding == "same":
        return -(-size // stride)  # ceil division
    if padding == "valid":
        if size < kernel:
            raise ValueError(f"input {size} smaller than kernel {kernel}")
        return (size - kernel) // stride + 1
    raise ValueError(f"unknown padding {padding!r}")


def _same_pad_amounts(size: int, kernel: int, stride: int) -> Tuple[int, int]:
    """TensorFlow-style SAME padding (possibly asymmetric)."""
    out = conv_output_size(size, kernel, stride, "same")
    total = max((out - 1) * stride + kernel - size, 0)
    before = total // 2
    return before, total - before


def pad_same(x: np.ndarray, kernel: Tuple[int, int], stride: Tuple[int, int],
             value: float = 0.0) -> np.ndarray:
    """Zero-pad ``(N, H, W, C)`` input for SAME convolution/pooling."""
    kh, kw = kernel
    sh, sw = stride
    ph = _same_pad_amounts(x.shape[1], kh, sh)
    pw = _same_pad_amounts(x.shape[2], kw, sw)
    if ph == (0, 0) and pw == (0, 0):
        return x
    return np.pad(x, ((0, 0), ph, pw, (0, 0)), constant_values=value)


def im2col(x: np.ndarray, kernel: Tuple[int, int], stride: Tuple[int, int]
           ) -> np.ndarray:
    """Extract convolution patches from a pre-padded input.

    Returns an array of shape ``(N, OH, OW, KH*KW*C)`` whose last axis is
    a flattened receptive field, so convolution reduces to one matmul.
    """
    n, h, w, c = x.shape
    kh, kw = kernel
    sh, sw = stride
    oh = (h - kh) // sh + 1
    ow = (w - kw) // sw + 1
    strides = x.strides
    shape = (n, oh, ow, kh, kw, c)
    view = np.lib.stride_tricks.as_strided(
        x,
        shape=shape,
        strides=(strides[0], strides[1] * sh, strides[2] * sw,
                 strides[1], strides[2], strides[3]),
        writeable=False,
    )
    return view.reshape(n, oh, ow, kh * kw * c)


def conv2d(x: np.ndarray, weights: np.ndarray, bias: np.ndarray = None,
           stride=1, padding: str = "same") -> np.ndarray:
    """2-D convolution.  ``weights`` has shape ``(KH, KW, Cin, Cout)``."""
    kh, kw, cin, cout = weights.shape
    if x.shape[-1] != cin:
        raise ValueError(f"input has {x.shape[-1]} channels, weights expect {cin}")
    stride = _pair(stride)
    if padding == "same":
        x = pad_same(x, (kh, kw), stride)
    cols = im2col(x, (kh, kw), stride)
    out = cols @ weights.reshape(kh * kw * cin, cout)
    if bias is not None:
        out = out + bias
    return out


def depthwise_conv2d(x: np.ndarray, weights: np.ndarray,
                     bias: np.ndarray = None, stride=1,
                     padding: str = "same") -> np.ndarray:
    """Depthwise 2-D convolution.  ``weights``: ``(KH, KW, C)``."""
    kh, kw, c = weights.shape
    if x.shape[-1] != c:
        raise ValueError(f"input has {x.shape[-1]} channels, weights expect {c}")
    stride = _pair(stride)
    if padding == "same":
        x = pad_same(x, (kh, kw), stride)
    cols = im2col(x, (kh, kw), stride)          # (N, OH, OW, KH*KW*C)
    n, oh, ow, _ = cols.shape
    cols = cols.reshape(n, oh, ow, kh * kw, c)
    out = np.einsum("nhwkc,kc->nhwc", cols, weights.reshape(kh * kw, c))
    if bias is not None:
        out = out + bias
    return out


def dense(x: np.ndarray, weights: np.ndarray, bias: np.ndarray = None
          ) -> np.ndarray:
    """Fully connected layer.  ``weights``: ``(Cin, Cout)``."""
    out = x @ weights
    if bias is not None:
        out = out + bias
    return out


def batchnorm(x: np.ndarray, gamma: np.ndarray, beta: np.ndarray,
              mean: np.ndarray, variance: np.ndarray,
              epsilon: float = 1e-5) -> np.ndarray:
    """Inference-mode batch normalization with frozen statistics."""
    inv = gamma / np.sqrt(variance + epsilon)
    return x * inv + (beta - mean * inv)


def relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def relu6(x: np.ndarray) -> np.ndarray:
    return np.clip(x, 0.0, 6.0)


def sigmoid(x: np.ndarray) -> np.ndarray:
    # Split by sign for numerical stability.
    out = np.empty_like(x, dtype=np.float64)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out.astype(x.dtype, copy=False)


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    shifted = x - np.max(x, axis=axis, keepdims=True)
    ex = np.exp(shifted)
    return ex / np.sum(ex, axis=axis, keepdims=True)


def maxpool2d(x: np.ndarray, kernel=2, stride=None,
              padding: str = "valid") -> np.ndarray:
    """Max pooling over ``(N, H, W, C)``."""
    kernel = _pair(kernel)
    stride = _pair(stride) if stride is not None else kernel
    if padding == "same":
        x = pad_same(x, kernel, stride, value=-np.inf)
    cols = im2col(x, kernel, stride)
    n, oh, ow, _ = cols.shape
    c = x.shape[-1]
    return cols.reshape(n, oh, ow, kernel[0] * kernel[1], c).max(axis=3)


def global_avgpool(x: np.ndarray) -> np.ndarray:
    """Global average pooling: ``(N, H, W, C)`` -> ``(N, C)``."""
    return x.mean(axis=(1, 2))


def embedding_lookup(table: np.ndarray, ids: np.ndarray) -> np.ndarray:
    """``table``: ``(V, D)``; ``ids``: integer array of any shape."""
    ids = np.asarray(ids)
    if ids.min(initial=0) < 0 or (ids.size and ids.max() >= table.shape[0]):
        raise ValueError("embedding id out of range")
    return table[ids]


def lstm_cell(x: np.ndarray, h: np.ndarray, c: np.ndarray,
              w: np.ndarray, u: np.ndarray, b: np.ndarray
              ) -> Tuple[np.ndarray, np.ndarray]:
    """One LSTM step.

    ``x``: (N, I) input; ``h``/``c``: (N, H) state; ``w``: (I, 4H) input
    weights; ``u``: (H, 4H) recurrent weights; ``b``: (4H,) bias.  Gate
    order is ``i, f, g, o``.  Returns the new ``(h, c)``.
    """
    hidden = h.shape[-1]
    gates = x @ w + h @ u + b
    i = sigmoid(gates[..., 0 * hidden:1 * hidden])
    f = sigmoid(gates[..., 1 * hidden:2 * hidden])
    g = np.tanh(gates[..., 2 * hidden:3 * hidden])
    o = sigmoid(gates[..., 3 * hidden:4 * hidden])
    c_new = f * c + i * g
    h_new = o * np.tanh(c_new)
    return h_new, c_new
