"""The Table I model registry: reference models, data sets, targets.

Each entry records the paper's published characteristics (parameter
count, GOPs per input, FP32 reference quality, and the quality-target
factor submissions must reach) together with builders for the full-size
architecture definition used by the accounting benchmarks.

The quality target is expressed as the MLPerf rule - a *fraction of the
FP32 reference model's measured quality* - so the same rule applies
unchanged to the tiny runnable instantiations, whose FP32 accuracy on
the synthetic data sets differs from ImageNet/COCO/WMT numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from ..core.config import Task
from .arch.gnmt import WMT16_MEAN_TOKENS, build_gnmt
from .arch.mobilenet import mobilenet_v1
from .arch.resnet import resnet50_v15
from .arch.ssd import build_ssd_mobilenet_v1, build_ssd_resnet34


@dataclass(frozen=True)
class ModelInfo:
    """One row of Table I."""

    task: Task
    display_name: str
    dataset: str
    input_shape: Tuple[int, ...]
    #: Paper-published characteristics.
    parameters: float            # e.g. 25.6e6
    gops_per_input: Optional[float]
    #: FP32 reference quality as published (Top-1 %, mAP, SacreBLEU).
    fp32_quality: float
    quality_metric: str
    #: Submissions must achieve at least this fraction of FP32 quality.
    quality_target_factor: float
    #: Builder for the full-size architecture (for accounting).
    build_arch: Callable[[], object]

    @property
    def quality_target(self) -> float:
        """The absolute quality floor implied by Table I."""
        return self.quality_target_factor * self.fp32_quality


REGISTRY: Dict[Task, ModelInfo] = {
    Task.IMAGE_CLASSIFICATION_HEAVY: ModelInfo(
        task=Task.IMAGE_CLASSIFICATION_HEAVY,
        display_name="ResNet-50 v1.5",
        dataset="ImageNet (224x224)",
        input_shape=(224, 224, 3),
        parameters=25.6e6,
        gops_per_input=8.2,
        fp32_quality=76.456,
        quality_metric="Top-1 accuracy (%)",
        quality_target_factor=0.99,
        build_arch=resnet50_v15,
    ),
    Task.IMAGE_CLASSIFICATION_LIGHT: ModelInfo(
        task=Task.IMAGE_CLASSIFICATION_LIGHT,
        display_name="MobileNet-v1 224",
        dataset="ImageNet (224x224)",
        input_shape=(224, 224, 3),
        parameters=4.2e6,
        gops_per_input=1.138,
        fp32_quality=71.676,
        quality_metric="Top-1 accuracy (%)",
        # Widened to 2% after quantization-friendly retraining was needed
        # to make mobile networks viable at all (Section III-B).
        quality_target_factor=0.98,
        build_arch=mobilenet_v1,
    ),
    Task.OBJECT_DETECTION_HEAVY: ModelInfo(
        task=Task.OBJECT_DETECTION_HEAVY,
        display_name="SSD-ResNet-34",
        dataset="COCO (1200x1200)",
        input_shape=(1200, 1200, 3),
        parameters=36.3e6,
        gops_per_input=433.0,
        fp32_quality=0.20,
        quality_metric="mAP",
        quality_target_factor=0.99,
        build_arch=build_ssd_resnet34,
    ),
    Task.OBJECT_DETECTION_LIGHT: ModelInfo(
        task=Task.OBJECT_DETECTION_LIGHT,
        display_name="SSD-MobileNet-v1",
        dataset="COCO (300x300)",
        input_shape=(300, 300, 3),
        parameters=6.91e6,
        gops_per_input=2.47,
        fp32_quality=0.22,
        quality_metric="mAP",
        quality_target_factor=0.99,
        build_arch=build_ssd_mobilenet_v1,
    ),
    Task.MACHINE_TRANSLATION: ModelInfo(
        task=Task.MACHINE_TRANSLATION,
        display_name="GNMT",
        dataset="WMT16 EN-DE",
        input_shape=(WMT16_MEAN_TOKENS,),
        parameters=210e6,
        gops_per_input=None,   # Table I quotes no GOPs for GNMT
        fp32_quality=23.9,
        quality_metric="SacreBLEU",
        quality_target_factor=0.99,
        build_arch=build_gnmt,
    ),
}


def model_info(task: Task) -> ModelInfo:
    """Look up the Table I entry for ``task``."""
    return REGISTRY[task]


def all_models() -> Tuple[ModelInfo, ...]:
    """All Table I entries, in the paper's row order."""
    return tuple(REGISTRY[task] for task in Task)
