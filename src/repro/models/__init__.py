"""Reference-model substrate: layers, architectures, runtimes, formats."""

from .family import MODEL_FAMILY, FamilyMember, family_points, pareto_frontier
from .nms import Detection, fast_nms, iou_matrix, multiclass_nms, nms
from .quantization import (
    NumericFormat,
    QuantizationSpec,
    calibrate_clip_percentile,
    quantize_model,
    quantize_tensor,
)
from .quantization import cross_layer_equalization
from .registry import ModelInfo, all_models, model_info
from .training import (
    SGD,
    TrainReport,
    softmax_cross_entropy,
    train_classifier,
    train_quantization_aware,
)

__all__ = [
    "Detection",
    "FamilyMember",
    "MODEL_FAMILY",
    "ModelInfo",
    "NumericFormat",
    "QuantizationSpec",
    "all_models",
    "SGD",
    "TrainReport",
    "calibrate_clip_percentile",
    "cross_layer_equalization",
    "fast_nms",
    "iou_matrix",
    "model_info",
    "multiclass_nms",
    "nms",
    "quantize_model",
    "family_points",
    "pareto_frontier",
    "quantize_tensor",
    "softmax_cross_entropy",
    "train_classifier",
    "train_quantization_aware",
]
