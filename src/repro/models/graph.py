"""Layer graph with shape inference, parameter and FLOP accounting.

Table I of the paper characterizes each reference model by its parameter
count and its GOPs per input (e.g. ResNet-50 v1.5: 25.6 M parameters and
8.2 GOPs on a 224x224 image).  This module provides layer objects that
compute those quantities *analytically* from the architecture definition
- no weights need to be materialized - while the same objects can also be
initialized and executed for the tiny runnable instantiations.

Conventions:

* shapes are channels-last and exclude the batch axis: an image is
  ``(H, W, C)``, a feature vector is ``(C,)``;
* ``macs`` counts multiply-accumulates of convolutions and dense layers;
  the industry-standard "GOPs" figure (and Table I) is ``2 * macs``;
* ``param_count`` counts learnable parameters (batch-norm running
  statistics excluded, matching the common 25.6 M ResNet-50 figure).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from . import layers as F

Shape = Tuple[int, ...]


class Layer:
    """Base class: shape inference + accounting + optional execution."""

    def __init__(self, name: str = "") -> None:
        self.name = name or type(self).__name__.lower()
        self.params: Dict[str, np.ndarray] = {}

    # -- accounting (always available) ----------------------------------------

    def output_shape(self, input_shape: Shape) -> Shape:
        raise NotImplementedError

    def param_count(self, input_shape: Shape) -> int:
        return 0

    def macs(self, input_shape: Shape) -> int:
        """Multiply-accumulates of the heavy linear algebra."""
        return 0

    # -- execution (runnable instantiations only) ------------------------------

    def initialize(self, input_shape: Shape, rng: np.random.Generator) -> Shape:
        """Create randomly initialized parameters; returns output shape."""
        return self.output_shape(input_shape)

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError(f"{self.name} is not executable")

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    # -- parameter traversal ----------------------------------------------------

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        for key, value in self.params.items():
            yield f"{prefix}{self.name}.{key}", value

    def set_parameter(self, key: str, value: np.ndarray) -> None:
        if key not in self.params:
            raise KeyError(f"{self.name} has no parameter {key!r}")
        if self.params[key].shape != value.shape:
            raise ValueError(
                f"{self.name}.{key}: shape {value.shape} != {self.params[key].shape}"
            )
        self.params[key] = np.asarray(value, dtype=np.float32)


class Conv2D(Layer):
    """Standard convolution, channels-last, weights ``(KH, KW, Cin, Cout)``."""

    def __init__(self, kernel, filters: int, stride=1, padding: str = "same",
                 use_bias: bool = True, name: str = "") -> None:
        super().__init__(name or "conv2d")
        self.kernel = F._pair(kernel)
        self.filters = int(filters)
        self.stride = F._pair(stride)
        self.padding = padding
        self.use_bias = use_bias

    def output_shape(self, input_shape: Shape) -> Shape:
        h, w, _ = input_shape
        oh = F.conv_output_size(h, self.kernel[0], self.stride[0], self.padding)
        ow = F.conv_output_size(w, self.kernel[1], self.stride[1], self.padding)
        return (oh, ow, self.filters)

    def param_count(self, input_shape: Shape) -> int:
        cin = input_shape[-1]
        count = self.kernel[0] * self.kernel[1] * cin * self.filters
        if self.use_bias:
            count += self.filters
        return count

    def macs(self, input_shape: Shape) -> int:
        oh, ow, _ = self.output_shape(input_shape)
        cin = input_shape[-1]
        return self.kernel[0] * self.kernel[1] * cin * self.filters * oh * ow

    def initialize(self, input_shape: Shape, rng: np.random.Generator) -> Shape:
        cin = input_shape[-1]
        fan_in = self.kernel[0] * self.kernel[1] * cin
        scale = np.sqrt(2.0 / fan_in)
        self.params["weights"] = rng.normal(
            0.0, scale, size=(*self.kernel, cin, self.filters)
        ).astype(np.float32)
        if self.use_bias:
            self.params["bias"] = np.zeros(self.filters, dtype=np.float32)
        return self.output_shape(input_shape)

    def forward(self, x: np.ndarray) -> np.ndarray:
        return F.conv2d(
            x, self.params["weights"], self.params.get("bias"),
            stride=self.stride, padding=self.padding,
        )


class DepthwiseConv2D(Layer):
    """Depthwise convolution, weights ``(KH, KW, C)``."""

    def __init__(self, kernel, stride=1, padding: str = "same",
                 use_bias: bool = True, name: str = "") -> None:
        super().__init__(name or "dwconv2d")
        self.kernel = F._pair(kernel)
        self.stride = F._pair(stride)
        self.padding = padding
        self.use_bias = use_bias

    def output_shape(self, input_shape: Shape) -> Shape:
        h, w, c = input_shape
        oh = F.conv_output_size(h, self.kernel[0], self.stride[0], self.padding)
        ow = F.conv_output_size(w, self.kernel[1], self.stride[1], self.padding)
        return (oh, ow, c)

    def param_count(self, input_shape: Shape) -> int:
        c = input_shape[-1]
        count = self.kernel[0] * self.kernel[1] * c
        if self.use_bias:
            count += c
        return count

    def macs(self, input_shape: Shape) -> int:
        oh, ow, c = self.output_shape(input_shape)
        return self.kernel[0] * self.kernel[1] * c * oh * ow

    def initialize(self, input_shape: Shape, rng: np.random.Generator) -> Shape:
        c = input_shape[-1]
        fan_in = self.kernel[0] * self.kernel[1]
        scale = np.sqrt(2.0 / fan_in)
        self.params["weights"] = rng.normal(
            0.0, scale, size=(*self.kernel, c)
        ).astype(np.float32)
        if self.use_bias:
            self.params["bias"] = np.zeros(c, dtype=np.float32)
        return self.output_shape(input_shape)

    def forward(self, x: np.ndarray) -> np.ndarray:
        return F.depthwise_conv2d(
            x, self.params["weights"], self.params.get("bias"),
            stride=self.stride, padding=self.padding,
        )


class BatchNorm(Layer):
    """Inference batch norm; 2 learnable parameters per channel."""

    def __init__(self, epsilon: float = 1e-5, name: str = "") -> None:
        super().__init__(name or "batchnorm")
        self.epsilon = epsilon

    def output_shape(self, input_shape: Shape) -> Shape:
        return input_shape

    def param_count(self, input_shape: Shape) -> int:
        return 2 * input_shape[-1]

    def initialize(self, input_shape: Shape, rng: np.random.Generator) -> Shape:
        c = input_shape[-1]
        self.params["gamma"] = np.ones(c, dtype=np.float32)
        self.params["beta"] = np.zeros(c, dtype=np.float32)
        self.params["mean"] = np.zeros(c, dtype=np.float32)
        self.params["variance"] = np.ones(c, dtype=np.float32)
        return input_shape

    def forward(self, x: np.ndarray) -> np.ndarray:
        return F.batchnorm(
            x, self.params["gamma"], self.params["beta"],
            self.params["mean"], self.params["variance"], self.epsilon,
        )


class Activation(Layer):
    _FUNCS = {"relu": F.relu, "relu6": F.relu6, "sigmoid": F.sigmoid,
              "tanh": np.tanh}

    def __init__(self, kind: str = "relu", name: str = "") -> None:
        super().__init__(name or kind)
        if kind not in self._FUNCS:
            raise ValueError(f"unknown activation {kind!r}")
        self.kind = kind

    def output_shape(self, input_shape: Shape) -> Shape:
        return input_shape

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self._FUNCS[self.kind](x)


class MaxPool2D(Layer):
    def __init__(self, kernel=2, stride=None, padding: str = "valid",
                 name: str = "") -> None:
        super().__init__(name or "maxpool")
        self.kernel = F._pair(kernel)
        self.stride = F._pair(stride) if stride is not None else self.kernel
        self.padding = padding

    def output_shape(self, input_shape: Shape) -> Shape:
        h, w, c = input_shape
        oh = F.conv_output_size(h, self.kernel[0], self.stride[0], self.padding)
        ow = F.conv_output_size(w, self.kernel[1], self.stride[1], self.padding)
        return (oh, ow, c)

    def forward(self, x: np.ndarray) -> np.ndarray:
        return F.maxpool2d(x, self.kernel, self.stride, self.padding)


class AvgPool2D(Layer):
    """Average pooling over ``(N, H, W, C)``."""

    def __init__(self, kernel=2, stride=None, padding: str = "valid",
                 name: str = "") -> None:
        super().__init__(name or "avgpool")
        self.kernel = F._pair(kernel)
        self.stride = F._pair(stride) if stride is not None else self.kernel
        self.padding = padding

    def output_shape(self, input_shape: Shape) -> Shape:
        h, w, c = input_shape
        oh = F.conv_output_size(h, self.kernel[0], self.stride[0], self.padding)
        ow = F.conv_output_size(w, self.kernel[1], self.stride[1], self.padding)
        return (oh, ow, c)

    def forward(self, x: np.ndarray) -> np.ndarray:
        if self.padding == "same":
            x = F.pad_same(x, self.kernel, self.stride)
        cols = F.im2col(x, self.kernel, self.stride)
        n, oh, ow, _ = cols.shape
        c = x.shape[-1]
        return cols.reshape(
            n, oh, ow, self.kernel[0] * self.kernel[1], c
        ).mean(axis=3)


class GlobalAvgPool(Layer):
    def output_shape(self, input_shape: Shape) -> Shape:
        return (input_shape[-1],)

    def forward(self, x: np.ndarray) -> np.ndarray:
        return F.global_avgpool(x)


class GlobalMaxPool(Layer):
    def output_shape(self, input_shape: Shape) -> Shape:
        return (input_shape[-1],)

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x.max(axis=(1, 2))


class Flatten(Layer):
    def output_shape(self, input_shape: Shape) -> Shape:
        size = 1
        for dim in input_shape:
            size *= dim
        return (size,)

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x.reshape(x.shape[0], -1)


class Dense(Layer):
    def __init__(self, units: int, use_bias: bool = True, name: str = "") -> None:
        super().__init__(name or "dense")
        self.units = int(units)
        self.use_bias = use_bias

    def output_shape(self, input_shape: Shape) -> Shape:
        return (*input_shape[:-1], self.units)

    def param_count(self, input_shape: Shape) -> int:
        count = input_shape[-1] * self.units
        if self.use_bias:
            count += self.units
        return count

    def macs(self, input_shape: Shape) -> int:
        # Dense over any leading shape: one MAC matrix per position.
        positions = 1
        for dim in input_shape[:-1]:
            positions *= dim
        return positions * input_shape[-1] * self.units

    def initialize(self, input_shape: Shape, rng: np.random.Generator) -> Shape:
        cin = input_shape[-1]
        scale = np.sqrt(2.0 / cin)
        self.params["weights"] = rng.normal(
            0.0, scale, size=(cin, self.units)
        ).astype(np.float32)
        if self.use_bias:
            self.params["bias"] = np.zeros(self.units, dtype=np.float32)
        return self.output_shape(input_shape)

    def forward(self, x: np.ndarray) -> np.ndarray:
        return F.dense(x, self.params["weights"], self.params.get("bias"))


class Softmax(Layer):
    def output_shape(self, input_shape: Shape) -> Shape:
        return input_shape

    def forward(self, x: np.ndarray) -> np.ndarray:
        return F.softmax(x)


class Embedding(Layer):
    """Token embedding table ``(V, D)``; input is integer ids."""

    def __init__(self, vocab_size: int, dim: int, name: str = "") -> None:
        super().__init__(name or "embedding")
        self.vocab_size = int(vocab_size)
        self.dim = int(dim)

    def output_shape(self, input_shape: Shape) -> Shape:
        return (*input_shape, self.dim)

    def param_count(self, input_shape: Shape) -> int:
        return self.vocab_size * self.dim

    def initialize(self, input_shape: Shape, rng: np.random.Generator) -> Shape:
        self.params["table"] = rng.normal(
            0.0, 0.05, size=(self.vocab_size, self.dim)
        ).astype(np.float32)
        return self.output_shape(input_shape)

    def forward(self, ids: np.ndarray) -> np.ndarray:
        return F.embedding_lookup(self.params["table"], ids)


class LSTMLayer(Layer):
    """A (possibly bidirectional) LSTM over ``(N, T, I)`` sequences.

    Accounting follows the standard 4-gate cell: per direction the layer
    has ``4 * H * (I + H) + 4 * H`` parameters and ``4 * H * (I + H)``
    MACs per timestep.  ``macs`` reports per-timestep MACs; sequence
    models multiply by their sequence length (see ``arch.gnmt``).
    """

    def __init__(self, hidden: int, bidirectional: bool = False,
                 name: str = "") -> None:
        super().__init__(name or "lstm")
        self.hidden = int(hidden)
        self.bidirectional = bidirectional

    @property
    def directions(self) -> int:
        return 2 if self.bidirectional else 1

    def output_shape(self, input_shape: Shape) -> Shape:
        *lead, _ = input_shape
        return (*lead, self.hidden * self.directions)

    def param_count(self, input_shape: Shape) -> int:
        i = input_shape[-1]
        per_dir = 4 * self.hidden * (i + self.hidden) + 4 * self.hidden
        return per_dir * self.directions

    def macs(self, input_shape: Shape) -> int:
        i = input_shape[-1]
        return 4 * self.hidden * (i + self.hidden) * self.directions

    def initialize(self, input_shape: Shape, rng: np.random.Generator) -> Shape:
        i = input_shape[-1]
        scale = 1.0 / np.sqrt(self.hidden)
        for d in range(self.directions):
            suffix = "" if d == 0 else "_rev"
            self.params[f"w{suffix}"] = rng.uniform(
                -scale, scale, size=(i, 4 * self.hidden)).astype(np.float32)
            self.params[f"u{suffix}"] = rng.uniform(
                -scale, scale, size=(self.hidden, 4 * self.hidden)).astype(np.float32)
            self.params[f"b{suffix}"] = np.zeros(4 * self.hidden, dtype=np.float32)
        return self.output_shape(input_shape)

    def _run_direction(self, x: np.ndarray, suffix: str) -> np.ndarray:
        n, t, _ = x.shape
        h = np.zeros((n, self.hidden), dtype=np.float32)
        c = np.zeros((n, self.hidden), dtype=np.float32)
        outputs = np.empty((n, t, self.hidden), dtype=np.float32)
        w = self.params[f"w{suffix}"]
        u = self.params[f"u{suffix}"]
        b = self.params[f"b{suffix}"]
        for step in range(t):
            h, c = F.lstm_cell(x[:, step], h, c, w, u, b)
            outputs[:, step] = h
        return outputs

    def forward(self, x: np.ndarray) -> np.ndarray:
        fwd = self._run_direction(x, "")
        if not self.bidirectional:
            return fwd
        bwd = self._run_direction(x[:, ::-1], "_rev")[:, ::-1]
        return np.concatenate([fwd, bwd], axis=-1)


class Sequential(Layer):
    """Ordered composition of layers."""

    def __init__(self, children: Sequence[Layer], name: str = "") -> None:
        super().__init__(name or "sequential")
        self.children: List[Layer] = list(children)

    def output_shape(self, input_shape: Shape) -> Shape:
        shape = input_shape
        for child in self.children:
            shape = child.output_shape(shape)
        return shape

    def param_count(self, input_shape: Shape) -> int:
        total = 0
        shape = input_shape
        for child in self.children:
            total += child.param_count(shape)
            shape = child.output_shape(shape)
        return total

    def macs(self, input_shape: Shape) -> int:
        total = 0
        shape = input_shape
        for child in self.children:
            total += child.macs(shape)
            shape = child.output_shape(shape)
        return total

    def initialize(self, input_shape: Shape, rng: np.random.Generator) -> Shape:
        shape = input_shape
        for child in self.children:
            shape = child.initialize(shape, rng)
        return shape

    def forward(self, x: np.ndarray) -> np.ndarray:
        for child in self.children:
            x = child.forward(x)
        return x

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        base = f"{prefix}{self.name}."
        for index, child in enumerate(self.children):
            yield from child.named_parameters(f"{base}{index}:")

    def layer_report(self, input_shape: Shape) -> List[Tuple[str, Shape, int, int]]:
        """Per-layer ``(name, output_shape, params, macs)`` table."""
        report = []
        shape = input_shape
        for child in self.children:
            params = child.param_count(shape)
            macs = child.macs(shape)
            shape = child.output_shape(shape)
            report.append((child.name, shape, params, macs))
        return report


class Residual(Layer):
    """``act(body(x) + shortcut(x))`` - the ResNet building block.

    ``shortcut`` defaults to identity; pass a projection Sequential when
    shapes change (stride or channel expansion).  ``activation=""``
    makes the join linear - MobileNet-v2's linear bottleneck.
    """

    def __init__(self, body: Sequential, shortcut: Optional[Sequential] = None,
                 activation: str = "relu", name: str = "") -> None:
        super().__init__(name or "residual")
        self.body = body
        self.shortcut = shortcut
        self.activation = Activation(activation) if activation else None

    def output_shape(self, input_shape: Shape) -> Shape:
        out = self.body.output_shape(input_shape)
        short = (
            self.shortcut.output_shape(input_shape)
            if self.shortcut is not None else input_shape
        )
        if out != short:
            raise ValueError(
                f"{self.name}: body shape {out} != shortcut shape {short}"
            )
        return out

    def param_count(self, input_shape: Shape) -> int:
        total = self.body.param_count(input_shape)
        if self.shortcut is not None:
            total += self.shortcut.param_count(input_shape)
        return total

    def macs(self, input_shape: Shape) -> int:
        total = self.body.macs(input_shape)
        if self.shortcut is not None:
            total += self.shortcut.macs(input_shape)
        return total

    def initialize(self, input_shape: Shape, rng: np.random.Generator) -> Shape:
        self.body.initialize(input_shape, rng)
        if self.shortcut is not None:
            self.shortcut.initialize(input_shape, rng)
        return self.output_shape(input_shape)

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = self.body.forward(x)
        short = self.shortcut.forward(x) if self.shortcut is not None else x
        joined = out + short
        if self.activation is None:
            return joined
        return self.activation.forward(joined)

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        base = f"{prefix}{self.name}."
        yield from self.body.named_parameters(f"{base}body:")
        if self.shortcut is not None:
            yield from self.shortcut.named_parameters(f"{base}short:")
