"""Gradient training for the layer graphs (backprop in numpy).

MLPerf's closed division prohibits retraining, but retraining is central
to the story twice over: the organizers themselves "trained the
MobileNet models for quantization-friendly weights, enabling us to
narrow the quality window to 2%" (Section III-B), and the open division
explicitly allows it.  This module provides what that requires:

* reverse-mode differentiation for the Sequential graphs built from
  ``repro.models.graph`` layers (conv, depthwise conv, dense, batch
  norm, activations, pooling);
* softmax cross-entropy loss;
* a minibatch SGD (with momentum) training loop;
* **quantization-aware training** via the straight-through estimator:
  the forward pass sees fake-quantized weights, gradients update the
  FP32 master copy - the standard recipe for quantization-friendly
  weights.

The implementation is deliberately direct: each supported layer type
has a ``(forward-with-cache, backward)`` pair; unsupported layers raise
immediately rather than silently mistraining.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

import numpy as np

from . import layers as F
from .graph import (
    Activation,
    AvgPool2D,
    BatchNorm,
    Conv2D,
    Dense,
    DepthwiseConv2D,
    GlobalAvgPool,
    GlobalMaxPool,
    Layer,
    Sequential,
)
from .quantization import QuantizationSpec, quantize_tensor

Grads = Dict[str, np.ndarray]


# ---------------------------------------------------------------------------
# loss
# ---------------------------------------------------------------------------

def softmax_cross_entropy(logits: np.ndarray, labels: np.ndarray
                          ) -> Tuple[float, np.ndarray]:
    """Mean cross-entropy and its gradient w.r.t. the logits."""
    if logits.ndim != 2:
        raise ValueError(f"logits must be (N, C), got {logits.shape}")
    n = logits.shape[0]
    probabilities = F.softmax(logits, axis=-1)
    eps = 1e-12
    loss = -float(np.mean(
        np.log(probabilities[np.arange(n), labels] + eps)))
    grad = probabilities.copy()
    grad[np.arange(n), labels] -= 1.0
    return loss, grad / n


# ---------------------------------------------------------------------------
# col2im (the scatter adjoint of im2col)
# ---------------------------------------------------------------------------

def col2im(cols: np.ndarray, padded_shape: Tuple[int, int, int, int],
           kernel: Tuple[int, int], stride: Tuple[int, int]) -> np.ndarray:
    """Scatter ``(N, OH, OW, KH*KW*C)`` patches back onto the input."""
    n, h, w, c = padded_shape
    kh, kw = kernel
    sh, sw = stride
    oh = (h - kh) // sh + 1
    ow = (w - kw) // sw + 1
    cols = cols.reshape(n, oh, ow, kh, kw, c)
    out = np.zeros(padded_shape, dtype=cols.dtype)
    for i in range(kh):
        for j in range(kw):
            out[:, i:i + oh * sh:sh, j:j + ow * sw:sw, :] += cols[:, :, :, i, j, :]
    return out


def _unpad(grad_padded: np.ndarray, original_hw: Tuple[int, int],
           kernel: Tuple[int, int], stride: Tuple[int, int],
           padding: str) -> np.ndarray:
    if padding != "same":
        return grad_padded
    h, w = original_hw
    ph = F._same_pad_amounts(h, kernel[0], stride[0])
    pw = F._same_pad_amounts(w, kernel[1], stride[1])
    return grad_padded[:, ph[0]:ph[0] + h, pw[0]:pw[0] + w, :]


# ---------------------------------------------------------------------------
# per-layer forward (with cache) and backward
# ---------------------------------------------------------------------------

def _conv_forward(layer: Conv2D, x: np.ndarray):
    weights = layer.params["weights"]
    kh, kw, cin, cout = weights.shape
    padded = F.pad_same(x, layer.kernel, layer.stride) \
        if layer.padding == "same" else x
    cols = F.im2col(padded, layer.kernel, layer.stride)
    out = cols @ weights.reshape(kh * kw * cin, cout)
    if layer.use_bias:
        out = out + layer.params["bias"]
    cache = (cols, padded.shape, x.shape)
    return out, cache


def _conv_backward(layer: Conv2D, grad_out: np.ndarray, cache):
    cols, padded_shape, x_shape = cache
    weights = layer.params["weights"]
    kh, kw, cin, cout = weights.shape
    flat_cols = cols.reshape(-1, kh * kw * cin)
    flat_grad = grad_out.reshape(-1, cout)
    grads: Grads = {
        "weights": (flat_cols.T @ flat_grad).reshape(weights.shape),
    }
    if layer.use_bias:
        grads["bias"] = flat_grad.sum(axis=0)
    grad_cols = flat_grad @ weights.reshape(kh * kw * cin, cout).T
    grad_padded = col2im(
        grad_cols.reshape(cols.shape), padded_shape,
        layer.kernel, layer.stride)
    grad_x = _unpad(grad_padded, x_shape[1:3], layer.kernel, layer.stride,
                    layer.padding)
    return grad_x, grads


def _dwconv_forward(layer: DepthwiseConv2D, x: np.ndarray):
    weights = layer.params["weights"]
    kh, kw, c = weights.shape
    padded = F.pad_same(x, layer.kernel, layer.stride) \
        if layer.padding == "same" else x
    cols = F.im2col(padded, layer.kernel, layer.stride)
    n, oh, ow, _ = cols.shape
    cols5 = cols.reshape(n, oh, ow, kh * kw, c)
    out = np.einsum("nhwkc,kc->nhwc", cols5, weights.reshape(kh * kw, c))
    if layer.use_bias:
        out = out + layer.params["bias"]
    return out, (cols5, padded.shape, x.shape)


def _dwconv_backward(layer: DepthwiseConv2D, grad_out: np.ndarray, cache):
    cols5, padded_shape, x_shape = cache
    weights = layer.params["weights"]
    kh, kw, c = weights.shape
    grads: Grads = {
        "weights": np.einsum("nhwkc,nhwc->kc", cols5, grad_out
                             ).reshape(kh, kw, c),
    }
    if layer.use_bias:
        grads["bias"] = grad_out.sum(axis=(0, 1, 2))
    grad_cols = np.einsum("nhwc,kc->nhwkc", grad_out,
                          weights.reshape(kh * kw, c))
    n, oh, ow, _, _ = grad_cols.shape
    grad_padded = col2im(
        grad_cols.reshape(n, oh, ow, kh * kw * c), padded_shape,
        layer.kernel, layer.stride)
    grad_x = _unpad(grad_padded, x_shape[1:3], layer.kernel, layer.stride,
                    layer.padding)
    return grad_x, grads


def _dense_forward(layer: Dense, x: np.ndarray):
    out = x @ layer.params["weights"]
    if layer.use_bias:
        out = out + layer.params["bias"]
    return out, x


def _dense_backward(layer: Dense, grad_out: np.ndarray, cache):
    x = cache
    flat_x = x.reshape(-1, x.shape[-1])
    flat_grad = grad_out.reshape(-1, grad_out.shape[-1])
    grads: Grads = {"weights": flat_x.T @ flat_grad}
    if layer.use_bias:
        grads["bias"] = flat_grad.sum(axis=0)
    grad_x = (flat_grad @ layer.params["weights"].T).reshape(x.shape)
    return grad_x, grads


def _activation_forward(layer: Activation, x: np.ndarray):
    if layer.kind == "relu":
        return F.relu(x), x
    if layer.kind == "relu6":
        return F.relu6(x), x
    if layer.kind == "tanh":
        out = np.tanh(x)
        return out, out
    raise NotImplementedError(
        f"no gradient implemented for activation {layer.kind!r}")


def _activation_backward(layer: Activation, grad_out: np.ndarray, cache):
    if layer.kind == "relu":
        return grad_out * (cache > 0), {}
    if layer.kind == "relu6":
        return grad_out * ((cache > 0) & (cache < 6)), {}
    if layer.kind == "tanh":
        return grad_out * (1.0 - cache ** 2), {}
    raise NotImplementedError(layer.kind)


def _batchnorm_forward(layer: BatchNorm, x: np.ndarray):
    # Inference-style: frozen statistics, learnable affine only.
    inv = layer.params["gamma"] / np.sqrt(
        layer.params["variance"] + layer.epsilon)
    normalized = (x - layer.params["mean"]) / np.sqrt(
        layer.params["variance"] + layer.epsilon)
    out = x * inv + (layer.params["beta"] - layer.params["mean"] * inv)
    return out, (normalized, inv)


def _batchnorm_backward(layer: BatchNorm, grad_out: np.ndarray, cache):
    normalized, inv = cache
    axes = tuple(range(grad_out.ndim - 1))
    grads: Grads = {
        "gamma": (grad_out * normalized).sum(axis=axes),
        "beta": grad_out.sum(axis=axes),
    }
    return grad_out * inv, grads


def _gmp_forward(layer: GlobalMaxPool, x: np.ndarray):
    n, h, w, c = x.shape
    flat = x.reshape(n, h * w, c)
    arg = flat.argmax(axis=1)
    out = flat[np.arange(n)[:, None], arg, np.arange(c)[None, :]]
    return out, (arg, x.shape)


def _gmp_backward(layer: GlobalMaxPool, grad_out: np.ndarray, cache):
    arg, shape = cache
    n, h, w, c = shape
    grad = np.zeros((n, h * w, c), dtype=grad_out.dtype)
    grad[np.arange(n)[:, None], arg, np.arange(c)[None, :]] = grad_out
    return grad.reshape(shape), {}


def _gap_forward(layer: GlobalAvgPool, x: np.ndarray):
    return x.mean(axis=(1, 2)), x.shape


def _gap_backward(layer: GlobalAvgPool, grad_out: np.ndarray, cache):
    n, h, w, c = cache
    grad = np.broadcast_to(
        grad_out[:, None, None, :] / (h * w), (n, h, w, c))
    return grad.astype(grad_out.dtype), {}


def _avgpool_forward(layer: AvgPool2D, x: np.ndarray):
    out = layer.forward(x)
    return out, x.shape


def _avgpool_backward(layer: AvgPool2D, grad_out: np.ndarray, cache):
    if layer.padding != "valid" or layer.kernel != layer.stride:
        raise NotImplementedError(
            "AvgPool2D gradient supports valid, non-overlapping pooling")
    kh, kw = layer.kernel
    grad = np.repeat(np.repeat(grad_out, kh, axis=1), kw, axis=2) / (kh * kw)
    n, h, w, c = cache
    return grad[:, :h, :w, :], {}


_FORWARD = {
    Conv2D: _conv_forward,
    DepthwiseConv2D: _dwconv_forward,
    Dense: _dense_forward,
    Activation: _activation_forward,
    BatchNorm: _batchnorm_forward,
    GlobalMaxPool: _gmp_forward,
    GlobalAvgPool: _gap_forward,
    AvgPool2D: _avgpool_forward,
}
_BACKWARD = {
    Conv2D: _conv_backward,
    DepthwiseConv2D: _dwconv_backward,
    Dense: _dense_backward,
    Activation: _activation_backward,
    BatchNorm: _batchnorm_backward,
    GlobalMaxPool: _gmp_backward,
    GlobalAvgPool: _gap_backward,
    AvgPool2D: _avgpool_backward,
}


def _dispatch(layer: Layer):
    for cls in type(layer).__mro__:
        if cls in _FORWARD:
            return _FORWARD[cls], _BACKWARD[cls]
    raise NotImplementedError(
        f"no gradient support for layer type {type(layer).__name__}")


# ---------------------------------------------------------------------------
# graph-level forward/backward
# ---------------------------------------------------------------------------

def forward_with_cache(graph: Sequential, x: np.ndarray):
    """Forward pass keeping every layer's cache for the backward pass."""
    caches = []
    for layer in graph.children:
        fwd, _ = _dispatch(layer)
        x, cache = fwd(layer, x)
        caches.append(cache)
    return x, caches


def backward(graph: Sequential, grad_out: np.ndarray, caches
             ) -> List[Grads]:
    """Backward pass; returns one param-gradient dict per layer."""
    grads: List[Grads] = [None] * len(graph.children)
    for index in range(len(graph.children) - 1, -1, -1):
        layer = graph.children[index]
        _, bwd = _dispatch(layer)
        grad_out, layer_grads = bwd(layer, grad_out, caches[index])
        grads[index] = layer_grads
    return grads


# ---------------------------------------------------------------------------
# optimizer and training loops
# ---------------------------------------------------------------------------

@dataclass
class SGD:
    """Minibatch SGD with classical momentum and global-norm clipping."""

    learning_rate: float = 0.05
    momentum: float = 0.9
    #: Clip the global gradient norm (0 disables).  Essential when the
    #: network's channel scales are deliberately imbalanced (the light
    #: classifier's quantization-fragility construction).
    clip_norm: float = 5.0
    _velocity: Dict[Tuple[int, str], np.ndarray] = field(
        default_factory=dict, repr=False)

    def step(self, graph: Sequential, grads: List[Grads]) -> None:
        if self.clip_norm > 0:
            total = np.sqrt(sum(
                float((g ** 2).sum())
                for layer_grads in grads for g in layer_grads.values()
            ))
            if total > self.clip_norm:
                scale = self.clip_norm / total
                grads = [
                    {k: g * scale for k, g in layer_grads.items()}
                    for layer_grads in grads
                ]
        for index, (layer, layer_grads) in enumerate(
                zip(graph.children, grads)):
            for key, grad in layer_grads.items():
                slot = (index, key)
                velocity = self._velocity.get(slot)
                if velocity is None:
                    velocity = np.zeros_like(grad)
                velocity = self.momentum * velocity - self.learning_rate * grad
                self._velocity[slot] = velocity
                layer.params[key] = (
                    layer.params[key] + velocity
                ).astype(np.float32)


@dataclass
class TrainReport:
    """Loss trajectory of one training run."""

    losses: List[float] = field(default_factory=list)

    @property
    def initial_loss(self) -> float:
        return self.losses[0]

    @property
    def final_loss(self) -> float:
        return self.losses[-1]


def train_classifier(
    graph: Sequential,
    images: np.ndarray,
    labels: np.ndarray,
    epochs: int = 5,
    batch_size: int = 32,
    optimizer: Optional[SGD] = None,
    seed: int = 0,
) -> TrainReport:
    """Plain FP32 training with softmax cross-entropy."""
    return _train(graph, images, labels, epochs, batch_size,
                  optimizer or SGD(), seed, quant_spec=None)


def train_quantization_aware(
    graph: Sequential,
    images: np.ndarray,
    labels: np.ndarray,
    quant_spec: QuantizationSpec,
    epochs: int = 5,
    batch_size: int = 32,
    optimizer: Optional[SGD] = None,
    seed: int = 0,
) -> TrainReport:
    """QAT with the straight-through estimator.

    Each step: fake-quantize the master weights, run forward/backward
    through the quantized copy, and apply the gradients to the FP32
    masters (STE: the quantizer's gradient is treated as identity).
    The result is a network whose *quantized* forward pass is accurate -
    "quantization-friendly weights".
    """
    return _train(graph, images, labels, epochs, batch_size,
                  optimizer or SGD(), seed, quant_spec=quant_spec)


_QUANT_SKIP = ("gamma", "beta", "mean", "variance")


def _train(graph, images, labels, epochs, batch_size, optimizer, seed,
           quant_spec) -> TrainReport:
    if len(images) != len(labels):
        raise ValueError(f"{len(images)} images but {len(labels)} labels")
    if len(images) == 0:
        raise ValueError("training set is empty")
    rng = np.random.default_rng(seed)
    report = TrainReport()
    count = len(images)
    for _epoch in range(epochs):
        order = rng.permutation(count)
        epoch_loss = 0.0
        batches = 0
        for start in range(0, count, batch_size):
            batch = order[start:start + batch_size]
            x = images[batch]
            y = labels[batch]

            masters = None
            if quant_spec is not None:
                # Swap in fake-quantized weights for the forward pass.
                masters = {}
                for index, layer in enumerate(graph.children):
                    for key, value in layer.params.items():
                        if key.endswith(_QUANT_SKIP):
                            continue
                        masters[(index, key)] = value
                        layer.params[key] = quantize_tensor(value, quant_spec)

            logits, caches = forward_with_cache(graph, x)
            loss, grad = softmax_cross_entropy(logits, y)
            grads = backward(graph, grad, caches)

            if masters is not None:
                # Restore the FP32 masters before the update (STE).
                for (index, key), value in masters.items():
                    graph.children[index].params[key] = value

            optimizer.step(graph, grads)
            epoch_loss += loss
            batches += 1
        report.losses.append(epoch_loss / batches)
    return report


def numerical_gradient(fn: Callable[[np.ndarray], float],
                       array: np.ndarray, epsilon: float = 1e-4,
                       samples: int = 12, seed: int = 0) -> np.ndarray:
    """Central-difference gradient at a few random positions (testing)."""
    rng = np.random.default_rng(seed)
    grad = np.full(array.shape, np.nan)
    flat_indices = rng.choice(array.size, size=min(samples, array.size),
                              replace=False)
    flat = array.reshape(-1)
    for index in flat_indices:
        original = flat[index]
        flat[index] = original + epsilon
        plus = fn(array)
        flat[index] = original - epsilon
        minus = fn(array)
        flat[index] = original
        grad.reshape(-1)[index] = (plus - minus) / (2 * epsilon)
    return grad
