"""The submission checker (paper Sections V-B and VII-E).

Validates a submission against the rules the paper enumerates: quality
targets (Table I), latency bounds (Table III), query requirements
(Table V), run-validity flags, numeric-format registration, and the
closed-division prohibitions (retraining, caching).  During the v0.5
review this class of automation surfaced ~40 issues across ~180 closed
results, so "only about three engineers had to comb through the
submissions".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List

from ..core.config import Scenario, TestMode
from ..submission.schema import (
    APPROVED_NUMERICS,
    BenchmarkResult,
    Division,
    Submission,
)


class Severity(enum.Enum):
    ERROR = "error"      # submission (entry) is rejected
    WARNING = "warning"  # surfaced for human review


@dataclass(frozen=True)
class Issue:
    """One finding from the checker."""

    severity: Severity
    code: str
    message: str

    def __str__(self) -> str:
        return f"[{self.severity.value}] {self.code}: {self.message}"


@dataclass
class CheckReport:
    """All findings for one submission."""

    issues: List[Issue] = field(default_factory=list)

    def add(self, severity: Severity, code: str, message: str) -> None:
        self.issues.append(Issue(severity, code, message))

    @property
    def errors(self) -> List[Issue]:
        return [i for i in self.issues if i.severity is Severity.ERROR]

    @property
    def passed(self) -> bool:
        return not self.errors


def check_result(entry: BenchmarkResult, division: Division,
                 report: CheckReport) -> None:
    """Rule checks for one (task, scenario) result."""
    tag = f"{entry.task.value}/{entry.scenario.short_name}"
    perf = entry.performance

    if perf.settings.mode is not TestMode.PERFORMANCE:
        report.add(Severity.ERROR, "perf-mode",
                   f"{tag}: performance entry was not a performance-mode run")
    if not perf.valid:
        reasons = "; ".join(perf.validity.reasons)
        report.add(Severity.ERROR, "invalid-run",
                   f"{tag}: performance run INVALID ({reasons})")
    if perf.settings.scenario is not entry.scenario:
        report.add(Severity.ERROR, "scenario-mismatch",
                   f"{tag}: run scenario {perf.settings.scenario.value} "
                   f"does not match declared scenario")

    if entry.caching_enabled:
        report.add(Severity.ERROR, "caching",
                   f"{tag}: query/result caching is prohibited")

    if division is Division.CLOSED:
        if entry.retrained:
            report.add(Severity.ERROR, "retraining",
                       f"{tag}: retraining is prohibited in the closed division")
        if not entry.accuracy.passed:
            report.add(Severity.ERROR, "quality-target",
                       f"{tag}: {entry.accuracy.metric_name} "
                       f"{entry.accuracy.value:.4g} below target "
                       f"{entry.accuracy.target:.4g}")
    else:
        if not entry.accuracy.passed:
            report.add(Severity.WARNING, "quality-deviation",
                       f"{tag}: open-division quality below the closed target")

    if entry.scenario is Scenario.SERVER:
        details = perf.validity.details
        if "violation_fraction" in details:
            budget = perf.settings.resolved_max_violation_fraction
            if details["violation_fraction"] > budget:
                report.add(Severity.ERROR, "latency-bound",
                           f"{tag}: tail-latency budget exceeded")


def check_submission(submission: Submission) -> CheckReport:
    """Run every rule against a submission."""
    report = CheckReport()

    if not submission.results:
        report.add(Severity.ERROR, "empty", "submission contains no results")

    unapproved = [
        fmt for fmt in submission.system.numerics
        if fmt not in APPROVED_NUMERICS
    ]
    if unapproved:
        names = ", ".join(f.value for f in unapproved)
        report.add(Severity.ERROR, "numerics",
                   f"unregistered numeric formats: {names}")

    if (
        submission.division is Division.OPEN
        and not submission.open_deviations
    ):
        report.add(Severity.ERROR, "open-undocumented",
                   "open-division submissions must document their deviations")

    seen = set()
    for entry in submission.results:
        key = (entry.task, entry.scenario)
        if key in seen:
            report.add(Severity.ERROR, "duplicate",
                       f"duplicate entry for {entry.task.value}/"
                       f"{entry.scenario.short_name}")
        seen.add(key)
        check_result(entry, submission.division, report)

    return report
