"""Submission data model, checker, review pipeline, and reporting."""

from .artifacts import (
    check_submission_dir,
    read_submission_dir,
    write_submission,
)
from .checker import CheckReport, Issue, Severity, check_submission
from .reporting import SummaryScoreRefused, format_submission, summary_score
from .review import ReviewOutcome, ReviewSummary, review_round
from .schema import (
    APPROVED_NUMERICS,
    BenchmarkResult,
    Category,
    Division,
    Submission,
    SystemDescription,
)

__all__ = [
    "APPROVED_NUMERICS",
    "BenchmarkResult",
    "Category",
    "CheckReport",
    "Division",
    "Issue",
    "ReviewOutcome",
    "ReviewSummary",
    "Severity",
    "Submission",
    "SummaryScoreRefused",
    "SystemDescription",
    "check_submission",
    "check_submission_dir",
    "read_submission_dir",
    "write_submission",
    "format_submission",
    "review_round",
    "summary_score",
]
