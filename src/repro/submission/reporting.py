"""Result reporting (paper Section V-C).

MLPerf Inference deliberately provides **no summary score**: weighting
tasks against each other is subjective, and specialized systems would be
misrepresented by any average.  The reporting functions therefore only
ever emit per-(task, scenario) rows; an explicit guard refuses requests
for a single aggregate number.
"""

from __future__ import annotations


from ..core.config import Scenario
from .schema import Submission


class SummaryScoreRefused(RuntimeError):
    """Raised when a caller asks for the single number that must not be."""


def summary_score(submission: Submission) -> float:
    """There is no summary score.  By design.  See Section V-C."""
    raise SummaryScoreRefused(
        "MLPerf Inference provides no summary score: not all ML tasks are "
        "equally important for all systems, and weighting them is "
        "subjective.  Report per-task, per-scenario results instead."
    )


_METRIC_HEADINGS = {
    Scenario.SINGLE_STREAM: "90th-pct latency (ms)",
    Scenario.MULTI_STREAM: "streams",
    Scenario.SERVER: "queries/s",
    Scenario.OFFLINE: "samples/s",
}


def format_submission(submission: Submission) -> str:
    """Human-readable per-entry report for one submission."""
    lines = [
        f"System     : {submission.system.name} "
        f"({submission.system.processor}, {submission.system.software_stack})",
        f"Submitter  : {submission.system.submitter}",
        f"Division   : {submission.division.value}",
        f"Category   : {submission.category.value}",
        "-" * 72,
        f"{'Task':<26}{'Scenario':<14}{'Metric':<24}{'Quality':<10}",
        "-" * 72,
    ]
    for entry in submission.results:
        scenario = entry.scenario
        metric = entry.performance.primary_metric
        if scenario is Scenario.SINGLE_STREAM:
            metric_text = f"{metric * 1e3:.3f} ms (p90)"
        else:
            metric_text = f"{metric:.4g} {_METRIC_HEADINGS[scenario]}"
        quality = "PASS" if entry.accuracy.passed else "FAIL"
        lines.append(
            f"{entry.task.value:<26}{scenario.short_name:<14}"
            f"{metric_text:<24}{quality:<10}"
        )
    lines.append("-" * 72)
    lines.append("(no summary score - per Section V-C, none is defined)")
    return "\n".join(lines)
