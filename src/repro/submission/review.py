"""Peer-review pipeline (paper Sections V-B, VII-E).

Every submission goes through the automated checker before release; the
review summary counts how many were cleared versus flagged, mirroring
the v0.5 round in which ~40 issues surfaced across ~180 closed-division
results and 166 were ultimately released.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from .checker import CheckReport, check_submission
from .schema import Submission


@dataclass
class ReviewOutcome:
    """Checker verdict for one submission."""

    submission: Submission
    report: CheckReport

    @property
    def cleared(self) -> bool:
        return self.report.passed


@dataclass
class ReviewSummary:
    """Aggregate review statistics for a submission round."""

    outcomes: List[ReviewOutcome] = field(default_factory=list)

    @property
    def total_submissions(self) -> int:
        return len(self.outcomes)

    @property
    def total_results(self) -> int:
        return sum(len(o.submission.results) for o in self.outcomes)

    @property
    def cleared_results(self) -> int:
        return sum(
            len(o.submission.results) for o in self.outcomes if o.cleared
        )

    @property
    def issues_found(self) -> int:
        return sum(len(o.report.issues) for o in self.outcomes)

    def issue_codes(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for outcome in self.outcomes:
            for issue in outcome.report.issues:
                counts[issue.code] = counts.get(issue.code, 0) + 1
        return counts

    def summary(self) -> str:
        return (
            f"review: {self.total_submissions} submissions, "
            f"{self.total_results} results, "
            f"{self.cleared_results} cleared, "
            f"{self.issues_found} issues found"
        )


def review_round(submissions: Sequence[Submission]) -> ReviewSummary:
    """Run the automated checker over a full submission round."""
    summary = ReviewSummary()
    for submission in submissions:
        summary.outcomes.append(
            ReviewOutcome(submission=submission,
                          report=check_submission(submission))
        )
    return summary
