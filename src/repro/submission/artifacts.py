"""On-disk submission artifacts (paper Section V-A).

"All this data is uploaded to a public GitHub repository for peer review
and validation before release."  This module writes a submission the way
the real flow lays it out - a system-description file plus, per (task,
scenario) entry, the LoadGen summary, the detailed query trace, and the
accuracy report - and re-reads the directory for checker-style
validation without needing the live Python objects.

Layout::

    <root>/
      system.json
      <task>/<scenario>/
        mlperf_log_summary.txt
        mlperf_log_detail.jsonl
        performance.json
        accuracy.json
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List

from ..core.config import Scenario, Task
from .checker import CheckReport, Severity
from .schema import APPROVED_NUMERICS, Division, Submission

SYSTEM_FILE = "system.json"
SUMMARY_FILE = "mlperf_log_summary.txt"
DETAIL_FILE = "mlperf_log_detail.jsonl"
PERFORMANCE_FILE = "performance.json"
ACCURACY_FILE = "accuracy.json"


def _entry_dir(root: Path, task: Task, scenario: Scenario) -> Path:
    return root / task.value / scenario.value


def write_submission(submission: Submission, root: Path) -> Path:
    """Serialize ``submission`` under ``root``; returns the root path."""
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)

    system = submission.system
    system_payload = {
        "name": system.name,
        "submitter": system.submitter,
        "processor": system.processor,
        "accelerator_count": system.accelerator_count,
        "host_cpu_count": system.host_cpu_count,
        "software_stack": system.software_stack,
        "memory_gb": system.memory_gb,
        "numerics": [fmt.value for fmt in system.numerics],
        "division": submission.division.value,
        "category": submission.category.value,
        "open_deviations": submission.open_deviations,
    }
    (root / SYSTEM_FILE).write_text(
        json.dumps(system_payload, indent=2) + "\n")

    for entry in submission.results:
        directory = _entry_dir(root, entry.task, entry.scenario)
        directory.mkdir(parents=True, exist_ok=True)

        performance = entry.performance
        (directory / SUMMARY_FILE).write_text(performance.summary() + "\n")
        (directory / DETAIL_FILE).write_text(
            performance.log.to_jsonl() + "\n")
        (directory / PERFORMANCE_FILE).write_text(json.dumps({
            "scenario": entry.scenario.value,
            "task": entry.task.value,
            "valid": performance.valid,
            "invalid_reasons": performance.validity.reasons,
            "primary_metric": performance.primary_metric,
            "primary_metric_name": performance.metrics.primary_metric_name,
            "query_count": performance.metrics.query_count,
            "sample_count": performance.metrics.sample_count,
            "duration_seconds": performance.metrics.duration,
            "latency_p90_ms": performance.metrics.latency_p90 * 1e3,
            "latency_p99_ms": performance.metrics.latency_p99 * 1e3,
            "seed": performance.settings.seed,
            "retrained": entry.retrained,
            "caching_enabled": entry.caching_enabled,
        }, indent=2) + "\n")
        accuracy = entry.accuracy
        (directory / ACCURACY_FILE).write_text(json.dumps({
            "metric_name": accuracy.metric_name,
            "value": accuracy.value,
            "target": accuracy.target,
            "passed": accuracy.passed,
            "sample_count": accuracy.sample_count,
        }, indent=2) + "\n")
    return root


@dataclass
class EntryManifest:
    """One on-disk (task, scenario) entry, as read back."""

    task: Task
    scenario: Scenario
    performance: Dict
    accuracy: Dict
    has_summary: bool
    has_detail: bool


@dataclass
class SubmissionManifest:
    """A submission directory, as read back for review."""

    root: Path
    system: Dict
    entries: List[EntryManifest] = field(default_factory=list)

    @property
    def division(self) -> Division:
        return Division(self.system["division"])


def read_submission_dir(root: Path) -> SubmissionManifest:
    """Parse a submission directory written by :func:`write_submission`."""
    root = Path(root)
    system_path = root / SYSTEM_FILE
    if not system_path.exists():
        raise FileNotFoundError(f"no {SYSTEM_FILE} under {root}")
    manifest = SubmissionManifest(
        root=root, system=json.loads(system_path.read_text()))
    for task in Task:
        for scenario in Scenario:
            directory = _entry_dir(root, task, scenario)
            if not directory.exists():
                continue
            perf_path = directory / PERFORMANCE_FILE
            acc_path = directory / ACCURACY_FILE
            manifest.entries.append(EntryManifest(
                task=task,
                scenario=scenario,
                performance=(json.loads(perf_path.read_text())
                             if perf_path.exists() else {}),
                accuracy=(json.loads(acc_path.read_text())
                          if acc_path.exists() else {}),
                has_summary=(directory / SUMMARY_FILE).exists(),
                has_detail=(directory / DETAIL_FILE).exists(),
            ))
    return manifest


_APPROVED_VALUES = {fmt.value for fmt in APPROVED_NUMERICS}


def check_submission_dir(root: Path) -> CheckReport:
    """Checker rules applied to the on-disk artifacts alone."""
    report = CheckReport()
    try:
        manifest = read_submission_dir(root)
    except FileNotFoundError as error:
        report.add(Severity.ERROR, "missing-system", str(error))
        return report

    for fmt in manifest.system.get("numerics", []):
        if fmt not in _APPROVED_VALUES:
            report.add(Severity.ERROR, "numerics",
                       f"unregistered numeric format: {fmt}")

    division = manifest.system.get("division")
    if division == Division.OPEN.value and \
            not manifest.system.get("open_deviations"):
        report.add(Severity.ERROR, "open-undocumented",
                   "open-division submissions must document deviations")

    if not manifest.entries:
        report.add(Severity.ERROR, "empty", "submission contains no results")

    for entry in manifest.entries:
        tag = f"{entry.task.value}/{entry.scenario.short_name}"
        for flag, code in ((entry.has_summary, "missing-summary"),
                           (entry.has_detail, "missing-detail")):
            if not flag:
                report.add(Severity.ERROR, code, f"{tag}: log file missing")
        if not entry.performance:
            report.add(Severity.ERROR, "missing-performance",
                       f"{tag}: {PERFORMANCE_FILE} missing")
            continue
        if not entry.performance.get("valid", False):
            reasons = "; ".join(entry.performance.get("invalid_reasons", []))
            report.add(Severity.ERROR, "invalid-run",
                       f"{tag}: performance run INVALID ({reasons})")
        if entry.performance.get("caching_enabled"):
            report.add(Severity.ERROR, "caching",
                       f"{tag}: caching is prohibited")
        if division == Division.CLOSED.value:
            if entry.performance.get("retrained"):
                report.add(Severity.ERROR, "retraining",
                           f"{tag}: retraining prohibited in closed division")
            if not entry.accuracy.get("passed", False):
                report.add(Severity.ERROR, "quality-target",
                           f"{tag}: quality target missed")
    return report
