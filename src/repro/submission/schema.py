"""Submission data model (paper Section V-A).

A result submission bundles the system under test's description, the
division and category, and per-(task, scenario) results: the performance
run's summary and the accuracy run's quality.  All of it would be
uploaded to a public repository for peer review; here it is a plain data
model consumed by the submission checker and the review pipeline.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..core.config import Scenario, Task
from ..core.loadgen import LoadGenResult
from ..accuracy.checker import AccuracyReport
from ..models.quantization import NumericFormat


class Division(enum.Enum):
    """Closed: strict comparability.  Open: innovation, documented."""

    CLOSED = "closed"
    OPEN = "open"


class Category(enum.Enum):
    """Hardware/software availability (Section V-A)."""

    AVAILABLE = "available"
    PREVIEW = "preview"
    RDO = "research_development_other"


#: Formats approved for closed-division quantization (Section IV-A).
APPROVED_NUMERICS = frozenset({
    NumericFormat.INT4, NumericFormat.INT8, NumericFormat.INT16,
    NumericFormat.UINT8, NumericFormat.UINT16, NumericFormat.FP11,
    NumericFormat.FP16, NumericFormat.BF16, NumericFormat.FP32,
})


@dataclass(frozen=True)
class SystemDescription:
    """The system-description file highlighting the SUT's configuration."""

    name: str
    submitter: str
    processor: str
    accelerator_count: int
    host_cpu_count: int
    software_stack: str
    memory_gb: float
    numerics: Tuple[NumericFormat, ...] = (NumericFormat.FP32,)

    def __post_init__(self) -> None:
        if self.accelerator_count < 0:
            raise ValueError("accelerator_count must be >= 0")
        if self.host_cpu_count < 1:
            raise ValueError("host_cpu_count must be >= 1")
        if not self.numerics:
            raise ValueError("at least one numeric format must be registered")


@dataclass
class BenchmarkResult:
    """One (task, scenario) entry within a submission."""

    task: Task
    scenario: Scenario
    performance: LoadGenResult
    accuracy: AccuracyReport
    #: Whether the model was retrained (prohibited in closed division).
    retrained: bool = False
    #: Whether query/intermediate caching was used (always prohibited).
    caching_enabled: bool = False


@dataclass
class Submission:
    """A full submission: system + division/category + results."""

    system: SystemDescription
    division: Division
    category: Category
    results: List[BenchmarkResult] = field(default_factory=list)
    #: Open-division submissions must document their deviations.
    open_deviations: Optional[str] = None

    def add_result(self, result: BenchmarkResult) -> None:
        self.results.append(result)

    def result_for(self, task: Task, scenario: Scenario
                   ) -> Optional[BenchmarkResult]:
        for result in self.results:
            if result.task is task and result.scenario is scenario:
                return result
        return None
