"""Event-driven simulated SUT (queueing, batching, padding waste).

This is the submitter-side counterpart of the LoadGen for performance
experiments: incoming queries are split into chunks of at most
``max_batch`` samples, queued, and served by the device's engines.

Two mechanisms make the scenario differences *emerge* rather than being
scripted:

* **Dynamic batching** - an idle engine merges queued chunks into one
  dispatch.  Under offline's single huge query the dispatches are always
  full; under server's Poisson trickle they are as large as the queue
  happens to be, bounded by the latency the QoS constraint can afford
  (optionally helped by a ``batch_window`` hold-off).

* **Cost variability and padding** - each sample carries a cost
  multiplier (drawn from a lognormal keyed to the workload's
  ``variability``; zero for fixed-shape CNN inputs, substantial for
  NMT's variable sentence lengths).  A batched dispatch pays the
  *maximum* multiplier in the batch for every sample - padding waste.
  The SUT may reorder work (explicitly allowed by the rules), so
  dispatch assembly buckets chunks of similar cost together: with the
  whole data set queued (offline) bucketing is nearly perfect, with a
  live queue (server) it cannot be - which is exactly why the paper's
  NMT systems lose 39-55% of their throughput in the server scenario
  (Section VI-B).

The simulated SUT never sees scenario information: the behavioural
differences are induced purely by the arrival process, as in the real
benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..core.events import EventHandle, EventLoop
from ..core.query import Query, QuerySampleResponse
from ..core.sut import Responder, SutBase
from .device import ComputeMotif, DeviceModel


@dataclass(frozen=True)
class WorkloadProfile:
    """What the SUT is serving: per-sample cost, motif, variability."""

    gops_per_sample: float
    motif: ComputeMotif = ComputeMotif.DENSE_CNN
    #: Lognormal sigma of the per-sample cost multiplier (0 = fixed cost).
    variability: float = 0.0

    def __post_init__(self) -> None:
        if self.gops_per_sample <= 0:
            raise ValueError("gops_per_sample must be positive")
        if self.variability < 0:
            raise ValueError("variability must be >= 0")


@dataclass
class _Chunk:
    """A dispatchable slice of one query."""

    query: Query
    sample_count: int
    max_multiplier: float
    arrival: float


class SimulatedSUT(SutBase):
    """A device model serving queries on the event loop."""

    def __init__(
        self,
        device: DeviceModel,
        workload: WorkloadProfile,
        batch_window: float = 0.0,
        preferred_batch: Optional[int] = None,
        name: Optional[str] = None,
        seed: int = 1234,
    ) -> None:
        super().__init__(name or device.name)
        if batch_window < 0:
            raise ValueError(f"batch_window must be >= 0, got {batch_window}")
        self.device = device
        self.workload = workload
        self.batch_window = batch_window
        self.preferred_batch = (
            min(preferred_batch, device.max_batch)
            if preferred_batch is not None
            else device.max_batch
        )
        self._seed = seed
        self._rng = np.random.default_rng(seed)
        self._queue: List[_Chunk] = []
        self._pending_chunks: Dict[int, int] = {}
        self._idle_engines = device.engines
        self._window_event: Optional[EventHandle] = None
        #: Dispatch sample counts, for batching diagnostics/tests.
        self.dispatch_batches: List[int] = []
        #: Active energy consumed by dispatches this run (Joules).
        self.energy_joules = 0.0

    def start_run(self, loop: EventLoop, responder: Responder) -> None:
        super().start_run(loop, responder)
        self._rng = np.random.default_rng(self._seed)
        self._queue = []
        self._pending_chunks = {}
        self._idle_engines = self.device.engines
        self._window_event = None
        self.dispatch_batches = []
        self.energy_joules = 0.0

    # -- query intake -----------------------------------------------------------

    def _sample_multipliers(self, count: int) -> np.ndarray:
        if self.workload.variability == 0.0:
            return np.ones(count)
        sigma = self.workload.variability
        draws = self._rng.lognormal(mean=0.0, sigma=sigma, size=count)
        # Normalize so the *mean* cost equals gops_per_sample.
        return draws / np.exp(sigma * sigma / 2.0)

    def issue_query(self, query: Query) -> None:
        multipliers = self._sample_multipliers(query.sample_count)
        # Reordering within a query is explicitly allowed: sort samples
        # by cost so chunks are homogeneous (minimal padding waste).
        multipliers = np.sort(multipliers)
        max_batch = self.device.max_batch
        chunks = 0
        now = self.loop.now
        for start in range(0, query.sample_count, max_batch):
            part = multipliers[start:start + max_batch]
            self._queue.append(_Chunk(
                query=query,
                sample_count=len(part),
                max_multiplier=float(part[-1]),
                arrival=now,
            ))
            chunks += 1
        self._pending_chunks[query.id] = chunks
        self._try_dispatch()

    def flush(self) -> None:
        """Dispatch whatever is queued without waiting for the window."""
        self._cancel_window()
        while self._queue and self._idle_engines > 0:
            self._dispatch_now()

    # -- batching ---------------------------------------------------------------

    def _queued_samples(self) -> int:
        return sum(c.sample_count for c in self._queue)

    def _oldest_arrival(self) -> float:
        return min(c.arrival for c in self._queue)

    def _try_dispatch(self) -> None:
        while self._queue and self._idle_engines > 0:
            if (
                self.batch_window > 0.0
                and self._queued_samples() < self.preferred_batch
            ):
                deadline = self._oldest_arrival() + self.batch_window
                if self.loop.now < deadline:
                    self._arm_window(deadline)
                    return
            self._cancel_window()
            self._dispatch_now()

    def _arm_window(self, deadline: float) -> None:
        if self._window_event is not None and not self._window_event.cancelled:
            if self._window_event.time <= deadline:
                return
            self._window_event.cancel()
        self._window_event = self.loop.schedule(deadline, self._window_fired)

    def _cancel_window(self) -> None:
        if self._window_event is not None:
            self._window_event.cancel()
            self._window_event = None

    def _window_fired(self) -> None:
        self._window_event = None
        if self._queue and self._idle_engines > 0:
            self._dispatch_now()
            self._try_dispatch()

    def _assemble_batch(self) -> List[_Chunk]:
        """FIFO batch assembly up to ``max_batch`` samples.

        Arrival-order service: a live server cannot bucket by cost
        without delaying someone past the QoS bound, so mixed-cost
        batches (and their padding waste) are inherent to the server
        scenario.  Offline escapes this because its one giant query was
        already sorted by cost at intake, making every chunk
        homogeneous - the asymmetry behind the paper's 39-55% NMT
        server-throughput loss (Section VI-B).
        """
        batch: List[_Chunk] = [self._queue[0]]
        capacity = self.device.max_batch - self._queue[0].sample_count
        taken = 1
        for chunk in self._queue[1:]:
            if chunk.sample_count > capacity:
                break
            batch.append(chunk)
            capacity -= chunk.sample_count
            taken += 1
        del self._queue[:taken]
        return batch

    def _dispatch_now(self) -> None:
        if not self._queue:
            return
        batch = self._assemble_batch()
        samples = sum(c.sample_count for c in batch)
        worst = max(c.max_multiplier for c in batch)
        self._idle_engines -= 1
        self.dispatch_batches.append(samples)
        duration = self.device.service_time(
            self.workload.gops_per_sample * worst,
            samples,
            self.workload.motif,
        )
        # DVFS/thermal state: a cold device runs faster than equilibrium
        # (Section III-D's motivation for the 60 s minimum duration).
        duration /= self.device.speed_multiplier(self.loop.now)
        self.energy_joules += self.device.dispatch_energy(
            self.workload.gops_per_sample * worst, samples,
            self.workload.motif,
        )
        self.loop.schedule_after(
            duration, lambda batch=batch: self._finish(batch)
        )

    def _finish(self, batch: List[_Chunk]) -> None:
        self._idle_engines += 1
        for chunk in batch:
            query = chunk.query
            self._pending_chunks[query.id] -= 1
            if self._pending_chunks[query.id] == 0:
                del self._pending_chunks[query.id]
                responses = [
                    QuerySampleResponse(sample.id, None)
                    for sample in query.samples
                ]
                self.complete(query, responses)
        self._try_dispatch()
