"""The simulated submission fleet (paper Section VI).

The v0.5 closed division released 166 results from over 30 systems
spanning four orders of magnitude - embedded devices to data-center
accelerators - across CPUs, GPUs, DSPs, FPGAs, and ASICs (Figs. 5, 7,
8; Tables VI, VII).  This module defines a fleet of simulated systems
whose

* device parameters span the published performance range,
* frameworks reproduce the Table VII framework-architecture matrix, and
* submission plans (which task x scenario combos each system enters)
  sum exactly to the Table VI coverage matrix - including the empty
  GNMT-multistream cell.

Submission choices follow the paper's observed pattern: mobile and
embedded parts enter single-stream (and a few multistream) for the light
vision models; data-center parts enter server/offline for the heavy
models and GNMT; mid-range edge parts carry most of the multistream
column (the scenario models multi-camera automotive/industrial use).
Every planned server/multistream combo is capability-checked: the
device can meet the task's Table III bound at least at the minimum
rate, so the whole plan is realizable by the tuning harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..core.config import Scenario, Task
from ..models.arch.gnmt import build_gnmt
from ..models.registry import model_info
from .device import ComputeMotif, DeviceModel, ProcessorType
from .simulated import WorkloadProfile

#: Short scenario aliases used in submission plans.
_SCN = {
    "SS": Scenario.SINGLE_STREAM,
    "MS": Scenario.MULTI_STREAM,
    "S": Scenario.SERVER,
    "O": Scenario.OFFLINE,
}

#: Task aliases.
_TASK = {
    "RN": Task.IMAGE_CLASSIFICATION_HEAVY,
    "MN": Task.IMAGE_CLASSIFICATION_LIGHT,
    "SR": Task.OBJECT_DETECTION_HEAVY,
    "SM": Task.OBJECT_DETECTION_LIGHT,
    "G": Task.MACHINE_TRANSLATION,
}


def task_workload(task: Task) -> WorkloadProfile:
    """The simulated workload profile for one Table I model."""
    info = model_info(task)
    if task is Task.MACHINE_TRANSLATION:
        # Table I quotes no GOPs for GNMT; use the architecture's cost at
        # the WMT16 mean sentence length, and give it the sentence-length
        # variability that drives its server-scenario padding waste.
        return WorkloadProfile(
            gops_per_sample=build_gnmt().gops(),
            motif=ComputeMotif.RNN,
            variability=0.6,
        )
    if task in (Task.IMAGE_CLASSIFICATION_LIGHT, Task.OBJECT_DETECTION_LIGHT):
        motif = ComputeMotif.DEPTHWISE_CNN
    else:
        motif = ComputeMotif.DENSE_CNN
    return WorkloadProfile(gops_per_sample=info.gops_per_input, motif=motif)


@dataclass(frozen=True)
class FleetSystem:
    """One submitter system: device, software stack, submission plan."""

    device: DeviceModel
    framework: str
    category: str                      # available / preview / rdo
    #: task alias -> scenario aliases, e.g. {"RN": ("S", "O")}.
    plan: Dict[str, Tuple[str, ...]]
    batch_window: float = 0.0

    @property
    def name(self) -> str:
        return self.device.name

    def submissions(self) -> List[Tuple[Task, Scenario]]:
        out = []
        for task_alias, scenarios in self.plan.items():
            for scenario_alias in scenarios:
                out.append((_TASK[task_alias], _SCN[scenario_alias]))
        return out


def _eff(dense: float, depthwise: float, rnn: float) -> Dict[ComputeMotif, float]:
    return {
        ComputeMotif.DENSE_CNN: dense,
        ComputeMotif.DEPTHWISE_CNN: depthwise,
        ComputeMotif.RNN: rnn,
    }


def build_fleet() -> List[FleetSystem]:
    """The full simulated fleet: 33 systems, 166 planned results."""
    return [
        # ---- data-center accelerators -------------------------------------
        FleetSystem(
            DeviceModel("dc-asic-tpu", ProcessorType.ASIC, peak_gops=200_000,
                        base_utilization=0.04, saturation_gops=500,
                        overhead=0.5e-3, max_batch=256,
                        structure_efficiency=_eff(1.0, 0.35, 0.25),
                        idle_watts=90, peak_watts=350),
            framework="TensorFlow", category="available",
            plan={"RN": ("S", "O"), "SR": ("S", "O"), "G": ("S", "O")},
            batch_window=2e-3,
        ),
        FleetSystem(
            DeviceModel("dc-gpu-a", ProcessorType.GPU, peak_gops=150_000,
                        base_utilization=0.05, saturation_gops=120,
                        overhead=0.4e-3, max_batch=128,
                        structure_efficiency=_eff(1.0, 0.35, 0.3),
                        idle_watts=80, peak_watts=320),
            framework="TensorRT", category="available",
            plan={"RN": ("SS", "S", "O"), "MN": ("S", "O"),
                  "SM": ("S", "O"), "SR": ("SS", "MS", "S", "O"),
                  "G": ("SS", "S", "O")},
            batch_window=1e-3,
        ),
        FleetSystem(
            DeviceModel("dc-gpu-b", ProcessorType.GPU, peak_gops=120_000,
                        base_utilization=0.06, saturation_gops=100,
                        overhead=0.4e-3, max_batch=128,
                        structure_efficiency=_eff(1.0, 0.4, 0.3),
                        idle_watts=70, peak_watts=260),
            framework="TensorRT", category="available",
            plan={"RN": ("S", "O"), "MN": ("S",), "SM": ("S",),
                  "SR": ("MS", "S", "O"), "G": ("S", "O")},
            batch_window=1e-3,
        ),
        FleetSystem(
            DeviceModel("dc-gpu-c", ProcessorType.GPU, peak_gops=80_000,
                        base_utilization=0.06, saturation_gops=200,
                        overhead=0.4e-3, max_batch=128,
                        structure_efficiency=_eff(1.0, 0.35, 0.3),
                        idle_watts=60, peak_watts=200),
            framework="TensorRT", category="available",
            plan={"RN": ("S", "O"), "SM": ("S", "O"),
                  "SR": ("MS", "S", "O"), "G": ("S", "O")},
            batch_window=1e-3,
        ),
        FleetSystem(
            DeviceModel("dc-asic-hanguang", ProcessorType.ASIC,
                        peak_gops=280_000, base_utilization=0.08,
                        saturation_gops=400, overhead=0.2e-3, max_batch=64,
                        structure_efficiency=_eff(1.0, 0.4, 0.2),
                        idle_watts=80, peak_watts=300),
            framework="HanGuang AI", category="available",
            plan={"RN": ("S", "O")},
        ),
        FleetSystem(
            DeviceModel("dc-asic-habana", ProcessorType.ASIC,
                        peak_gops=160_000, base_utilization=0.08,
                        saturation_gops=300, overhead=0.3e-3, max_batch=64,
                        structure_efficiency=_eff(1.0, 0.45, 0.35),
                        idle_watts=70, peak_watts=250),
            framework="Synapse", category="available",
            plan={"RN": ("S", "O"), "SR": ("O",), "G": ("S", "O")},
        ),
        FleetSystem(
            DeviceModel("dc-asic-npx", ProcessorType.ASIC, peak_gops=100_000,
                        base_utilization=0.08, saturation_gops=200,
                        overhead=0.3e-3, max_batch=64,
                        structure_efficiency=_eff(1.0, 0.35, 0.3),
                        idle_watts=50, peak_watts=180),
            framework="TensorFlow", category="preview",
            plan={"RN": ("S", "O"), "SM": ("S", "O"), "SR": ("S", "O"),
                  "G": ("O",)},
        ),
        # ---- data-center CPUs ------------------------------------------------
        FleetSystem(
            DeviceModel("dc-cpu-xeon", ProcessorType.CPU, peak_gops=2_500,
                        base_utilization=0.7, saturation_gops=15,
                        overhead=0.15e-3, max_batch=8, engines=2,
                        structure_efficiency=_eff(1.0, 0.85, 0.7),
                        idle_watts=90, peak_watts=270),
            framework="OpenVINO", category="available",
            plan={"RN": ("S", "O"), "MN": ("S", "O"), "G": ("S", "O")},
        ),
        FleetSystem(
            DeviceModel("dc-cpu-onnx", ProcessorType.CPU, peak_gops=1_400,
                        base_utilization=0.7, saturation_gops=12,
                        overhead=0.2e-3, max_batch=8, engines=2,
                        structure_efficiency=_eff(1.0, 0.85, 0.65),
                        idle_watts=80, peak_watts=230),
            framework="ONNX", category="available",
            plan={"RN": ("O",), "MN": ("S", "O"), "G": ("O",)},
        ),
        FleetSystem(
            DeviceModel("dc-cpu-epyc", ProcessorType.CPU, peak_gops=2_000,
                        base_utilization=0.7, saturation_gops=12,
                        overhead=0.15e-3, max_batch=8, engines=2,
                        structure_efficiency=_eff(1.0, 0.85, 0.7),
                        idle_watts=85, peak_watts=250),
            framework="PyTorch", category="available",
            plan={"MN": ("S",), "SM": ("O",), "G": ("O",)},
        ),
        # ---- FPGAs -----------------------------------------------------------
        FleetSystem(
            DeviceModel("fpga-cloud", ProcessorType.FPGA, peak_gops=25_000,
                        base_utilization=0.35, saturation_gops=60,
                        overhead=0.3e-3, max_batch=16,
                        structure_efficiency=_eff(0.9, 0.3, 0.4),
                        idle_watts=30, peak_watts=100),
            framework="FuriosaAI", category="preview",
            plan={"RN": ("SS", "S", "O"), "SM": ("O",), "SR": ("S", "O")},
        ),
        FleetSystem(
            DeviceModel("fpga-edge", ProcessorType.FPGA, peak_gops=800,
                        base_utilization=0.45, saturation_gops=20,
                        overhead=0.4e-3, max_batch=8,
                        structure_efficiency=_eff(0.9, 0.3, 0.4),
                        idle_watts=5, peak_watts=20),
            framework="FuriosaAI", category="preview",
            plan={"RN": ("SS", "MS", "O"), "SM": ("MS", "O"), "SR": ("O",)},
        ),
        # ---- workstation / edge GPUs ----------------------------------------
        FleetSystem(
            DeviceModel("ws-gpu", ProcessorType.GPU, peak_gops=50_000,
                        base_utilization=0.06, saturation_gops=150,
                        overhead=0.5e-3, max_batch=64,
                        structure_efficiency=_eff(1.0, 0.35, 0.3),
                        idle_watts=50, peak_watts=180),
            framework="TensorRT", category="available",
            plan={"RN": ("SS", "S", "O"), "SM": ("S", "O"),
                  "SR": ("SS", "MS", "S", "O")},
            batch_window=1e-3,
        ),
        FleetSystem(
            DeviceModel("edge-gpu", ProcessorType.GPU, peak_gops=1_000,
                        base_utilization=0.15, saturation_gops=60,
                        overhead=0.8e-3, max_batch=32,
                        structure_efficiency=_eff(1.0, 0.35, 0.35),
                        idle_watts=4, peak_watts=15),
            framework="TensorRT", category="available",
            plan={"RN": ("SS", "MS", "O"), "MN": ("SS",),
                  "SM": ("SS", "MS", "O"), "SR": ("O",)},
        ),
        FleetSystem(
            DeviceModel("robot-gpu", ProcessorType.GPU, peak_gops=4_000,
                        base_utilization=0.1, saturation_gops=150,
                        overhead=0.6e-3, max_batch=32,
                        structure_efficiency=_eff(1.0, 0.45, 0.35),
                        idle_watts=12, peak_watts=45),
            framework="TensorFlow", category="available",
            plan={"RN": ("SS", "MS", "O"), "SR": ("SS", "O")},
        ),
        FleetSystem(
            DeviceModel("auto-asic", ProcessorType.ASIC, peak_gops=3_000,
                        base_utilization=0.2, saturation_gops=100,
                        overhead=0.5e-3, max_batch=16,
                        structure_efficiency=_eff(1.0, 0.35, 0.3),
                        idle_watts=10, peak_watts=40),
            framework="TensorFlow", category="preview",
            plan={"RN": ("SS", "MS", "O"), "SM": ("MS", "O"),
                  "SR": ("SS", "O")},
        ),
        # ---- desktop / laptop / small-office CPUs ----------------------------
        FleetSystem(
            DeviceModel("arm-server", ProcessorType.CPU, peak_gops=600,
                        base_utilization=0.7, saturation_gops=10,
                        overhead=0.2e-3, max_batch=8, engines=2,
                        structure_efficiency=_eff(1.0, 0.7, 0.7),
                        idle_watts=25, peak_watts=90),
            framework="ArmNN", category="available",
            plan={"RN": ("SS", "O"), "MN": ("SS", "O")},
        ),
        FleetSystem(
            DeviceModel("desktop-cpu", ProcessorType.CPU, peak_gops=200,
                        base_utilization=0.8, saturation_gops=6,
                        overhead=0.1e-3, max_batch=16,
                        structure_efficiency=_eff(1.0, 0.75, 0.75),
                        idle_watts=15, peak_watts=65),
            framework="PyTorch", category="available",
            plan={"RN": ("SS", "O"), "MN": ("SS", "O"), "G": ("SS", "O")},
        ),
        FleetSystem(
            DeviceModel("laptop-cpu", ProcessorType.CPU, peak_gops=100,
                        base_utilization=0.8, saturation_gops=5,
                        overhead=0.1e-3, max_batch=8,
                        structure_efficiency=_eff(1.0, 0.75, 0.8),
                        idle_watts=5, peak_watts=22),
            framework="TensorFlow", category="available",
            plan={"RN": ("SS", "O"), "MN": ("SS", "O"), "SM": ("SS", "O"),
                  "G": ("O",)},
        ),
        FleetSystem(
            DeviceModel("mini-pc-cpu", ProcessorType.CPU, peak_gops=150,
                        base_utilization=0.8, saturation_gops=5,
                        overhead=0.15e-3, max_batch=8,
                        structure_efficiency=_eff(1.0, 0.75, 0.75),
                        idle_watts=8, peak_watts=28),
            framework="OpenVINO", category="available",
            plan={"RN": ("SS", "O"), "MN": ("SS",)},
        ),
        # ---- mobile SoCs ------------------------------------------------------
        FleetSystem(
            DeviceModel("mobile-dsp-a", ProcessorType.DSP, peak_gops=60,
                        base_utilization=0.6, saturation_gops=3,
                        overhead=1.5e-3, max_batch=4,
                        structure_efficiency=_eff(0.9, 0.6, 0.5),
                        idle_watts=0.3, peak_watts=1.8),
            framework="SNPE", category="available",
            plan={"RN": ("SS",), "MN": ("SS", "MS", "O"), "SM": ("SS", "O")},
        ),
        FleetSystem(
            DeviceModel("mobile-dsp-b", ProcessorType.DSP, peak_gops=30,
                        base_utilization=0.6, saturation_gops=3,
                        overhead=2e-3, max_batch=4,
                        structure_efficiency=_eff(0.9, 0.6, 0.5),
                        idle_watts=0.25, peak_watts=1.2),
            framework="SNPE", category="available",
            plan={"MN": ("SS",), "SM": ("SS",)},
        ),
        FleetSystem(
            DeviceModel("smartphone-soc-a", ProcessorType.DSP, peak_gops=45,
                        base_utilization=0.6, saturation_gops=3,
                        overhead=1.5e-3, max_batch=4,
                        structure_efficiency=_eff(0.9, 0.6, 0.5),
                        idle_watts=0.3, peak_watts=1.5),
            framework="SNPE", category="available",
            plan={"RN": ("SS",), "MN": ("SS",)},
        ),
        FleetSystem(
            DeviceModel("smartphone-soc-b", ProcessorType.DSP, peak_gops=22,
                        base_utilization=0.6, saturation_gops=2,
                        overhead=2e-3, max_batch=4,
                        structure_efficiency=_eff(0.9, 0.6, 0.5),
                        idle_watts=0.2, peak_watts=1.0),
            framework="SNPE", category="available",
            plan={"RN": ("SS",), "MN": ("SS",)},
        ),
        FleetSystem(
            DeviceModel("camera-soc", ProcessorType.DSP, peak_gops=12,
                        base_utilization=0.6, saturation_gops=2,
                        overhead=2e-3, max_batch=2,
                        structure_efficiency=_eff(0.9, 0.6, 0.5),
                        idle_watts=0.15, peak_watts=0.7),
            framework="SNPE", category="rdo",
            plan={"MN": ("SS",)},
        ),
        FleetSystem(
            DeviceModel("mobile-gpu", ProcessorType.GPU, peak_gops=80,
                        base_utilization=0.5, saturation_gops=5,
                        overhead=2e-3, max_batch=8,
                        structure_efficiency=_eff(0.95, 0.55, 0.4),
                        idle_watts=0.8, peak_watts=3.5),
            framework="ArmNN", category="available",
            plan={"RN": ("SS", "O"), "MN": ("SS",)},
        ),
        FleetSystem(
            DeviceModel("dev-board-gpu", ProcessorType.GPU, peak_gops=150,
                        base_utilization=0.4, saturation_gops=8,
                        overhead=1.5e-3, max_batch=8,
                        structure_efficiency=_eff(0.95, 0.55, 0.4),
                        idle_watts=2, peak_watts=9),
            framework="ArmNN", category="available",
            plan={"RN": ("SS",), "MN": ("SS",), "SM": ("SS",)},
        ),
        FleetSystem(
            DeviceModel("mobile-cpu", ProcessorType.CPU, peak_gops=20,
                        base_utilization=0.8, saturation_gops=2,
                        overhead=0.5e-3, max_batch=4,
                        structure_efficiency=_eff(1.0, 0.8, 0.8),
                        idle_watts=0.4, peak_watts=2.0),
            framework="TensorFlow Lite", category="available",
            plan={"RN": ("SS",), "MN": ("SS", "O"), "SM": ("SS",)},
        ),
        FleetSystem(
            DeviceModel("tablet-cpu", ProcessorType.CPU, peak_gops=15,
                        base_utilization=0.8, saturation_gops=2,
                        overhead=0.5e-3, max_batch=4,
                        structure_efficiency=_eff(1.0, 0.8, 0.8),
                        idle_watts=0.35, peak_watts=1.6),
            framework="TensorFlow Lite", category="available",
            plan={"MN": ("SS",)},
        ),
        # ---- edge accelerators ------------------------------------------------
        FleetSystem(
            DeviceModel("edge-asic-hailo", ProcessorType.ASIC, peak_gops=400,
                        base_utilization=0.4, saturation_gops=10,
                        overhead=0.8e-3, max_batch=8,
                        structure_efficiency=_eff(1.0, 0.55, 0.3),
                        idle_watts=1.0, peak_watts=4.5),
            framework="Hailo SDK", category="preview",
            plan={"RN": ("MS",), "MN": ("SS", "MS", "O"), "SM": ("SS", "O")},
        ),
        FleetSystem(
            DeviceModel("edge-npu", ProcessorType.ASIC, peak_gops=100,
                        base_utilization=0.5, saturation_gops=5,
                        overhead=1e-3, max_batch=4,
                        structure_efficiency=_eff(1.0, 0.6, 0.4),
                        idle_watts=0.5, peak_watts=2.2),
            framework="TensorFlow", category="rdo",
            plan={"RN": ("SS",), "MN": ("SS", "MS", "O")},
        ),
        FleetSystem(
            DeviceModel("embedded-asic", ProcessorType.ASIC, peak_gops=50,
                        base_utilization=0.5, saturation_gops=3,
                        overhead=1e-3, max_batch=4,
                        structure_efficiency=_eff(1.0, 0.6, 0.4),
                        idle_watts=0.3, peak_watts=1.3),
            framework="TensorFlow", category="rdo",
            plan={"MN": ("SS", "O"), "SM": ("SS", "O")},
        ),
        FleetSystem(
            DeviceModel("iot-cpu", ProcessorType.CPU, peak_gops=6,
                        base_utilization=0.85, saturation_gops=1,
                        overhead=0.5e-3, max_batch=2,
                        structure_efficiency=_eff(1.0, 0.8, 0.8),
                        idle_watts=0.1, peak_watts=0.4),
            framework="TensorFlow Lite", category="rdo",
            plan={"RN": ("SS",), "MN": ("SS",)},
        ),
    ]


def planned_matrix(systems: Sequence[FleetSystem]
                   ) -> Dict[Task, Dict[Scenario, int]]:
    """Count planned submissions per (task, scenario)."""
    matrix: Dict[Task, Dict[Scenario, int]] = {
        task: {scenario: 0 for scenario in Scenario} for task in Task
    }
    for system in systems:
        for task, scenario in system.submissions():
            matrix[task][scenario] += 1
    return matrix


def framework_matrix(systems: Sequence[FleetSystem]
                     ) -> Dict[str, frozenset]:
    """Framework -> set of processor types (the Table VII matrix)."""
    out: Dict[str, set] = {}
    for system in systems:
        out.setdefault(system.framework, set()).add(system.device.processor)
    return {framework: frozenset(procs) for framework, procs in out.items()}


#: Table VI of the paper: released closed-division results.
TABLE_VI = {
    Task.MACHINE_TRANSLATION: {
        Scenario.SINGLE_STREAM: 2, Scenario.MULTI_STREAM: 0,
        Scenario.SERVER: 6, Scenario.OFFLINE: 11,
    },
    Task.IMAGE_CLASSIFICATION_LIGHT: {
        Scenario.SINGLE_STREAM: 18, Scenario.MULTI_STREAM: 3,
        Scenario.SERVER: 5, Scenario.OFFLINE: 11,
    },
    Task.IMAGE_CLASSIFICATION_HEAVY: {
        Scenario.SINGLE_STREAM: 19, Scenario.MULTI_STREAM: 5,
        Scenario.SERVER: 10, Scenario.OFFLINE: 20,
    },
    Task.OBJECT_DETECTION_LIGHT: {
        Scenario.SINGLE_STREAM: 8, Scenario.MULTI_STREAM: 3,
        Scenario.SERVER: 5, Scenario.OFFLINE: 13,
    },
    Task.OBJECT_DETECTION_HEAVY: {
        Scenario.SINGLE_STREAM: 4, Scenario.MULTI_STREAM: 4,
        Scenario.SERVER: 7, Scenario.OFFLINE: 12,
    },
}

#: Figure 5 of the paper: closed-division results per model.
FIGURE_5 = {
    Task.IMAGE_CLASSIFICATION_HEAVY: 54,
    Task.IMAGE_CLASSIFICATION_LIGHT: 37,
    Task.OBJECT_DETECTION_LIGHT: 29,
    Task.OBJECT_DETECTION_HEAVY: 27,
    Task.MACHINE_TRANSLATION: 19,
}

#: Table VII of the paper: framework -> processor types.
TABLE_VII = {
    "ArmNN": frozenset({ProcessorType.CPU, ProcessorType.GPU}),
    "FuriosaAI": frozenset({ProcessorType.FPGA}),
    "Hailo SDK": frozenset({ProcessorType.ASIC}),
    "HanGuang AI": frozenset({ProcessorType.ASIC}),
    "ONNX": frozenset({ProcessorType.CPU}),
    "OpenVINO": frozenset({ProcessorType.CPU}),
    "PyTorch": frozenset({ProcessorType.CPU}),
    "SNPE": frozenset({ProcessorType.DSP}),
    "Synapse": frozenset({ProcessorType.ASIC}),
    "TensorFlow": frozenset({ProcessorType.ASIC, ProcessorType.CPU,
                             ProcessorType.GPU}),
    "TensorFlow Lite": frozenset({ProcessorType.CPU}),
    "TensorRT": frozenset({ProcessorType.GPU}),
}
