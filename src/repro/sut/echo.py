"""A trivial echo SUT: answers every sample with its own library index.

The smallest possible well-behaved backend.  It exists for plumbing
tests and examples - especially the network subsystem, where the point
is to measure the *wire*, so the backend behind it should contribute a
known, fixed service time and a payload whose correctness is checkable
at the far end (the echoed index).

Works under both clocks: with ``latency == 0`` completion is synchronous;
otherwise it is scheduled on the run loop, which realises the delay in
virtual or wall time as appropriate.

With ``concurrency=c`` the echo models ``c`` serving slots: a query
whose slots are all busy queues for the earliest one, so capacity is
exactly ``c / latency`` queries per second and latency grows without
bound past it - the monotone validity the fleet capacity sweep bisects
on (``repro sweep``).  The default (``None``) keeps the classic
infinite-capacity behavior.
"""

from __future__ import annotations

import heapq
from typing import List, Optional

from ..core.query import Query, QuerySampleResponse
from ..core.sut import SutBase


class EchoSUT(SutBase):
    """Complete each query after ``latency`` seconds, echoing indices."""

    def __init__(self, latency: float = 0.0, name: Optional[str] = None,
                 concurrency: Optional[int] = None) -> None:
        super().__init__(name or "echo")
        if latency < 0:
            raise ValueError(f"latency must be >= 0, got {latency}")
        if concurrency is not None and concurrency < 1:
            raise ValueError(
                f"concurrency must be >= 1, got {concurrency}")
        self.latency = latency
        self.concurrency = concurrency
        self.queries_served = 0
        #: Busy-until times of occupied slots (min-heap), concurrency mode.
        self._busy: List[float] = []

    def start_run(self, loop, responder) -> None:
        super().start_run(loop, responder)
        self._busy = []

    def issue_query(self, query: Query) -> None:
        responses = [
            QuerySampleResponse(sample.id, sample.index)
            for sample in query.samples
        ]
        self.queries_served += 1
        if self.concurrency is None:
            if self.latency == 0:
                self.complete(query, responses)
            else:
                self.loop.schedule_after(
                    self.latency, lambda: self.complete(query, responses)
                )
            return
        now = self.loop.now
        # Queue for the earliest slot: pop its free time and replace it
        # with this query's completion, so the heap always holds each
        # slot's next-free time.
        if len(self._busy) < self.concurrency:
            start = now
        else:
            start = max(now, heapq.heappop(self._busy))
        done = start + self.latency
        heapq.heappush(self._busy, done)
        if done <= now:
            self.complete(query, responses)
        else:
            self.loop.schedule_after(
                done - now, lambda: self.complete(query, responses)
            )
