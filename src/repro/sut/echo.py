"""A trivial echo SUT: answers every sample with its own library index.

The smallest possible well-behaved backend.  It exists for plumbing
tests and examples - especially the network subsystem, where the point
is to measure the *wire*, so the backend behind it should contribute a
known, fixed service time and a payload whose correctness is checkable
at the far end (the echoed index).

Works under both clocks: with ``latency == 0`` completion is synchronous;
otherwise it is scheduled on the run loop, which realises the delay in
virtual or wall time as appropriate.
"""

from __future__ import annotations

from typing import Optional

from ..core.query import Query, QuerySampleResponse
from ..core.sut import SutBase


class EchoSUT(SutBase):
    """Complete each query after ``latency`` seconds, echoing indices."""

    def __init__(self, latency: float = 0.0, name: Optional[str] = None) -> None:
        super().__init__(name or "echo")
        if latency < 0:
            raise ValueError(f"latency must be >= 0, got {latency}")
        self.latency = latency
        self.queries_served = 0

    def issue_query(self, query: Query) -> None:
        responses = [
            QuerySampleResponse(sample.id, sample.index)
            for sample in query.samples
        ]
        self.queries_served += 1
        if self.latency == 0:
            self.complete(query, responses)
        else:
            self.loop.schedule_after(
                self.latency, lambda: self.complete(query, responses)
            )
