"""Analytic inference-device models.

The paper's fleet of submissions spans CPUs, GPUs, DSPs, FPGAs, and
ASICs across four orders of magnitude of performance (Section VI-D).
Each simulated device is characterized by a handful of parameters with
direct architectural meaning:

* ``peak_gops`` - achievable arithmetic throughput at full utilization;
* ``base_utilization`` - the fraction of peak reached by a vanishingly
  small dispatch (driver/pipeline floor);
* ``saturation_gops`` - the amount of work (batch x GOPs/sample) in one
  dispatch needed to reach full utilization.  Utilization ramps with
  *work*, not sample count: a single 433-GOP SSD-ResNet-34 image fills a
  wide accelerator by itself, while MobileNet needs a large batch to do
  the same - which is why small models gain the most from batching;
* ``overhead`` - fixed per-dispatch cost (kernel launch, DMA, driver);
* ``structure_efficiency`` - how well the device's dataflow fits a
  model's *structure*, independent of raw operation count.  Section
  VII-D observes that SSD-ResNet-34 costs 175x the operations of
  SSD-MobileNet-v1 but only runs 50-60x slower: big dense convolutions
  utilize hardware far better than depthwise/pointwise mixtures.  The
  per-(device, motif) efficiency table expresses exactly that.

``service_time`` composes these into the latency of one batched
dispatch; everything downstream (scenario behaviour, Figs 6 and 8) is
emergent.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Dict


class ProcessorType(enum.Enum):
    CPU = "CPU"
    GPU = "GPU"
    DSP = "DSP"
    FPGA = "FPGA"
    ASIC = "ASIC"


class ComputeMotif(enum.Enum):
    """Workload structure classes with distinct utilization behaviour."""

    DENSE_CNN = "dense_cnn"          # ResNet-style: big GEMMs
    DEPTHWISE_CNN = "depthwise_cnn"  # MobileNet-style: thin layers
    RNN = "rnn"                      # GNMT-style: sequential, small GEMMs


@dataclass(frozen=True)
class DeviceModel:
    """Analytic latency model of one inference device."""

    name: str
    processor: ProcessorType
    peak_gops: float
    base_utilization: float = 0.5
    saturation_gops: float = 8.0
    overhead: float = 1e-3
    max_batch: int = 128
    engines: int = 1
    #: Per-motif structural efficiency in (0, 1].
    structure_efficiency: Dict[ComputeMotif, float] = field(
        default_factory=dict
    )
    #: Power draw while idle and at full utilization (whole device).
    #: The paper's fleet spans "three orders of magnitude in power
    #: consumption"; defaults model a small accelerator.
    idle_watts: float = 1.0
    peak_watts: float = 10.0
    #: DVFS/thermal behaviour: a cold device runs ``cold_boost`` x its
    #: equilibrium speed and decays toward 1.0 with time constant
    #: ``thermal_time_constant`` seconds.  This is exactly why Section
    #: III-D mandates >= 60-second runs: "the minimum run time ensures
    #: we measure the equilibrium behavior of power-management systems
    #: and systems that support dynamic voltage and frequency scaling".
    cold_boost: float = 1.0
    thermal_time_constant: float = 20.0

    def __post_init__(self) -> None:
        if self.peak_gops <= 0:
            raise ValueError(f"{self.name}: peak_gops must be positive")
        if not 0.0 < self.base_utilization <= 1.0:
            raise ValueError(
                f"{self.name}: base_utilization must be in (0, 1]"
            )
        if self.saturation_gops <= 0:
            raise ValueError(f"{self.name}: saturation_gops must be positive")
        if self.overhead < 0:
            raise ValueError(f"{self.name}: overhead must be >= 0")
        if self.max_batch < 1:
            raise ValueError(f"{self.name}: max_batch must be >= 1")
        if self.engines < 1:
            raise ValueError(f"{self.name}: engines must be >= 1")
        for motif, value in self.structure_efficiency.items():
            if not 0.0 < value <= 1.0:
                raise ValueError(
                    f"{self.name}: efficiency for {motif} must be in (0, 1]"
                )
        if self.idle_watts < 0:
            raise ValueError(f"{self.name}: idle_watts must be >= 0")
        if self.peak_watts < self.idle_watts:
            raise ValueError(
                f"{self.name}: peak_watts must be >= idle_watts"
            )
        if self.cold_boost < 1.0:
            raise ValueError(f"{self.name}: cold_boost must be >= 1.0")
        if self.thermal_time_constant <= 0:
            raise ValueError(
                f"{self.name}: thermal_time_constant must be positive"
            )

    def utilization(self, work_gops: float) -> float:
        """Fraction of peak throughput for a dispatch of ``work_gops``."""
        if work_gops <= 0:
            raise ValueError(f"work_gops must be positive, got {work_gops}")
        ramp = min(work_gops, self.saturation_gops) / self.saturation_gops
        return self.base_utilization + (1.0 - self.base_utilization) * ramp

    def motif_efficiency(self, motif: ComputeMotif) -> float:
        return self.structure_efficiency.get(motif, 1.0)

    def service_time(self, gops_per_sample: float, batch: int,
                     motif: ComputeMotif = ComputeMotif.DENSE_CNN) -> float:
        """Seconds to process one dispatch of ``batch`` samples."""
        if gops_per_sample <= 0:
            raise ValueError(
                f"gops_per_sample must be positive, got {gops_per_sample}"
            )
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        work = batch * gops_per_sample
        effective = (
            self.peak_gops
            * self.utilization(work)
            * self.motif_efficiency(motif)
        )
        return self.overhead + work / effective

    def throughput_at_batch(self, gops_per_sample: float, batch: int,
                            motif: ComputeMotif = ComputeMotif.DENSE_CNN
                            ) -> float:
        """Samples/second of one engine streaming dispatches of ``batch``."""
        return batch / self.service_time(gops_per_sample, batch, motif)

    def best_offline_throughput(self, gops_per_sample: float,
                                motif: ComputeMotif = ComputeMotif.DENSE_CNN
                                ) -> float:
        """Throughput with the best allowed batch, over all engines."""
        best = max(
            self.throughput_at_batch(gops_per_sample, b, motif)
            for b in _batch_candidates(self.max_batch)
        )
        return best * self.engines

    # -- DVFS / thermal behaviour -----------------------------------------------

    def speed_multiplier(self, elapsed_seconds: float) -> float:
        """Instantaneous speed relative to equilibrium at run time ``t``.

        Starts at ``cold_boost`` and decays exponentially to 1.0; the
        published metrics are defined at equilibrium, which is what a
        >= 60 s run measures.
        """
        if elapsed_seconds < 0:
            raise ValueError("elapsed_seconds must be >= 0")
        if self.cold_boost == 1.0:
            return 1.0
        decay = math.exp(-elapsed_seconds / self.thermal_time_constant)
        return 1.0 + (self.cold_boost - 1.0) * decay

    # -- power/energy ----------------------------------------------------------

    def power_at(self, work_gops: float) -> float:
        """Instantaneous draw (W) while running a dispatch of that size."""
        return self.idle_watts + (
            (self.peak_watts - self.idle_watts) * self.utilization(work_gops)
        )

    def dispatch_energy(self, gops_per_sample: float, batch: int,
                        motif: ComputeMotif = ComputeMotif.DENSE_CNN
                        ) -> float:
        """Joules consumed by one dispatch (active power x duration)."""
        duration = self.service_time(gops_per_sample, batch, motif)
        return duration * self.power_at(batch * gops_per_sample)

    def energy_per_sample(self, gops_per_sample: float, batch: int,
                          motif: ComputeMotif = ComputeMotif.DENSE_CNN
                          ) -> float:
        """Joules per inference at the given batch size."""
        return self.dispatch_energy(gops_per_sample, batch, motif) / batch


def _batch_candidates(max_batch: int):
    batch = 1
    while batch < max_batch:
        yield batch
        batch *= 2
    yield max_batch
