"""System-under-test implementations: device models, simulators, backends."""

from .backend import (
    ClassifierSUT,
    DetectorSUT,
    PreprocessingModel,
    TranslatorSUT,
)
from .calibration import FitResult, fit_device_model
from .device import ComputeMotif, DeviceModel, ProcessorType
from .echo import EchoSUT
from .fleet import (
    FIGURE_5,
    TABLE_VI,
    TABLE_VII,
    FleetSystem,
    build_fleet,
    framework_matrix,
    planned_matrix,
    task_workload,
)
from .simulated import SimulatedSUT, WorkloadProfile

__all__ = [
    "ClassifierSUT",
    "ComputeMotif",
    "DetectorSUT",
    "DeviceModel",
    "EchoSUT",
    "FitResult",
    "PreprocessingModel",
    "FIGURE_5",
    "FleetSystem",
    "ProcessorType",
    "SimulatedSUT",
    "TABLE_VI",
    "TABLE_VII",
    "TranslatorSUT",
    "WorkloadProfile",
    "build_fleet",
    "fit_device_model",
    "framework_matrix",
    "planned_matrix",
    "task_workload",
]
