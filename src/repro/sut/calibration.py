"""Fit a :class:`DeviceModel` to measured latencies.

The simulated fleet's devices are hand-authored; this module closes the
loop for users with real hardware: given measured ``(batch_size,
latency_seconds)`` points for a model of known cost, recover the
analytic device parameters (peak throughput, utilization floor,
saturation work, dispatch overhead) by least squares on log-latency.
The fitted device then plugs into every harness in this package -
capacity search, fleet sweeps, multitenancy - turning one latency sweep
on a bench into full scenario predictions.

The solver is a deliberately dependency-free coordinate descent over a
log-space grid; the model has only four parameters and the loss surface
is benign.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .device import ComputeMotif, DeviceModel, ProcessorType

#: One observation: (batch size, measured seconds per dispatch).
Measurement = Tuple[int, float]


@dataclass(frozen=True)
class FitResult:
    """Outcome of a device-model fit."""

    device: DeviceModel
    #: RMS relative latency error over the measurements.
    rms_relative_error: float
    measurements: Tuple[Measurement, ...]

    def predicted(self, gops_per_sample: float,
                  motif: ComputeMotif = ComputeMotif.DENSE_CNN
                  ) -> List[Tuple[int, float]]:
        return [
            (batch, self.device.service_time(gops_per_sample, batch, motif))
            for batch, _ in self.measurements
        ]


def _loss(params, measurements, gops) -> float:
    peak, base, sat, overhead = params
    total = 0.0
    for batch, latency in measurements:
        work = batch * gops
        ramp = min(work, sat) / sat
        utilization = base + (1.0 - base) * ramp
        predicted = overhead + work / (peak * utilization)
        total += (math.log(predicted) - math.log(latency)) ** 2
    return total / len(measurements)


def fit_device_model(
    measurements: Sequence[Measurement],
    gops_per_sample: float,
    name: str = "fitted-device",
    processor: ProcessorType = ProcessorType.ASIC,
    max_batch: Optional[int] = None,
    iterations: int = 60,
) -> FitResult:
    """Fit the four-parameter device model to the measurements."""
    measurements = tuple(
        (int(batch), float(latency)) for batch, latency in measurements
    )
    if len(measurements) < 3:
        raise ValueError(
            f"need at least 3 (batch, latency) points, got {len(measurements)}"
        )
    if any(batch < 1 or latency <= 0 for batch, latency in measurements):
        raise ValueError("batches must be >= 1 and latencies positive")
    if gops_per_sample <= 0:
        raise ValueError("gops_per_sample must be positive")

    biggest_batch, biggest_latency = max(measurements)
    _, smallest_latency = min(measurements)

    # Initial guesses from the asymptotes: at large batches the device is
    # saturated, so peak ~ work / latency; overhead is under the
    # smallest latency.
    peak = biggest_batch * gops_per_sample / biggest_latency
    params = [peak, 0.3, gops_per_sample * 4.0, smallest_latency * 0.2]
    bounds = [
        (peak * 0.05, peak * 20.0),
        (0.01, 1.0),
        (gops_per_sample * 0.05, gops_per_sample * biggest_batch * 10.0),
        (1e-7, smallest_latency),
    ]

    best = _loss(params, measurements, gops_per_sample)
    step = 2.0
    for _round in range(iterations):
        improved = False
        for index in range(4):
            for factor in (step, 1.0 / step):
                candidate = list(params)
                candidate[index] = min(
                    max(candidate[index] * factor, bounds[index][0]),
                    bounds[index][1])
                loss = _loss(candidate, measurements, gops_per_sample)
                if loss < best:
                    best = loss
                    params = candidate
                    improved = True
        if not improved:
            step = math.sqrt(step)
            if step < 1.0005:
                break

    peak, base, sat, overhead = params
    device = DeviceModel(
        name=name, processor=processor, peak_gops=peak,
        base_utilization=min(base, 1.0), saturation_gops=sat,
        overhead=overhead,
        max_batch=max_batch if max_batch is not None else biggest_batch,
    )
    rms = math.sqrt(sum(
        (device.service_time(gops_per_sample, b) / l - 1.0) ** 2
        for b, l in measurements
    ) / len(measurements))
    return FitResult(device=device, rms_relative_error=rms,
                     measurements=measurements)
