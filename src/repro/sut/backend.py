"""SUTs that execute the runnable numpy models.

These backends drive real forward passes (template classifier, SSD
detector, cipher translator) under the LoadGen.  Timing policy: the
backend measures the wall-clock duration of each dispatch and replays it
as the virtual-time service time, so a run's latency statistics reflect
the actual numpy execution while the surrounding scenario machinery
stays deterministic-fast.  A ``service_time_fn`` override substitutes a
deterministic latency model - used by tests that must not depend on
host speed.

Preprocessing is untimed in MLPerf v0.5 (Section IV-A: "we explicitly
allow untimed preprocessing"), but the paper lists "timing
preprocessing" among the planned metric improvements; the optional
:class:`PreprocessingModel` implements both policies so the ablation in
``benchmarks/test_ext_timed_preprocessing.py`` can quantify the
difference.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from ..core.query import Query, QuerySampleResponse
from ..core.sut import SutBase
from ..datasets.qsl import DatasetQSL
from ..models.runtime.classifier import GlyphClassifier
from ..models.runtime.detector import GlyphDetector
from ..models.runtime.translator import CipherTranslator

#: Maps a batch size to a deterministic service time in seconds.
ServiceTimeFn = Callable[[int], float]


@dataclass(frozen=True)
class PreprocessingModel:
    """Input-preparation cost (resize, layout conversion, tokenization).

    ``timed=False`` is the v0.5 rule: preprocessing happens but never
    counts toward latency.  ``timed=True`` is the paper's proposed
    whole-pipeline metric.
    """

    seconds_per_sample: float
    timed: bool = False

    def __post_init__(self) -> None:
        if self.seconds_per_sample < 0:
            raise ValueError("seconds_per_sample must be >= 0")


class _ModelSUT(SutBase):
    """Shared machinery: fetch samples, predict, time, complete."""

    def __init__(self, qsl: DatasetQSL, name: str,
                 service_time_fn: Optional[ServiceTimeFn] = None,
                 preprocessing: Optional[PreprocessingModel] = None) -> None:
        super().__init__(name)
        self.qsl = qsl
        self.service_time_fn = service_time_fn
        self.preprocessing = preprocessing
        #: Wall-clock seconds spent inside model execution.
        self.compute_seconds = 0.0
        #: Modeled preprocessing seconds, split by timing policy.
        self.timed_preprocess_seconds = 0.0
        self.untimed_preprocess_seconds = 0.0

    def _predict(self, samples: List[object]) -> List[object]:
        raise NotImplementedError

    def _preprocess_duration(self, sample_count: int) -> float:
        if self.preprocessing is None:
            return 0.0
        cost = self.preprocessing.seconds_per_sample * sample_count
        if self.preprocessing.timed:
            self.timed_preprocess_seconds += cost
            return cost
        self.untimed_preprocess_seconds += cost
        return 0.0

    def issue_query(self, query: Query) -> None:
        samples = [self.qsl.get_sample(s.index) for s in query.samples]
        started = time.perf_counter()
        outputs = self._predict(samples)
        elapsed = time.perf_counter() - started
        self.compute_seconds += elapsed
        if self.service_time_fn is not None:
            duration = self.service_time_fn(query.sample_count)
        else:
            duration = elapsed
        duration += self._preprocess_duration(query.sample_count)
        if len(outputs) != len(query.samples):
            # A backend that mis-sizes its output batch is a recorded
            # query failure (the run goes INVALID), not an exception
            # that kills the event loop.
            reason = (
                f"{self.name} produced {len(outputs)} outputs for "
                f"{len(query.samples)} samples"
            )
            self.loop.schedule_after(
                duration, lambda: self.fail(query, reason)
            )
            return
        responses = [
            QuerySampleResponse(sample.id, output)
            for sample, output in zip(query.samples, outputs)
        ]
        self.loop.schedule_after(
            duration, lambda: self.complete(query, responses)
        )


class ClassifierSUT(_ModelSUT):
    """Runs a :class:`GlyphClassifier`; responses are label ints."""

    def __init__(self, model: GlyphClassifier, qsl: DatasetQSL,
                 service_time_fn: Optional[ServiceTimeFn] = None,
                 batch_size: int = 64,
                 preprocessing: Optional[PreprocessingModel] = None) -> None:
        super().__init__(qsl, f"{model.name}-sut", service_time_fn,
                         preprocessing)
        self.model = model
        self.batch_size = batch_size

    def _predict(self, samples: List[object]) -> List[object]:
        outputs: List[int] = []
        for start in range(0, len(samples), self.batch_size):
            batch = np.stack(samples[start:start + self.batch_size])
            outputs.extend(int(p) for p in self.model.predict(batch))
        return outputs


class DetectorSUT(_ModelSUT):
    """Runs a :class:`GlyphDetector`; responses are Detection lists."""

    def __init__(self, model: GlyphDetector, qsl: DatasetQSL,
                 service_time_fn: Optional[ServiceTimeFn] = None,
                 batch_size: int = 16,
                 preprocessing: Optional[PreprocessingModel] = None) -> None:
        super().__init__(qsl, f"{model.name}-sut", service_time_fn,
                         preprocessing)
        self.model = model
        self.batch_size = batch_size

    def _predict(self, samples: List[object]) -> List[object]:
        outputs: List[object] = []
        for start in range(0, len(samples), self.batch_size):
            batch = np.stack(samples[start:start + self.batch_size])
            outputs.extend(self.model.predict(batch))
        return outputs


class TranslatorSUT(_ModelSUT):
    """Runs a :class:`CipherTranslator`; responses are token-id lists."""

    def __init__(self, model: CipherTranslator, qsl: DatasetQSL,
                 service_time_fn: Optional[ServiceTimeFn] = None,
                 preprocessing: Optional[PreprocessingModel] = None) -> None:
        super().__init__(qsl, f"{model.name}-sut", service_time_fn,
                         preprocessing)
        self.model = model

    def _predict(self, samples: List[object]) -> List[object]:
        return [self.model.translate(source) for source in samples]
