"""SyntheticWmt: the offline stand-in for WMT16 EN-DE.

The synthetic "language pair" is a token-substitution cipher with word
reordering: the target sentence is the source sentence mapped token-wise
through a fixed bijection and written in reverse order.  Reversal makes
the alignment non-monotonic, so a translator must attend to the right
source position - the same property that motivated attention in GNMT.

A fraction of target tokens is replaced by a "synonym" (a second valid
mapping) during generation.  A deterministic model cannot predict which
synonym a reference uses, so even the FP32 reference model's corpus BLEU
sits below 100 - leaving the quantization experiments real headroom,
just as real translation models never reach the reference BLEU ceiling.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from .base import Dataset

#: Special token ids.
PAD_ID = 0
BOS_ID = 1
EOS_ID = 2
FIRST_WORD_ID = 3


class SyntheticWmt(Dataset):
    """Cipher-translation data set of ``(source, reference)`` pairs."""

    def __init__(
        self,
        size: int = 1_000,
        vocab_size: int = 64,
        min_length: int = 4,
        max_length: int = 12,
        synonym_rate: float = 0.1,
        calibration_count: int = 32,
        seed: int = 2016,
    ) -> None:
        if vocab_size <= FIRST_WORD_ID + 1:
            raise ValueError(f"vocab_size too small: {vocab_size}")
        if not 1 <= min_length <= max_length:
            raise ValueError("need 1 <= min_length <= max_length")
        self.name = "synthetic-wmt"
        self._size = size
        self.vocab_size = vocab_size
        self.min_length = min_length
        self.max_length = max_length
        self.synonym_rate = synonym_rate
        self.calibration_count = calibration_count
        self._seed = seed

        rng = np.random.default_rng(seed)
        word_ids = np.arange(FIRST_WORD_ID, vocab_size)
        # The primary cipher: a fixed bijection over the word ids.
        shuffled = word_ids.copy()
        rng.shuffle(shuffled)
        self.cipher = dict(zip(word_ids.tolist(), shuffled.tolist()))
        # Each word also has one synonym (another word's primary image),
        # used stochastically in the references.
        rolled = np.roll(shuffled, 1)
        self.synonyms = dict(zip(word_ids.tolist(), rolled.tolist()))

    def __len__(self) -> int:
        return self._size

    @property
    def num_words(self) -> int:
        return self.vocab_size - FIRST_WORD_ID

    def _rng_for(self, index: int) -> np.random.Generator:
        return np.random.default_rng(
            np.random.SeedSequence((self._seed, index))
        )

    def _generate(self, index: int) -> Tuple[List[int], List[int]]:
        rng = self._rng_for(index)
        length = int(rng.integers(self.min_length, self.max_length + 1))
        source = rng.integers(
            FIRST_WORD_ID, self.vocab_size, size=length
        ).tolist()
        target = []
        for token in reversed(source):
            if rng.random() < self.synonym_rate:
                target.append(self.synonyms[token])
            else:
                target.append(self.cipher[token])
        return [int(t) for t in source], [int(t) for t in target]

    def get_sample(self, index: int) -> List[int]:
        """The source sentence (list of token ids, no specials)."""
        self._check_index(index)
        source, _target = self._generate(index)
        return source

    def get_label(self, index: int) -> List[int]:
        """The reference translation (list of token ids)."""
        self._check_index(index)
        _source, target = self._generate(index)
        return target

    def ideal_translation(self, source: List[int]) -> List[int]:
        """The noiseless cipher output (what a perfect model produces)."""
        return [self.cipher[token] for token in reversed(source)]
