"""SyntheticImageNet: the offline stand-in for ImageNet 2012.

Each sample is a single-channel image containing exactly one class
glyph at a random position over additive background noise; the label is
the glyph's class.  Difficulty is controlled by the noise level, so the
runnable classifiers achieve high-but-imperfect Top-1 accuracy - enough
headroom for quantization experiments to show measurable degradation,
as in the paper's Section III-B.

Samples are generated lazily and deterministically from ``(seed,
index)``, so a 50,000-image data set costs no memory until touched, and
any index is reproducible in isolation.
"""

from __future__ import annotations


import numpy as np

from .base import Dataset
from .glyphs import make_glyph_bank, place_glyph


class SyntheticImageNet(Dataset):
    """Single-label glyph classification data set."""

    def __init__(
        self,
        size: int = 2_000,
        image_size: int = 32,
        num_classes: int = 16,
        glyph_size: int = 8,
        noise_level: float = 0.35,
        calibration_count: int = 64,
        seed: int = 2012,
    ) -> None:
        if size < 1:
            raise ValueError(f"size must be >= 1, got {size}")
        if glyph_size >= image_size:
            raise ValueError("glyph must be smaller than the image")
        self.name = "synthetic-imagenet"
        self._size = size
        self.image_size = image_size
        self.num_classes = num_classes
        self.glyph_size = glyph_size
        self.noise_level = noise_level
        self.calibration_count = calibration_count
        self._seed = seed
        self.glyphs = make_glyph_bank(num_classes, glyph_size, seed)

    def __len__(self) -> int:
        return self._size

    def _rng_for(self, index: int) -> np.random.Generator:
        return np.random.default_rng(
            np.random.SeedSequence((self._seed, index))
        )

    def get_label(self, index: int) -> int:
        self._check_index(index)
        rng = self._rng_for(index)
        return int(rng.integers(0, self.num_classes))

    def get_sample(self, index: int) -> np.ndarray:
        """Return an ``(image_size, image_size, 1)`` float32 image."""
        self._check_index(index)
        rng = self._rng_for(index)
        label = int(rng.integers(0, self.num_classes))
        image = rng.normal(
            0.0, self.noise_level, size=(self.image_size, self.image_size)
        ).astype(np.float32)
        limit = self.image_size - self.glyph_size
        top = int(rng.integers(0, limit + 1))
        left = int(rng.integers(0, limit + 1))
        place_glyph(image, self.glyphs[label], top, left)
        return image[:, :, None]
