"""Procedural glyph alphabet shared by the synthetic vision data sets.

Each class is a fixed binary "glyph" pattern.  Classifier images contain
one glyph; detection images contain several at known boxes.  The same
glyph bank also parameterizes the runnable reference models: their first
convolution's filters are the (normalized, zero-mean) glyph templates,
so the models genuinely solve the task by template matching rather than
by consulting an oracle.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def make_glyph_bank(num_classes: int, size: int, seed: int,
                    block: int = 2) -> np.ndarray:
    """Return ``(num_classes, size, size)`` binary glyphs.

    Glyphs are random half-dense bit patterns drawn at ``size // block``
    resolution and upsampled by ``block`` - the block structure gives
    them spatial smoothness, so correlation survives small shifts and
    2x downsampling (which the "light" reference models rely on).
    Candidates are regenerated until every pair differs in at least 40%
    of the pixels, keeping cross-class correlation low.
    """
    if num_classes < 2:
        raise ValueError(f"need at least 2 classes, got {num_classes}")
    if size < 3:
        raise ValueError(f"glyph size must be >= 3, got {size}")
    base = max(2, size // block)
    rng = np.random.default_rng(seed)
    min_distance = int(0.4 * size * size)
    glyphs: list = []
    attempts = 0
    while len(glyphs) < num_classes:
        attempts += 1
        if attempts > 10_000:
            raise RuntimeError(
                f"could not find {num_classes} well-separated {size}x{size} glyphs"
            )
        coarse = (rng.random((base, base)) < 0.5).astype(np.float32)
        candidate = resize_glyphs(coarse[None], size)[0]
        if all(
            int(np.sum(candidate != existing)) >= min_distance
            for existing in glyphs
        ):
            glyphs.append(candidate)
    return np.stack(glyphs)


def glyph_templates(glyphs: np.ndarray) -> np.ndarray:
    """Zero-mean, unit-norm matched filters for a glyph bank.

    Shape ``(size, size, 1, num_classes)`` - directly usable as Conv2D
    weights in the runnable models.
    """
    centered = glyphs - glyphs.mean(axis=(1, 2), keepdims=True)
    norms = np.sqrt((centered ** 2).sum(axis=(1, 2), keepdims=True))
    normalized = centered / np.maximum(norms, 1e-9)
    # (C, H, W) -> (H, W, 1, C)
    return normalized.transpose(1, 2, 0)[:, :, None, :].astype(np.float32)


def resize_glyphs(glyphs: np.ndarray, new_size: int) -> np.ndarray:
    """Nearest-neighbour resize of a glyph bank to ``new_size``."""
    num, size, _ = glyphs.shape
    idx = np.minimum((np.arange(new_size) * size) // new_size, size - 1)
    return glyphs[:, idx][:, :, idx]


def place_glyph(image: np.ndarray, glyph: np.ndarray, top: int, left: int,
                intensity: float = 1.0) -> Tuple[int, int, int, int]:
    """Draw ``glyph`` onto ``image`` (H, W) at ``(top, left)``.

    Returns the bounding box ``(y1, x1, y2, x2)``.  The caller must
    ensure the glyph fits.
    """
    gh, gw = glyph.shape
    h, w = image.shape
    if top < 0 or left < 0 or top + gh > h or left + gw > w:
        raise ValueError(
            f"glyph {gh}x{gw} at ({top}, {left}) does not fit in {h}x{w}"
        )
    image[top:top + gh, left:left + gw] = np.maximum(
        image[top:top + gh, left:left + gw], glyph * intensity
    )
    return (top, left, top + gh, left + gw)
