"""SyntheticCoco: the offline stand-in for the COCO detection set.

Each image contains one to ``max_objects`` glyph objects at two scales,
placed without excessive overlap; ground truth is a list of bounding
boxes with class ids (1-based; 0 is background, COCO-style).  The mAP
metric, anchor matching, and NMS all operate on these real boxes.

Two configurations mirror the paper's two detection benchmarks: the
"small" 300x300-proxy images for SSD-MobileNet and the upscaled
1200x1200-proxy images for SSD-ResNet-34 (Section VII-C explains why the
paper itself had to upscale COCO for the large-input use case).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from .base import Dataset
from .glyphs import make_glyph_bank, place_glyph, resize_glyphs


@dataclass(frozen=True)
class GroundTruthObject:
    """One annotated object: ``box`` is ``(y1, x1, y2, x2)`` in pixels."""

    box: Tuple[float, float, float, float]
    class_id: int


class SyntheticCoco(Dataset):
    """Multi-object glyph detection data set."""

    def __init__(
        self,
        size: int = 1_000,
        image_size: int = 48,
        num_classes: int = 8,
        glyph_size: int = 8,
        large_scale: float = 1.5,
        max_objects: int = 4,
        noise_level: float = 0.25,
        calibration_count: int = 32,
        seed: int = 2014,
    ) -> None:
        if glyph_size * large_scale >= image_size:
            raise ValueError("large glyphs must fit inside the image")
        self.name = "synthetic-coco"
        self._size = size
        self.image_size = image_size
        self.num_classes = num_classes
        self.glyph_size = glyph_size
        self.large_glyph_size = int(round(glyph_size * large_scale))
        self.max_objects = max_objects
        self.noise_level = noise_level
        self.calibration_count = calibration_count
        self._seed = seed
        self.glyphs = make_glyph_bank(num_classes, glyph_size, seed)
        self.large_glyphs = resize_glyphs(self.glyphs, self.large_glyph_size)

    def __len__(self) -> int:
        return self._size

    @property
    def object_scales(self) -> Tuple[int, int]:
        """The two object sizes appearing in images (anchor design input)."""
        return (self.glyph_size, self.large_glyph_size)

    def _rng_for(self, index: int) -> np.random.Generator:
        return np.random.default_rng(
            np.random.SeedSequence((self._seed, index))
        )

    def _generate(self, index: int) -> Tuple[np.ndarray, List[GroundTruthObject]]:
        rng = self._rng_for(index)
        image = rng.normal(
            0.0, self.noise_level, size=(self.image_size, self.image_size)
        ).astype(np.float32)
        count = int(rng.integers(1, self.max_objects + 1))
        objects: List[GroundTruthObject] = []
        placed_boxes: List[Tuple[int, int, int, int]] = []
        for _ in range(count):
            class_index = int(rng.integers(0, self.num_classes))
            use_large = bool(rng.random() < 0.4)
            glyph = (self.large_glyphs if use_large else self.glyphs)[class_index]
            gsize = glyph.shape[0]
            limit = self.image_size - gsize
            # A few placement attempts to avoid heavy overlap; objects
            # that cannot be placed are simply dropped.
            for _attempt in range(8):
                top = int(rng.integers(0, limit + 1))
                left = int(rng.integers(0, limit + 1))
                box = (top, left, top + gsize, left + gsize)
                if all(_overlap_fraction(box, other) < 0.25
                       for other in placed_boxes):
                    place_glyph(image, glyph, top, left)
                    placed_boxes.append(box)
                    objects.append(GroundTruthObject(
                        box=tuple(float(v) for v in box),
                        class_id=class_index + 1,   # 0 is background
                    ))
                    break
        if not objects:
            # Guarantee at least one object per image.
            glyph = self.glyphs[0]
            box = place_glyph(image, glyph, 0, 0)
            objects.append(GroundTruthObject(
                box=tuple(float(v) for v in box), class_id=1,
            ))
        return image[:, :, None], objects

    def get_sample(self, index: int) -> np.ndarray:
        self._check_index(index)
        image, _objects = self._generate(index)
        return image

    def get_label(self, index: int) -> List[GroundTruthObject]:
        self._check_index(index)
        _image, objects = self._generate(index)
        return objects


def _overlap_fraction(a, b) -> float:
    """Intersection area over the smaller box's area."""
    y1 = max(a[0], b[0])
    x1 = max(a[1], b[1])
    y2 = min(a[2], b[2])
    x2 = min(a[3], b[3])
    inter = max(y2 - y1, 0) * max(x2 - x1, 0)
    area_a = (a[2] - a[0]) * (a[3] - a[1])
    area_b = (b[2] - b[0]) * (b[3] - b[1])
    smaller = min(area_a, area_b)
    return inter / smaller if smaller > 0 else 0.0
