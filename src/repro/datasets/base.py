"""Data set base types (paper Section IV-C).

MLPerf fixes the data set, the LoadGen, and the accuracy script; the
synthetic data sets here stand in for ImageNet/COCO/WMT16 (which cannot
be redistributed or downloaded offline) while preserving the same shape:
indexed samples, ground-truth labels, a held-out *calibration* split
that quantized submissions may use to choose ranges (and nothing else),
and a ``performance_sample_count`` that bounds how many samples the
LoadGen keeps resident during a performance run.
"""

from __future__ import annotations

from typing import List


class Dataset:
    """Abstract indexed data set with labels and a calibration split."""

    name: str = "dataset"

    def __len__(self) -> int:
        raise NotImplementedError

    def get_sample(self, index: int) -> object:
        """The preprocessed model input for ``index``."""
        raise NotImplementedError

    def get_label(self, index: int) -> object:
        """Ground truth for ``index`` (class id, boxes, token ids...)."""
        raise NotImplementedError

    @property
    def calibration_indices(self) -> List[int]:
        """Indices reserved for quantization calibration.

        Mirrors MLPerf's small fixed calibration set: these samples may
        guide quantization but are excluded from accuracy evaluation.
        """
        count = min(getattr(self, "calibration_count", 0), len(self))
        return list(range(count))

    @property
    def evaluation_indices(self) -> List[int]:
        """Indices used for accuracy evaluation (the non-calibration rest)."""
        return list(range(len(self.calibration_indices), len(self)))

    @property
    def performance_sample_count(self) -> int:
        """How many samples fit in memory for performance mode."""
        return min(1024, len(self))

    def _check_index(self, index: int) -> None:
        if not 0 <= index < len(self):
            raise IndexError(
                f"{self.name}: index {index} out of range [0, {len(self)})"
            )
