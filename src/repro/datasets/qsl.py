"""QuerySampleLibrary adapter over a :class:`~repro.datasets.base.Dataset`.

The QSL enforces the Fig. 3 contract: samples must be loaded (untimed)
before the LoadGen may reference them in queries, and are unloaded at
the end of the run.  Violations raise immediately, which the integration
tests use to prove the LoadGen honours the protocol.
"""

from __future__ import annotations

from typing import List, Sequence, Set

from .base import Dataset


class DatasetQSL:
    """Strict QuerySampleLibrary over a data set."""

    def __init__(self, dataset: Dataset,
                 performance_sample_count: int = None) -> None:
        self.dataset = dataset
        self._loaded: Set[int] = set()
        self._performance_sample_count = (
            performance_sample_count
            if performance_sample_count is not None
            else dataset.performance_sample_count
        )
        #: Load/unload call trace, for the message-flow integration test.
        self.events: List[str] = []

    @property
    def name(self) -> str:
        return self.dataset.name

    @property
    def total_sample_count(self) -> int:
        return len(self.dataset)

    @property
    def performance_sample_count(self) -> int:
        return self._performance_sample_count

    @property
    def loaded_count(self) -> int:
        return len(self._loaded)

    def load_samples(self, indices: Sequence[int]) -> None:
        for index in indices:
            self.dataset._check_index(index)
        self._loaded.update(int(i) for i in indices)
        self.events.append(f"load:{len(indices)}")

    def unload_samples(self, indices: Sequence[int]) -> None:
        for index in indices:
            self._loaded.discard(int(index))
        self.events.append(f"unload:{len(indices)}")

    def get_sample(self, index: int) -> object:
        if index not in self._loaded:
            raise RuntimeError(
                f"sample {index} referenced before load_samples "
                "(LoadGen/SUT protocol violation)"
            )
        return self.dataset.get_sample(index)

    def get_label(self, index: int) -> object:
        """Ground truth passthrough (used by the accuracy script only)."""
        return self.dataset.get_label(index)
