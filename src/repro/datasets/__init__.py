"""Synthetic data sets standing in for ImageNet, COCO, and WMT16."""

from .base import Dataset
from .coco import GroundTruthObject, SyntheticCoco
from .imagenet import SyntheticImageNet
from .qsl import DatasetQSL
from .wmt import BOS_ID, EOS_ID, FIRST_WORD_ID, PAD_ID, SyntheticWmt

__all__ = [
    "BOS_ID",
    "Dataset",
    "DatasetQSL",
    "EOS_ID",
    "FIRST_WORD_ID",
    "GroundTruthObject",
    "PAD_ID",
    "SyntheticCoco",
    "SyntheticImageNet",
    "SyntheticWmt",
]
