"""The accuracy script (paper Fig. 3 step 7, Section IV-D).

After an accuracy-mode run, the LoadGen's logged responses are checked
against the data set's ground truth and the task's quality target.  The
checker is deliberately independent of the SUT and of the LoadGen
internals - it consumes only the query log and the data set, mirroring
how the real accuracy scripts parse ``mlperf_log_accuracy.json``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..core.loadgen import LoadGenResult
from ..datasets.base import Dataset
from ..models.nms import Detection
from .bleu import corpus_bleu
from .map import mean_average_precision
from .topk import top1_accuracy


@dataclass(frozen=True)
class AccuracyReport:
    """Outcome of the accuracy check for one run."""

    metric_name: str
    value: float
    target: float
    passed: bool
    sample_count: int

    def summary(self) -> str:
        verdict = "PASSED" if self.passed else "FAILED"
        return (
            f"{self.metric_name}: {self.value:.4g} "
            f"(target {self.target:.4g}) -> {verdict} "
            f"[{self.sample_count} samples]"
        )


def _gather(result: LoadGenResult) -> Dict[int, object]:
    """Map data set index -> response payload from the run log."""
    responses = result.log.logged_responses()
    if not responses:
        raise ValueError(
            "run logged no responses; accuracy checking requires an "
            "accuracy-mode run (or sampled performance logging)"
        )
    index_map = result.log.sample_index_map()
    return {index_map[sid]: data for sid, data in responses.items()}


def check_classification(result: LoadGenResult, dataset: Dataset,
                         quality_target: float) -> AccuracyReport:
    """Top-1 accuracy vs ``quality_target`` (both in percent)."""
    by_index = _gather(result)
    predictions = []
    labels = []
    for index, data in sorted(by_index.items()):
        predictions.append(int(data))
        labels.append(int(dataset.get_label(index)))
    value = top1_accuracy(predictions, labels)
    return AccuracyReport(
        metric_name="Top-1 accuracy (%)",
        value=value,
        target=quality_target,
        passed=value >= quality_target,
        sample_count=len(predictions),
    )


def _as_detections(data: object) -> List[Detection]:
    """Decode a logged detection payload (Detection list or tuples)."""
    detections = []
    for item in data:
        if isinstance(item, Detection):
            detections.append(item)
        else:
            box, score, class_id = item
            detections.append(Detection(
                box=tuple(float(v) for v in box),
                score=float(score),
                class_id=int(class_id),
            ))
    return detections


def check_detection(result: LoadGenResult, dataset: Dataset,
                    quality_target: float) -> AccuracyReport:
    """COCO mAP vs ``quality_target`` (both in [0, 1])."""
    by_index = _gather(result)
    detections = []
    truths = []
    for index, data in sorted(by_index.items()):
        detections.append(_as_detections(data))
        truths.append(dataset.get_label(index))
    value = mean_average_precision(detections, truths)
    return AccuracyReport(
        metric_name="mAP",
        value=value,
        target=quality_target,
        passed=value >= quality_target,
        sample_count=len(detections),
    )


def check_translation(result: LoadGenResult, dataset: Dataset,
                      quality_target: float) -> AccuracyReport:
    """Corpus BLEU vs ``quality_target``."""
    by_index = _gather(result)
    hypotheses = []
    references = []
    for index, data in sorted(by_index.items()):
        hypotheses.append([int(t) for t in data])
        references.append(dataset.get_label(index))
    value = corpus_bleu(hypotheses, references)
    return AccuracyReport(
        metric_name="SacreBLEU",
        value=value,
        target=quality_target,
        passed=value >= quality_target,
        sample_count=len(hypotheses),
    )


_CHECKERS = {
    "classification": check_classification,
    "detection": check_detection,
    "translation": check_translation,
}


def check_accuracy(result: LoadGenResult, dataset: Dataset, task_type: str,
                   quality_target: float) -> AccuracyReport:
    """Dispatch to the right task checker."""
    try:
        checker = _CHECKERS[task_type]
    except KeyError:
        raise ValueError(
            f"unknown task type {task_type!r}; "
            f"expected one of {sorted(_CHECKERS)}"
        ) from None
    return checker(result, dataset, quality_target)
