"""Quality metrics and the accuracy script."""

from .bleu import corpus_bleu, sentence_bleu
from .checker import (
    AccuracyReport,
    check_accuracy,
    check_classification,
    check_detection,
    check_translation,
)
from .map import COCO_IOU_THRESHOLDS, map_at_50, mean_average_precision
from .topk import top1_accuracy, topk_accuracy

__all__ = [
    "AccuracyReport",
    "COCO_IOU_THRESHOLDS",
    "check_accuracy",
    "check_classification",
    "check_detection",
    "check_translation",
    "corpus_bleu",
    "map_at_50",
    "mean_average_precision",
    "sentence_bleu",
    "top1_accuracy",
    "topk_accuracy",
]
