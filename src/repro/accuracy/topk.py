"""Top-K classification accuracy (the ImageNet quality metric)."""

from __future__ import annotations

from typing import Sequence

import numpy as np


def top1_accuracy(predictions: Sequence[int], labels: Sequence[int]) -> float:
    """Fraction (as a percentage) of predictions equal to their label."""
    predictions = list(predictions)
    labels = list(labels)
    if len(predictions) != len(labels):
        raise ValueError(
            f"{len(predictions)} predictions but {len(labels)} labels"
        )
    if not predictions:
        raise ValueError("cannot score an empty prediction set")
    correct = sum(int(p == t) for p, t in zip(predictions, labels))
    return 100.0 * correct / len(predictions)


def topk_accuracy(scores: np.ndarray, labels: Sequence[int], k: int = 5) -> float:
    """Top-K accuracy (%) from a score matrix ``(N, num_classes)``."""
    scores = np.asarray(scores)
    labels = np.asarray(list(labels))
    if scores.ndim != 2:
        raise ValueError(f"scores must be 2-D, got shape {scores.shape}")
    if scores.shape[0] != labels.shape[0]:
        raise ValueError(
            f"{scores.shape[0]} score rows but {labels.shape[0]} labels"
        )
    if not 1 <= k <= scores.shape[1]:
        raise ValueError(f"k must be in 1..{scores.shape[1]}, got {k}")
    topk = np.argpartition(-scores, k - 1, axis=1)[:, :k]
    hits = (topk == labels[:, None]).any(axis=1)
    return 100.0 * float(hits.mean())
