"""Corpus BLEU (the machine-translation quality metric).

Implements the BLEU score of Papineni et al. as standardized by
SacreBLEU (Post 2018), which is what Table I's "23.9 SacreBLEU" refers
to: corpus-level modified n-gram precisions up to 4-grams, geometric
mean, multiplied by the brevity penalty.  Operates on token-id sequences
(our synthetic language has no tokenization ambiguity, which is the
problem SacreBLEU exists to solve for real text).
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Sequence

MAX_NGRAM_ORDER = 4


def _ngram_counts(tokens: Sequence, order: int) -> Counter:
    return Counter(
        tuple(tokens[i:i + order]) for i in range(len(tokens) - order + 1)
    )


def corpus_bleu(
    hypotheses: Sequence[Sequence],
    references: Sequence[Sequence],
    max_order: int = MAX_NGRAM_ORDER,
    smooth: str = "exp",
) -> float:
    """Corpus BLEU in [0, 100].

    ``smooth`` handles zero n-gram matches: ``"exp"`` (SacreBLEU's
    default exponential smoothing), ``"floor"`` (count 0 -> 0.1), or
    ``"none"`` (BLEU = 0 on any zero precision).
    """
    if len(hypotheses) != len(references):
        raise ValueError(
            f"{len(hypotheses)} hypotheses but {len(references)} references"
        )
    if not hypotheses:
        raise ValueError("cannot score an empty corpus")
    if smooth not in ("exp", "floor", "none"):
        raise ValueError(f"unknown smoothing {smooth!r}")

    matches = [0] * max_order
    totals = [0] * max_order
    hyp_length = 0
    ref_length = 0
    for hyp, ref in zip(hypotheses, references):
        hyp = list(hyp)
        ref = list(ref)
        hyp_length += len(hyp)
        ref_length += len(ref)
        for order in range(1, max_order + 1):
            hyp_counts = _ngram_counts(hyp, order)
            ref_counts = _ngram_counts(ref, order)
            totals[order - 1] += max(len(hyp) - order + 1, 0)
            matches[order - 1] += sum(
                min(count, ref_counts[gram])
                for gram, count in hyp_counts.items()
            )

    log_precision_sum = 0.0
    smooth_value = 1.0
    for order in range(max_order):
        if totals[order] == 0:
            # Hypotheses shorter than the order: skip, as SacreBLEU does
            # by effectively contributing nothing scoreable.
            return 0.0
        if matches[order] > 0:
            precision = matches[order] / totals[order]
        elif smooth == "exp":
            smooth_value *= 2.0
            precision = 1.0 / (smooth_value * totals[order])
        elif smooth == "floor":
            precision = 0.1 / totals[order]
        else:
            return 0.0
        log_precision_sum += math.log(precision)

    geo_mean = math.exp(log_precision_sum / max_order)
    if hyp_length > ref_length:
        brevity_penalty = 1.0
    elif hyp_length == 0:
        return 0.0
    else:
        brevity_penalty = math.exp(1.0 - ref_length / hyp_length)
    return 100.0 * brevity_penalty * geo_mean


def sentence_bleu(hypothesis: Sequence, reference: Sequence,
                  max_order: int = MAX_NGRAM_ORDER) -> float:
    """Single-sentence BLEU with exponential smoothing."""
    return corpus_bleu([hypothesis], [reference], max_order=max_order)
