"""Mean average precision for object detection (the COCO quality metric).

COCO-style evaluation: for each class and each IoU threshold, detections
are matched greedily (highest score first) to unmatched ground-truth
boxes; the precision-recall curve is interpolated (precision envelope)
and integrated to an average precision.  mAP averages AP over classes
and over the IoU thresholds 0.50:0.05:0.95, matching how Table I's
"0.22 mAP" style numbers are computed.

Inputs reuse :class:`repro.models.nms.Detection` and
:class:`repro.datasets.coco.GroundTruthObject`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from ..datasets.coco import GroundTruthObject
from ..models.nms import Detection, iou_matrix

#: The standard COCO IoU threshold grid.
COCO_IOU_THRESHOLDS = tuple(np.round(np.arange(0.50, 1.0, 0.05), 2))


def _collect_class_ids(
    detections: Sequence[Sequence[Detection]],
    truths: Sequence[Sequence[GroundTruthObject]],
) -> List[int]:
    ids = {t.class_id for image in truths for t in image}
    ids.update(d.class_id for image in detections for d in image)
    return sorted(ids)


def average_precision_for_class(
    detections: Sequence[Sequence[Detection]],
    truths: Sequence[Sequence[GroundTruthObject]],
    class_id: int,
    iou_threshold: float,
) -> float:
    """AP of one class at one IoU threshold across all images."""
    total_truth = sum(
        1 for image in truths for t in image if t.class_id == class_id
    )
    if total_truth == 0:
        return float("nan")

    # Flatten this class's detections as (score, image_index, box).
    flat: List[Tuple[float, int, Tuple[float, ...]]] = []
    for image_index, image in enumerate(detections):
        for det in image:
            if det.class_id == class_id:
                flat.append((det.score, image_index, det.box))
    if not flat:
        return 0.0
    flat.sort(key=lambda item: item[0], reverse=True)

    matched: Dict[int, set] = {}
    tp = np.zeros(len(flat))
    fp = np.zeros(len(flat))
    for rank, (_score, image_index, box) in enumerate(flat):
        gt_boxes = [
            (slot, t) for slot, t in enumerate(truths[image_index])
            if t.class_id == class_id
        ]
        best_iou = 0.0
        best_slot = None
        if gt_boxes:
            ious = iou_matrix(
                np.array([box]), np.array([t.box for _slot, t in gt_boxes])
            )[0]
            order = np.argsort(ious)[::-1]
            for candidate in order:
                slot = gt_boxes[candidate][0]
                if slot in matched.get(image_index, set()):
                    continue
                best_iou = float(ious[candidate])
                best_slot = slot
                break
        if best_slot is not None and best_iou >= iou_threshold:
            matched.setdefault(image_index, set()).add(best_slot)
            tp[rank] = 1.0
        else:
            fp[rank] = 1.0

    cum_tp = np.cumsum(tp)
    cum_fp = np.cumsum(fp)
    recall = cum_tp / total_truth
    precision = cum_tp / np.maximum(cum_tp + cum_fp, 1e-12)

    # Precision envelope, then all-point interpolation:
    # AP = sum_i (r_i - r_{i-1}) * p_i with r_0 = 0.
    precision = np.maximum.accumulate(precision[::-1])[::-1]
    return float(np.sum(np.diff(recall, prepend=0.0) * precision))


def mean_average_precision(
    detections: Sequence[Sequence[Detection]],
    truths: Sequence[Sequence[GroundTruthObject]],
    iou_thresholds: Iterable[float] = COCO_IOU_THRESHOLDS,
) -> float:
    """COCO-style mAP in [0, 1] over all classes and IoU thresholds."""
    if len(detections) != len(truths):
        raise ValueError(
            f"{len(detections)} detection lists but {len(truths)} truth lists"
        )
    class_ids = _collect_class_ids(detections, truths)
    if not class_ids:
        raise ValueError("no ground truth or detections to score")
    aps: List[float] = []
    for threshold in iou_thresholds:
        for class_id in class_ids:
            ap = average_precision_for_class(
                detections, truths, class_id, threshold
            )
            if not np.isnan(ap):
                aps.append(ap)
    if not aps:
        raise ValueError("no class had any ground truth")
    return float(np.mean(aps))


def map_at_50(
    detections: Sequence[Sequence[Detection]],
    truths: Sequence[Sequence[GroundTruthObject]],
) -> float:
    """PASCAL-style mAP at a single 0.5 IoU threshold."""
    return mean_average_precision(detections, truths, iou_thresholds=(0.5,))
