"""The session scenario driver: conversations, not independent queries.

``SessionDriver`` layers per-user conversation state machines on the
Server scenario's Poisson arrival loop.  *Sessions* arrive as a Poisson
process at ``server_target_qps`` (sessions per second); each session
then replays its planned conversation strictly in order - turn N+1 is
issued only after turn N's answer arrives plus the planned think time.
A turn that resolves as a failure aborts its session (the user gave up);
a turn that never resolves leaves the session *stalled*, which the
watchdog classifies instead of letting the run wedge - the
multi-turn-hang regression test pins this.

Bookkeeping the referee can audit: ``DriverStats`` gains
``sessions_started/completed/aborted`` and the ``session_*`` metric
family tracks the same lifecycle live (see ``docs/observability.md``).
The replay graph itself comes from :mod:`repro.sessions.replay` and is
a pure function of the seed.  See ``docs/sessions.md``.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..core.config import Scenario
from ..core.query import Query
from ..core.scenarios import ScenarioDriver
from .replay import ReplayGraph, SessionPlan, replay_graph_from_settings


class _SessionState:
    """One in-flight conversation."""

    __slots__ = ("plan", "arrival_time", "next_turn")

    def __init__(self, plan: SessionPlan, arrival_time: float) -> None:
        self.plan = plan
        self.arrival_time = arrival_time
        self.next_turn = 0


class SessionDriver(ScenarioDriver):
    """Poisson session arrivals; strictly ordered turns within each."""

    scenario = Scenario.SESSION

    def __init__(self, *args, registry=None,
                 graph: Optional[ReplayGraph] = None, **kwargs) -> None:
        super().__init__(*args, registry=registry, **kwargs)
        self.graph = (
            graph if graph is not None
            else replay_graph_from_settings(self.settings)
        )
        self._active: Dict[int, _SessionState] = {}
        self._arrived = 0
        # Same arrival-stream idiom as ServerDriver: a fresh spawn child
        # of the run seed, disjoint from the loaded-set and sample-
        # selection streams and from the per-user replay draws (which
        # are keyed by (seed, user_id, 0x5E55) in replay.py).
        self._arrival_rng = np.random.default_rng(
            np.random.SeedSequence(self.settings.seed).spawn(1)[0]
        )
        if registry is not None:
            self._started = registry.counter(
                "session_started_total",
                "Conversations the session driver has started",
            )
            self._completed_sessions = registry.counter(
                "session_completed_total",
                "Conversations that finished every planned turn",
            )
            self._aborted_sessions = registry.counter(
                "session_aborted_total",
                "Conversations abandoned after a failed turn",
            )
            self._turns = registry.counter(
                "session_turns_total",
                "Conversation turns issued across all sessions",
            )
            self._duration = registry.histogram(
                "session_duration_seconds",
                "Arrival-to-final-answer duration of completed conversations",
            )
            registry.gauge(
                "session_active",
                "Conversations started but not yet completed or aborted",
                fn=lambda: len(self._active),
            )
        else:
            self._started = None
            self._completed_sessions = None
            self._aborted_sessions = None
            self._turns = None
            self._duration = None

    # -- arrivals ------------------------------------------------------------

    def start(self) -> None:
        self.stats.start_time = self.loop.now
        self._schedule_next_arrival()

    def _schedule_next_arrival(self) -> None:
        if self._arrived >= self.graph.session_count:
            self._maybe_close()
            return
        gap = self._arrival_rng.exponential(
            1.0 / self.settings.server_target_qps)
        scheduled = self.loop.now + gap
        self.loop.schedule(scheduled, lambda: self._arrive(scheduled))

    def _arrive(self, scheduled: float) -> None:
        user_id = self._arrived
        self._arrived += 1
        state = _SessionState(self.graph.plan(user_id), self.loop.now)
        self._active[user_id] = state
        self.stats.sessions_started += 1
        if self._started is not None:
            self._started.inc()
        self._issue_turn(state, scheduled_time=scheduled)
        self._schedule_next_arrival()

    # -- turns ---------------------------------------------------------------

    def _issue_turn(self, state: _SessionState,
                    scheduled_time: Optional[float] = None) -> None:
        indices = self.source.next(1)
        if indices is None:  # exhausted finite source: cannot continue
            self._abort_session(state.plan.user_id)
            return
        tag = state.plan.turn_tag(state.next_turn)
        state.next_turn += 1
        if self._turns is not None:
            self._turns.inc()
        self._issue(indices, scheduled_time=scheduled_time, session=tag)

    def on_completion(self, query: Query) -> None:
        turn = query.session
        if turn is None:
            return
        state = self._active.get(turn.session_id)
        if state is None:
            return
        record = self.log.record_for(query.id)
        if record is not None and record.failed:
            # The user's turn was lost for good; the conversation ends.
            self._abort_session(turn.session_id)
            return
        if state.next_turn >= state.plan.turn_count:
            self._complete_session(turn.session_id)
            return
        think = state.plan.turns[state.next_turn].think_time
        self.loop.schedule_after(think, lambda: self._issue_turn(state))

    def _complete_session(self, user_id: int) -> None:
        state = self._active.pop(user_id)
        self.stats.sessions_completed += 1
        if self._completed_sessions is not None:
            self._completed_sessions.inc()
            self._duration.observe(self.loop.now - state.arrival_time)
        self._maybe_close()

    def _abort_session(self, user_id: int) -> None:
        self._active.pop(user_id, None)
        self.stats.sessions_aborted += 1
        if self._aborted_sessions is not None:
            self._aborted_sessions.inc()
        self._maybe_close()

    def _maybe_close(self) -> None:
        if self._arrived >= self.graph.session_count and not self._active:
            self._close_issue_phase()
