"""Shared-prefix cache: an auditable KV-cache stand-in for session runs.

:class:`PrefixCacheSUT` wraps any SUT and models what a real serving
stack's prefix (KV) cache does for multi-turn traffic: a turn whose
conversation prefix is still resident skips most of its prefill work.
The model is deliberately simple - per-session token counts under LRU
eviction with a token capacity - because the point is not realism, it
is *auditability*: every hit, partial hit, miss, and eviction is
appended to an ordered event list, and :func:`audit_cache_events`
replays that access order through an independent LRU model built only
from the replay graph and capacity, so the referee can prove the cache
claimed exactly the hits it was entitled to.  The session smoke test
additionally pins the whole event list bit-identical across seeded
runs.

Latency is where the cache shows up in results: a turn is issued to the
inner SUT only after a prefill delay of ``miss_latency_per_token`` per
token that must be (re)computed plus ``hit_latency_per_token`` per
reused token, so cache effectiveness is visible in per-session latency
and TTFT percentiles, not just in counters.  See ``docs/sessions.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, NamedTuple, Optional

from ..core.events import EventLoop
from ..core.query import Query
from ..core.sut import Responder, SutBase, SystemUnderTest
from .replay import ReplayGraph


class CacheEvent(NamedTuple):
    """One entry in the cache's ordered audit trail.

    ``kind`` is ``"hit"`` / ``"partial"`` / ``"miss"`` for accesses
    (``tokens`` = prefix tokens reused), ``"evict"`` for evictions
    (``tokens`` = resident tokens released, ``turn_index`` = -1), and
    ``"admit"`` for cross-replica admissions (``tokens`` = resident
    tokens after the admit, ``turn_index`` = -1) - a rescued session's
    prefix installed by the fleet when its replica died mid-turn.
    """

    kind: str
    session_id: int
    turn_index: int
    tokens: int


@dataclass
class CacheStats:
    """Aggregate cache behavior over one run."""

    hits: int = 0
    partial_hits: int = 0
    misses: int = 0
    evictions: int = 0
    admissions: int = 0
    tokens_reused: int = 0
    tokens_missed: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.partial_hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses whose full prefix was resident."""
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def token_hit_rate(self) -> float:
        """Fraction of prefix tokens served from cache."""
        total = self.tokens_reused + self.tokens_missed
        return self.tokens_reused / total if total else 0.0

    @classmethod
    def merged(cls, parts: "List[CacheStats]") -> "CacheStats":
        """Aggregate several caches' stats (a fleet's per-replica view)."""
        total = cls()
        for part in parts:
            total.hits += part.hits
            total.partial_hits += part.partial_hits
            total.misses += part.misses
            total.evictions += part.evictions
            total.admissions += part.admissions
            total.tokens_reused += part.tokens_reused
            total.tokens_missed += part.tokens_missed
        return total


class _LruModel:
    """The reference LRU-by-session token cache, shared by the live SUT
    and the offline audit so they cannot drift apart."""

    def __init__(self, capacity_tokens: int) -> None:
        if capacity_tokens < 1:
            raise ValueError(
                f"capacity_tokens must be >= 1, got {capacity_tokens}")
        self.capacity_tokens = capacity_tokens
        #: session_id -> resident tokens, in LRU -> MRU insertion order.
        self._resident: Dict[int, int] = {}

    @property
    def resident_tokens(self) -> int:
        return sum(self._resident.values())

    @property
    def resident_sessions(self) -> int:
        return len(self._resident)

    def access(self, session_id: int, turn_index: int, prefix_tokens: int,
               new_tokens: int, response_tokens: int) -> List[CacheEvent]:
        """Process one turn; return its access event plus any evictions.

        The reused prefix is capped at what is both resident *and*
        claimed by the turn; afterwards the session's entry grows to the
        conversation so far (prefix + prompt + answer) and moves to MRU,
        evicting other sessions LRU-first while over capacity.  The
        just-touched session is never evicted - a conversation larger
        than the whole cache still keeps its own entry.
        """
        cached = self._resident.pop(session_id, 0)
        reused = min(cached, prefix_tokens)
        if prefix_tokens > 0 and reused == prefix_tokens:
            kind = "hit"
        elif reused > 0:
            kind = "partial"
        else:
            kind = "miss"
        events = [CacheEvent(kind, session_id, turn_index, reused)]
        self._resident[session_id] = (
            prefix_tokens + new_tokens + response_tokens)
        while (self.resident_tokens > self.capacity_tokens
               and len(self._resident) > 1):
            victim = next(iter(self._resident))
            if victim == session_id:
                break
            events.append(CacheEvent(
                "evict", victim, -1, self._resident.pop(victim)))
        return events

    def admit(self, session_id: int, tokens: int) -> List[CacheEvent]:
        """Install a migrated session's prefix at MRU without an access.

        Cross-replica admission: the prefix was computed elsewhere (the
        replica that died or was ejected), so it enters this cache as
        already-resident state, not as a miss to recompute.  Residency
        never shrinks - if the session already holds more tokens here,
        the larger amount stays - and the admit evicts LRU-first over
        capacity exactly like an access.  Returns the admit event (with
        the post-admit resident amount) plus any evictions.
        """
        cached = self._resident.pop(session_id, 0)
        resident = max(cached, tokens)
        self._resident[session_id] = resident
        events = [CacheEvent("admit", session_id, -1, resident)]
        while (self.resident_tokens > self.capacity_tokens
               and len(self._resident) > 1):
            victim = next(iter(self._resident))
            if victim == session_id:
                break
            events.append(CacheEvent(
                "evict", victim, -1, self._resident.pop(victim)))
        return events


class PrefixCacheSUT(SutBase):
    """Wraps ``inner`` with a prefix-reuse model for session queries.

    Non-session queries pass straight through; session turns pay a
    prefill delay shaped by the cache before reaching the inner SUT.
    """

    def __init__(
        self,
        inner: SystemUnderTest,
        capacity_tokens: int = 32_768,
        miss_latency_per_token: float = 50e-6,
        hit_latency_per_token: float = 2e-6,
        registry=None,
        name: Optional[str] = None,
        replica: Optional[int] = None,
    ) -> None:
        super().__init__(name or f"prefix-cache({inner.name})")
        if miss_latency_per_token < 0 or hit_latency_per_token < 0:
            raise ValueError("per-token latencies must be >= 0")
        self.inner = inner
        self.model = _LruModel(capacity_tokens)
        self.miss_latency_per_token = miss_latency_per_token
        self.hit_latency_per_token = hit_latency_per_token
        #: Fleet replica index this cache belongs to; labels the
        #: ``prefix_cache_*`` metric families so each replica's cache
        #: exports its own series (``None`` = unlabeled standalone cache).
        self.replica = replica
        self.stats = CacheStats()
        #: Ordered audit trail; ``audit_cache_events`` replays it.
        self.events: List[CacheEvent] = []
        #: Turns delayed on the loop for prefill but not yet handed to
        #: the inner SUT; ``flush`` must wait for these to drain.
        self._pending_issues = 0
        self._flush_after_drain = False
        if registry is not None:
            labels = () if replica is None else ("replica",)

            def _child(family):
                return (family if replica is None
                        else family.labels(replica=replica))

            self._m_hits = _child(registry.counter(
                "prefix_cache_hits_total",
                "Session turns whose full prefix was resident",
                labels=labels,
            ))
            self._m_partial = _child(registry.counter(
                "prefix_cache_partial_hits_total",
                "Session turns that reused part of their prefix",
                labels=labels,
            ))
            self._m_misses = _child(registry.counter(
                "prefix_cache_misses_total",
                "Session turns that reused no prefix tokens",
                labels=labels,
            ))
            self._m_evictions = _child(registry.counter(
                "prefix_cache_evictions_total",
                "Sessions evicted LRU-first to fit the token capacity",
                labels=labels,
            ))
            self._m_reused = _child(registry.counter(
                "prefix_cache_tokens_reused_total",
                "Prefix tokens served from cache",
                labels=labels,
            ))
            self._m_missed = _child(registry.counter(
                "prefix_cache_tokens_missed_total",
                "Prefix tokens recomputed because they were not resident",
                labels=labels,
            ))
            self._m_admissions = _child(registry.counter(
                "prefix_cache_admissions_total",
                "Migrated session prefixes admitted on fleet rescue",
                labels=labels,
            ))
            resident = registry.gauge(
                "prefix_cache_resident_tokens",
                "Tokens currently held by the prefix cache",
                labels=labels,
                fn=(lambda: self.model.resident_tokens)
                if replica is None else None,
            )
            if replica is not None:
                resident.labels_fn(
                    lambda: self.model.resident_tokens, replica=replica)
        else:
            self._m_hits = self._m_partial = self._m_misses = None
            self._m_evictions = self._m_reused = self._m_missed = None
            self._m_admissions = None

    @property
    def capacity_tokens(self) -> int:
        return self.model.capacity_tokens

    def start_run(self, loop: EventLoop, responder: Responder) -> None:
        super().start_run(loop, responder)
        self._pending_issues = 0
        self._flush_after_drain = False
        # Completions need no interception: the inner SUT answers the
        # referee directly, chunks and failures included.
        self.inner.start_run(loop, responder)

    def flush(self) -> None:
        """Forward the flush hint once every delayed turn has reached the
        inner SUT.

        Turns sit on the event loop for their prefill delay before they
        are issued inward; flushing the inner SUT while such turns are
        still queued would let the flush overtake them (the inner SUT
        would batch-close before seeing queries that were already,
        logically, issued).  With nothing pending the hint forwards
        immediately - the common non-session path is unchanged.
        """
        if self._pending_issues > 0:
            self._flush_after_drain = True
        else:
            self.inner.flush()

    def close(self) -> None:
        """Release the inner backend if it owns OS resources."""
        close = getattr(self.inner, "close", None)
        if callable(close):
            close()

    def _issue_inner(self, query: Query) -> None:
        self._pending_issues -= 1
        self.inner.issue_query(query)
        if self._flush_after_drain and self._pending_issues == 0:
            self._flush_after_drain = False
            self.inner.flush()

    def admit_session(self, session_id: int, tokens: int) -> None:
        """Admit a migrated session's prefix (cross-replica admission).

        Called by the fleet's rescue path just before it re-issues a
        rescued turn here: the prefix the dead replica computed is
        installed as resident, so the rescued turn (and the session's
        later turns, once affinity re-pins) hit instead of recomputing
        a prefill the user already paid for.  The admit is recorded in
        the audit trail; the auditor takes the admitted amount as a
        declared input and verifies its downstream effects (evictions
        now, hits later) like any other event.
        """
        if tokens <= 0:
            return
        events = self.model.admit(session_id, tokens)
        self.events.extend(events)
        self.stats.admissions += 1
        if self._m_admissions is not None:
            self._m_admissions.inc()
        evictions = len(events) - 1
        if evictions:
            self.stats.evictions += evictions
            if self._m_evictions is not None:
                self._m_evictions.inc(evictions)

    def issue_query(self, query: Query) -> None:
        turn = query.session
        if turn is None:
            self.inner.issue_query(query)
            return
        events = self.model.access(
            turn.session_id, turn.turn_index, turn.prefix_tokens,
            turn.new_tokens, turn.response_tokens)
        self.events.extend(events)
        access = events[0]
        reused = access.tokens
        missed = turn.prefix_tokens - reused
        self.stats.tokens_reused += reused
        self.stats.tokens_missed += missed
        if access.kind == "hit":
            self.stats.hits += 1
            if self._m_hits is not None:
                self._m_hits.inc()
        elif access.kind == "partial":
            self.stats.partial_hits += 1
            if self._m_partial is not None:
                self._m_partial.inc()
        else:
            self.stats.misses += 1
            if self._m_misses is not None:
                self._m_misses.inc()
        evictions = len(events) - 1
        if evictions:
            self.stats.evictions += evictions
            if self._m_evictions is not None:
                self._m_evictions.inc(evictions)
        if self._m_reused is not None:
            self._m_reused.inc(reused)
            self._m_missed.inc(missed)
        # Prefill: recompute what missed (plus the fresh prompt), skim
        # what hit.  This is the delay that makes cache effectiveness
        # visible in latency and TTFT percentiles.
        delay = (
            (missed + turn.new_tokens) * self.miss_latency_per_token
            + reused * self.hit_latency_per_token
        )
        if delay > 0:
            self._pending_issues += 1
            self.loop.schedule_after(
                delay, lambda: self._issue_inner(query))
        else:
            self.inner.issue_query(query)


def audit_cache_events(
    events: List[CacheEvent],
    graph: ReplayGraph,
    capacity_tokens: int,
) -> List[str]:
    """Referee-side audit: did the cache claim exactly its entitlement?

    Replays the recorded *access order* (which turns ran, in which
    order) through an independent :class:`_LruModel` parameterized only
    by the replay graph and the declared capacity, and compares the
    regenerated event list - hits, partial reuse amounts, and eviction
    points included - against the recorded one.  Returns a list of
    discrepancy descriptions; an empty list means the trail is clean.
    """
    model = _LruModel(capacity_tokens)
    expected: List[CacheEvent] = []
    for event in events:
        if event.kind == "evict":
            continue  # evictions are regenerated, not replayed
        if event.kind == "admit":
            # Rescue admissions are declared inputs (the rescuing fleet
            # vouches for the amount); the replay applies them so their
            # evictions and the hits they enable stay verifiable.
            expected.extend(model.admit(event.session_id, event.tokens))
            continue
        plan = graph.plan(event.session_id)
        if not 0 <= event.turn_index < plan.turn_count:
            return [
                f"session {event.session_id} has no turn "
                f"{event.turn_index} in the replay graph"
            ]
        turn = plan.turns[event.turn_index]
        expected.extend(model.access(
            event.session_id, event.turn_index, turn.prefix_tokens,
            turn.new_tokens, turn.response_tokens))
    problems = []
    for position, (got, want) in enumerate(zip(events, expected)):
        if got != want:
            problems.append(
                f"event {position}: recorded {got!r}, expected {want!r}")
    if len(events) != len(expected):
        problems.append(
            f"recorded {len(events)} events, expected {len(expected)}")
    return problems


def per_replica_cache_factory(
    capacity_tokens: int = 32_768,
    miss_latency_per_token: float = 50e-6,
    hit_latency_per_token: float = 2e-6,
    registry=None,
) -> Callable[[int, SystemUnderTest], PrefixCacheSUT]:
    """A :class:`~repro.fleet.replicaset.ReplicaSet` ``cache_factory``.

    The replica set calls the returned factory once per replica it
    builds, wrapping that replica's backend in its **own**
    :class:`PrefixCacheSUT` - so cache state lives where a real serving
    stack keeps it, on the replica, and routing policy determines which
    cache a session's turns warm.  With a ``registry`` each cache
    exports the ``prefix_cache_*{replica="i"}`` labeled series
    (``docs/observability.md``).
    """

    def factory(index: int, inner: SystemUnderTest) -> PrefixCacheSUT:
        return PrefixCacheSUT(
            inner,
            capacity_tokens=capacity_tokens,
            miss_latency_per_token=miss_latency_per_token,
            hit_latency_per_token=hit_latency_per_token,
            registry=registry,
            replica=index,
            name=f"prefix-cache[{index}]({inner.name})",
        )

    return factory


def audit_replica_caches(
    caches: Mapping[int, PrefixCacheSUT],
    graph: ReplayGraph,
) -> Dict[int, List[str]]:
    """Audit every replica's cache trail independently.

    Each replica saw only the turns routed to it, so each trail is
    audited on its own: the recorded access order of *that* replica is
    replayed through a fresh reference model.  Returns
    ``{replica_index: problems}``; all-empty values mean every trail is
    clean.
    """
    return {
        index: audit_cache_events(
            cache.events, graph, cache.capacity_tokens)
        for index, cache in sorted(caches.items())
    }
