"""Session workloads: multi-turn conversations over the LoadGen core.

Three pieces, one seeded contract (``docs/sessions.md``):

* :mod:`~repro.sessions.replay` generates the deterministic per-user
  replay graph - turn counts, think times, prefix growth - every draw
  keyed by ``SeedSequence((seed, user_id, 0x5E55))``.
* :mod:`~repro.sessions.driver` is the ``Scenario.SESSION`` driver:
  Poisson session arrivals, strictly ordered turns (turn N+1 issues
  only after turn N's answer plus think time).
* :mod:`~repro.sessions.cache` is the shared-prefix cache stand-in
  whose hit/miss/eviction trail the referee audits against the graph.
"""

from .cache import (
    CacheEvent,
    CacheStats,
    PrefixCacheSUT,
    audit_cache_events,
    audit_replica_caches,
    per_replica_cache_factory,
)
from .driver import SessionDriver
from .replay import (
    SESSION_TAG,
    ReplayGraph,
    SessionPlan,
    SessionProfile,
    TurnPlan,
    replay_graph_from_settings,
)

__all__ = [
    "CacheEvent",
    "CacheStats",
    "PrefixCacheSUT",
    "ReplayGraph",
    "SESSION_TAG",
    "SessionDriver",
    "SessionPlan",
    "SessionProfile",
    "TurnPlan",
    "audit_cache_events",
    "audit_replica_caches",
    "per_replica_cache_factory",
    "replay_graph_from_settings",
]
