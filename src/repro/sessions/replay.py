"""Seeded conversation-replay graphs: who talks, how long, with what gaps.

Production traffic from millions of users is not a stream of independent
queries - it is *sessions*: multi-turn conversations where turn N+1
waits on turn N's answer plus a human think time, and each turn shares a
growing prefix with the ones before it.  This module generates that
workload deterministically: a :class:`SessionProfile` describes the
distributions (turn counts, think times, prompt/response growth) and
produces one :class:`SessionPlan` per user, every draw keyed by
``SeedSequence((seed, user_id, 0x5E55))`` - so the full replay graph is
a pure function of the run seed, independent per user, and
domain-separated from every other seeded subsystem (arrivals, stream
shapes, fault plans, loaded-set choice).

The plan is the shared source of truth: the
:class:`~repro.sessions.driver.SessionDriver` issues its turns, the
:class:`~repro.sessions.cache.PrefixCacheSUT` reuses the prefixes it
declares, and the cache *audit* recomputes expected hits from the graph
alone.  See ``docs/sessions.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple, Tuple

import numpy as np

from ..core.config import TestSettings
from ..core.query import SessionTurn

#: SeedSequence domain tag for session replay-graph draws.
SESSION_TAG = 0x5E55


class TurnPlan(NamedTuple):
    """One planned conversation turn."""

    #: Zero-based position within the session.
    turn_index: int
    #: Seconds the user "thinks" after the previous turn's answer before
    #: sending this turn; 0.0 for the opening turn.
    think_time: float
    #: Context tokens shared with earlier turns (prompt + answers so
    #: far) - what a prefix cache can reuse.
    prefix_tokens: int
    #: Fresh prompt tokens this turn appends.
    new_tokens: int
    #: Planned answer length; it joins the next turn's prefix.
    response_tokens: int


class SessionPlan(NamedTuple):
    """The full planned conversation for one user."""

    user_id: int
    turns: Tuple[TurnPlan, ...]

    @property
    def turn_count(self) -> int:
        return len(self.turns)

    @property
    def total_think_time(self) -> float:
        return sum(t.think_time for t in self.turns)

    def turn_tag(self, turn_index: int) -> SessionTurn:
        """The :class:`~repro.core.query.SessionTurn` tag the driver
        attaches to this turn's query."""
        turn = self.turns[turn_index]
        return SessionTurn(
            session_id=self.user_id,
            turn_index=turn.turn_index,
            turn_count=self.turn_count,
            prefix_tokens=turn.prefix_tokens,
            new_tokens=turn.new_tokens,
            response_tokens=turn.response_tokens,
        )


@dataclass(frozen=True)
class SessionProfile:
    """Distributions of conversation shapes, deterministic per user.

    Turn counts are uniform on ``[turns_min, turns_max]``; think times
    are exponential with mean ``think_time_mean`` (0 disables thinking -
    the stress/bench configuration); prompt and response token counts
    are uniform on ``[new_tokens_min, new_tokens_max]``.  Turn t's
    prefix is the running sum of all earlier turns' prompt and response
    tokens, which is exactly what a shared-prefix KV cache could reuse.
    """

    turns_min: int = 2
    turns_max: int = 8
    think_time_mean: float = 2.0
    new_tokens_min: int = 16
    new_tokens_max: int = 128
    seed: int = 0

    def __post_init__(self) -> None:
        if self.turns_min < 1:
            raise ValueError(f"turns_min must be >= 1, got {self.turns_min}")
        if self.turns_max < self.turns_min:
            raise ValueError(
                f"turns_max must be >= turns_min, got {self.turns_max}"
            )
        if self.think_time_mean < 0:
            raise ValueError(
                f"think_time_mean must be >= 0, got {self.think_time_mean}"
            )
        if self.new_tokens_min < 1:
            raise ValueError(
                f"new_tokens_min must be >= 1, got {self.new_tokens_min}"
            )
        if self.new_tokens_max < self.new_tokens_min:
            raise ValueError(
                f"new_tokens_max must be >= new_tokens_min, got "
                f"{self.new_tokens_max}"
            )

    @classmethod
    def from_settings(cls, settings: TestSettings) -> "SessionProfile":
        """The profile a :class:`TestSettings` describes (plain data in,
        plain data out - journaled session runs rebuild it identically)."""
        return cls(
            turns_min=settings.session_turns_min,
            turns_max=settings.session_turns_max,
            think_time_mean=settings.session_think_time_mean,
            new_tokens_min=settings.session_new_tokens_min,
            new_tokens_max=settings.session_new_tokens_max,
            seed=settings.seed,
        )

    def plan(self, user_id: int) -> SessionPlan:
        """The deterministic conversation for one user."""
        rng = np.random.default_rng(
            np.random.SeedSequence((self.seed, user_id, SESSION_TAG))
        )
        turn_count = int(rng.integers(self.turns_min, self.turns_max + 1))
        turns = []
        prefix = 0
        for index in range(turn_count):
            new_tokens = int(
                rng.integers(self.new_tokens_min, self.new_tokens_max + 1))
            response_tokens = int(
                rng.integers(self.new_tokens_min, self.new_tokens_max + 1))
            think = (
                0.0 if index == 0 or self.think_time_mean == 0.0
                else float(rng.exponential(self.think_time_mean))
            )
            turns.append(TurnPlan(
                turn_index=index,
                think_time=think,
                prefix_tokens=prefix,
                new_tokens=new_tokens,
                response_tokens=response_tokens,
            ))
            prefix += new_tokens + response_tokens
        return SessionPlan(user_id=user_id, turns=tuple(turns))


class ReplayGraph:
    """The generated session workload: one plan per user, lazily built.

    Plans are memoized (the driver asks for each user once, tests ask
    repeatedly) and :meth:`fingerprint` digests the whole graph into a
    hashable tuple - the determinism witness the session smoke test
    compares across seeded runs.
    """

    def __init__(self, profile: SessionProfile, session_count: int) -> None:
        if session_count < 1:
            raise ValueError(
                f"session_count must be >= 1, got {session_count}")
        self.profile = profile
        self.session_count = session_count
        self._plans = {}

    def plan(self, user_id: int) -> SessionPlan:
        if not 0 <= user_id < self.session_count:
            raise ValueError(
                f"user_id {user_id} outside [0, {self.session_count})")
        cached = self._plans.get(user_id)
        if cached is None:
            cached = self._plans[user_id] = self.profile.plan(user_id)
        return cached

    @property
    def total_turns(self) -> int:
        return sum(
            self.plan(uid).turn_count for uid in range(self.session_count))

    def fingerprint(self) -> tuple:
        """Order-stable digest of every user's full plan."""
        return tuple(
            (plan.user_id,) + tuple(plan.turns)
            for plan in (
                self.plan(uid) for uid in range(self.session_count))
        )


def replay_graph_from_settings(settings: TestSettings) -> ReplayGraph:
    """The replay graph a session run with ``settings`` will issue."""
    return ReplayGraph(
        SessionProfile.from_settings(settings),
        settings.resolved_session_count,
    )
