"""Harness entry points for Network-division runs.

Two symmetric ways to put a wire between the LoadGen and a backend:

* :func:`run_over_localhost` - the real thing: an
  :class:`~repro.network.server.InferenceServer` on a loopback socket, a
  :class:`~repro.network.client.NetworkSUT` adapter, and the LoadGen
  running on a :class:`~repro.core.events.WallClock` because kernel
  socket time is the quantity under test.
* :func:`run_over_simulated_channel` - the deterministic twin: the same
  backend behind a :class:`~repro.network.simulated.SimulatedChannelSUT`
  on the virtual clock, for reproducible network-sensitivity sweeps.

Plus the replicated variant: :func:`run_over_replicated_localhost`
stands up N loopback servers and routes between them with the
``repro.fleet`` balancer - multi-server client routing over real TCP.

Both return a :class:`NetworkRunResult` bundling the LoadGen verdict
with the transport-side accounting, so callers can separate "the SUT is
too slow" from "the wire ate the latency budget".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Union

from ..core.config import TestSettings
from ..core.events import WallClock
from ..core.loadgen import LoadGenResult, run_benchmark
from ..core.sut import QuerySampleLibrary, SystemUnderTest
from ..core.trace import TransportTiming
from ..metrics import MetricsRegistry
from ..network.client import NetworkStats, NetworkSUT
from ..network.server import InferenceServer, ServerConfig
from ..network.simulated import ChannelModel, ChannelStats, SimulatedChannelSUT


class SyntheticQSL:
    """An index-only sample library for plumbing runs and examples.

    ``get_sample`` returns the index itself, which pairs with
    :class:`~repro.sut.echo.EchoSUT` echoing it back: end-to-end payload
    correctness is checkable without any real data set on disk.
    """

    def __init__(self, total: int = 8192, performance: int = 1024,
                 name: str = "synthetic") -> None:
        self.name = name
        self.total_sample_count = total
        self.performance_sample_count = performance

    def load_samples(self, indices) -> None:
        pass

    def unload_samples(self, indices) -> None:
        pass

    def get_sample(self, index: int) -> object:
        return index


def parallel_echo_backend(
    workers: int = 2,
    seed: int = 0,
    compute_time: float = 0.0,
    max_batch: int = 8,
    qsl: Optional[QuerySampleLibrary] = None,
) -> SystemUnderTest:
    """A process-parallel echo backend for network runs.

    Wire-compatible with :class:`~repro.sut.echo.EchoSUT` (each sample
    is answered with its own library index, via :class:`SyntheticQSL`),
    but the answers are computed by a ``repro.parallel`` worker pool --
    the configuration ``repro serve --backend parallel`` hosts.
    ``compute_time`` is slept inside the worker per dispatched shard,
    standing in for real model latency.

    The returned SUT owns OS resources (processes, shared memory); pass
    it to :class:`~repro.network.server.InferenceServer` as an instance
    (one shared pool) and it is released by ``server.stop()``, or call
    ``close()`` yourself after in-process use.
    """
    import time as _time

    from ..parallel import BatchingPolicy, ParallelSUT

    qsl = qsl if qsl is not None else SyntheticQSL()

    def echo_factory():
        def predict(samples):
            if compute_time > 0.0:
                _time.sleep(compute_time)
            return list(samples)
        return predict

    return ParallelSUT(
        echo_factory, qsl, workers=workers, seed=seed,
        policy=BatchingPolicy(max_batch_size=max_batch, max_wait=0.0))


@dataclass
class NetworkRunResult:
    """A LoadGen verdict plus the wire's side of the story."""

    result: LoadGenResult
    #: Client-adapter counters (retries, drops, bytes...).
    client_stats: Optional[NetworkStats] = None
    #: The server's final STATS payload (real runs only).
    server_stats: Optional[Dict[str, object]] = None
    #: Channel counters (simulated runs only).
    channel_stats: Optional[ChannelStats] = None
    #: Per-query wire timings, keyed by query id.
    transport: Dict[int, TransportTiming] = field(default_factory=dict)

    @property
    def valid(self) -> bool:
        return self.result.valid

    def mean_network_time(self) -> float:
        """Mean wire share of the round trip, seconds (0 if untracked)."""
        if not self.transport:
            return 0.0
        times = [t.network_time for t in self.transport.values()]
        return sum(times) / len(times)

    def mean_round_trip(self) -> float:
        """Mean client-observed round trip, seconds (0 if untracked)."""
        if not self.transport:
            return 0.0
        times = [t.round_trip for t in self.transport.values()]
        return sum(times) / len(times)


def run_over_localhost(
    backend: Union[SystemUnderTest, Callable[[], SystemUnderTest]],
    qsl: QuerySampleLibrary,
    settings: TestSettings,
    server_config: Optional[ServerConfig] = None,
    connections: int = 1,
    query_timeout: float = 2.0,
    max_attempts: int = 2,
    registry: Optional[MetricsRegistry] = None,
    snapshot_period: Optional[float] = None,
) -> NetworkRunResult:
    """One measured run with a real TCP hop on loopback.

    The server is started for the duration of the run and torn down
    afterwards (drain first), whatever the verdict.

    ``registry`` collects both sides' telemetry in one place: the
    LoadGen's ``loadgen_*`` series and the server's ``server_*`` series
    (queue depth, batch sizes, worker utilization); ``snapshot_period``
    additionally samples it on the run's wall clock (see
    ``docs/observability.md``).
    """
    server = InferenceServer(backend, server_config, registry=registry)
    host, port = server.start()
    sut = NetworkSUT(
        (host, port),
        connections=connections,
        query_timeout=query_timeout,
        max_attempts=max_attempts,
    )
    try:
        result = run_benchmark(sut, qsl, settings, clock=WallClock(),
                               registry=registry,
                               snapshot_period=snapshot_period)
        sut.close()
        return NetworkRunResult(
            result=result,
            client_stats=sut.stats,
            server_stats=sut.server_stats,
            transport=dict(sut.transport_records),
        )
    finally:
        sut.close()
        server.stop()


def run_over_simulated_channel(
    backend: SystemUnderTest,
    qsl: QuerySampleLibrary,
    settings: TestSettings,
    model: Optional[ChannelModel] = None,
    registry: Optional[MetricsRegistry] = None,
    snapshot_period: Optional[float] = None,
) -> NetworkRunResult:
    """The deterministic twin: same run shape, virtual-time channel.

    With ``registry``/``snapshot_period`` the run emits live telemetry
    exactly like :func:`run_over_localhost`, except on the virtual
    clock - so the snapshot series is bit-for-bit reproducible.
    """
    channel = SimulatedChannelSUT(backend, model)
    result = run_benchmark(channel, qsl, settings,
                           registry=registry,
                           snapshot_period=snapshot_period)
    return NetworkRunResult(
        result=result,
        channel_stats=channel.stats,
        transport=dict(channel.transport_records),
    )


def run_over_replicated_localhost(
    backend_factory: Callable[[], SystemUnderTest],
    qsl: QuerySampleLibrary,
    settings: TestSettings,
    replicas: int = 2,
    server_config: Optional[ServerConfig] = None,
    policy: Optional[object] = None,
    attempt_timeout: float = 2.0,
    query_timeout: float = 2.0,
    registry: Optional[MetricsRegistry] = None,
    seed: int = 0,
) -> NetworkRunResult:
    """One measured run against N real loopback servers behind the fleet
    balancer: multi-server client routing over actual TCP.

    Each replica is its own :class:`~repro.network.server.InferenceServer`
    (own port, own backend instance from ``backend_factory``) fronted by
    a :class:`~repro.network.client.NetworkSUT`, and a
    :class:`~repro.fleet.ReplicaSet` routes between them with the given
    balancing ``policy``.  Runs on the wall clock, like
    :func:`run_over_localhost`; every server is drained and stopped
    afterwards whatever the verdict.
    """
    from ..fleet import ReplicaSet

    servers: list = []
    clients: list = []

    def replica_factory(index: int) -> SystemUnderTest:
        server = InferenceServer(backend_factory(), server_config,
                                 registry=None)
        host, port = server.start()
        servers.append(server)
        client = NetworkSUT((host, port), query_timeout=query_timeout)
        clients.append(client)
        return client

    fleet = ReplicaSet(
        replica_factory,
        initial_replicas=replicas,
        max_replicas=max(replicas, 2),
        policy=policy,
        attempt_timeout=attempt_timeout,
        seed=seed,
        registry=registry,
    )
    try:
        result = run_benchmark(fleet, qsl, settings, clock=WallClock(),
                               registry=registry)
        return NetworkRunResult(result=result)
    finally:
        fleet.close()
        for client in clients:
            client.close()
        for server in servers:
            server.stop()


def latency_overhead(
    network: NetworkRunResult, inprocess: LoadGenResult
) -> Dict[str, float]:
    """Per-query cost of the wire: networked minus in-process latency.

    Both runs should use the same backend and scenario settings; the
    difference in mean/P90 latency is then the serving stack's overhead
    (protocol encode/decode, sockets, queueing at the server edge).
    """
    net_metrics = network.result.metrics
    base_metrics = inprocess.metrics
    return {
        "mean_overhead_s": net_metrics.latency_mean - base_metrics.latency_mean,
        "p90_overhead_s": net_metrics.latency_p90 - base_metrics.latency_p90,
        "network_mean_s": net_metrics.latency_mean,
        "inprocess_mean_s": base_metrics.latency_mean,
        "wire_share_s": network.mean_network_time(),
    }
