"""Formatters that print the paper's tables from live objects.

Each function regenerates one normative table from the code that
implements it (the registry, the rule constants, the statistics module,
the fleet), so the benchmark suite can both *print* the table and
*assert* it against the published values.
"""

from __future__ import annotations

from typing import Dict

from ..core.config import Scenario, Task, task_rules
from ..core.stats import table_iv
from ..models.registry import all_models
from ..sut.device import ProcessorType


def format_table_i() -> str:
    """Table I: tasks, reference models, data sets, quality targets."""
    lines = [
        f"{'AREA':<10}{'TASK':<28}{'MODEL':<18}{'PARAMS':<10}"
        f"{'GOPS':<8}{'QUALITY TARGET'}",
        "-" * 92,
    ]
    for info in all_models():
        gops = f"{info.gops_per_input:g}" if info.gops_per_input else "-"
        target = (
            f"{info.quality_target_factor:.0%} of FP32 "
            f"({info.fp32_quality:g} {info.quality_metric})"
        )
        lines.append(
            f"{info.task.area.upper():<10}{info.task.value:<28}"
            f"{info.display_name:<18}{info.parameters / 1e6:<10.2f}"
            f"{gops:<8}{target}"
        )
    return "\n".join(lines)


def format_table_ii() -> str:
    """Table II: the four scenarios and their metrics."""
    examples = {
        Scenario.SINGLE_STREAM: "typing autocomplete, real-time AR",
        Scenario.MULTI_STREAM: "multicamera driver assistance",
        Scenario.SERVER: "translation website",
        Scenario.OFFLINE: "photo categorization",
    }
    generation = {
        Scenario.SINGLE_STREAM: "sequential",
        Scenario.MULTI_STREAM: "arrival interval with dropping",
        Scenario.SERVER: "Poisson distribution",
        Scenario.OFFLINE: "batch",
    }
    lines = [
        f"{'SCENARIO':<16}{'QUERY GENERATION':<32}{'METRIC':<44}{'EXAMPLES'}",
        "-" * 120,
    ]
    # The paper's table lists its four scenarios; the repo's session
    # scenario (docs/sessions.md) is a post-paper addition and is
    # deliberately absent here.
    for scenario in examples:
        lines.append(
            f"{scenario.short_name:<16}{generation[scenario]:<32}"
            f"{scenario.metric_name:<44}{examples[scenario]}"
        )
    return "\n".join(lines)


def format_table_iii() -> str:
    """Table III: multistream arrival times and server QoS bounds."""
    lines = [
        f"{'TASK':<28}{'MULTISTREAM ARRIVAL':<24}{'SERVER QOS'}",
        "-" * 68,
    ]
    for task in Task:
        rules = task_rules(task)
        lines.append(
            f"{task.value:<28}"
            f"{rules.multistream_interval * 1e3:<24.0f}"
            f"{rules.server_latency_bound * 1e3:.0f} ms"
        )
    return "\n".join(lines)


def format_table_iv() -> str:
    """Table IV: statistical query requirements."""
    lines = [
        f"{'TAIL %ILE':<12}{'CONFIDENCE':<12}{'MARGIN':<10}"
        f"{'INFERENCES':<12}{'ROUNDED'}",
        "-" * 58,
    ]
    for req in table_iv():
        lines.append(
            f"{req.tail_latency:<12.0%}{req.confidence:<12.0%}"
            f"{req.margin:<10.2%}{req.inferences:<12,}"
            f"{req.rounded_inferences:,}"
        )
    return "\n".join(lines)


def format_table_v() -> str:
    """Table V: queries / samples per query for each task."""
    lines = [
        f"{'MODEL':<28}{'SS':<12}{'MS':<12}{'SERVER':<12}{'OFFLINE'}",
        "-" * 76,
    ]
    from ..core.config import OFFLINE_MIN_SAMPLES, SINGLE_STREAM_MIN_QUERIES
    for task in Task:
        count = task_rules(task).latency_bounded_query_count
        lines.append(
            f"{task.value:<28}"
            f"{f'{SINGLE_STREAM_MIN_QUERIES // 1024}K / 1':<12}"
            f"{f'{round(count / 1000)}K / N':<12}"
            f"{f'{round(count / 1000)}K / 1':<12}"
            f"1 / {OFFLINE_MIN_SAMPLES // 1024}K"
        )
    return "\n".join(lines)


def format_coverage_matrix(matrix: Dict[Task, Dict[Scenario, int]]) -> str:
    """Table VI layout from a measured (or planned) coverage matrix."""
    lines = [
        f"{'MODEL':<28}{'SS':>6}{'MS':>6}{'S':>6}{'O':>6}",
        "-" * 52,
    ]
    totals = {scenario: 0 for scenario in Scenario}
    for task in Task:
        row = matrix[task]
        for scenario in Scenario:
            # The paper's coverage matrix has four scenario columns;
            # tolerate matrices that omit the post-paper session one.
            totals[scenario] += row.get(scenario, 0)
        lines.append(
            f"{task.value:<28}"
            f"{row[Scenario.SINGLE_STREAM]:>6}"
            f"{row[Scenario.MULTI_STREAM]:>6}"
            f"{row[Scenario.SERVER]:>6}"
            f"{row[Scenario.OFFLINE]:>6}"
        )
    lines.append(
        f"{'TOTAL':<28}"
        f"{totals[Scenario.SINGLE_STREAM]:>6}"
        f"{totals[Scenario.MULTI_STREAM]:>6}"
        f"{totals[Scenario.SERVER]:>6}"
        f"{totals[Scenario.OFFLINE]:>6}"
    )
    return "\n".join(lines)


def format_framework_matrix(matrix: Dict[str, frozenset]) -> str:
    """Table VII layout: framework rows, processor-type columns."""
    columns = [ProcessorType.ASIC, ProcessorType.CPU, ProcessorType.DSP,
               ProcessorType.FPGA, ProcessorType.GPU]
    lines = [
        f"{'':<18}" + "".join(f"{c.value:>8}" for c in columns),
        "-" * (18 + 8 * len(columns)),
    ]
    for framework in sorted(matrix):
        marks = "".join(
            f"{'X' if column in matrix[framework] else '':>8}"
            for column in columns
        )
        lines.append(f"{framework:<18}{marks}")
    return "\n".join(lines)
