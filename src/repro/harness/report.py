"""Markdown report generation for a fleet sweep.

Renders a complete Section VI-style results report from a list of
:class:`~repro.harness.experiments.SubmissionRecord`: the coverage
matrix (Table VI), the per-model distribution (Fig. 5), the
per-processor histogram (Fig. 7), the framework matrix (Table VII), the
server/offline degradation summary (Fig. 6), the relative-performance
spreads (Fig. 8), and the raw per-result listing.  ``EXPERIMENTS.md``'s
measured sections are produced with this module.
"""

from __future__ import annotations

import statistics
from typing import Dict, List, Optional, Sequence

from ..core.config import Scenario, Task
from ..sut.device import ProcessorType
from ..sut.fleet import FleetSystem, framework_matrix
from .experiments import (
    SubmissionRecord,
    relative_performance,
    result_matrix,
    results_per_processor,
    results_per_task,
    server_offline_ratios,
)

_METRIC_UNITS = {
    Scenario.SINGLE_STREAM: "ms (p90)",
    Scenario.MULTI_STREAM: "streams",
    Scenario.SERVER: "qps",
    Scenario.OFFLINE: "samples/s",
}


def _metric_text(record: SubmissionRecord) -> str:
    if record.scenario is Scenario.SINGLE_STREAM:
        return f"{record.metric * 1e3:.3g} {_METRIC_UNITS[record.scenario]}"
    return f"{record.metric:.4g} {_METRIC_UNITS[record.scenario]}"


def coverage_section(records: Sequence[SubmissionRecord]) -> str:
    matrix = result_matrix(records)
    lines = [
        "| model | SS | MS | S | O | total |",
        "|---|---:|---:|---:|---:|---:|",
    ]
    totals = {scenario: 0 for scenario in Scenario}
    for task in Task:
        row = matrix[task]
        for scenario in Scenario:
            totals[scenario] += row[scenario]
        lines.append(
            f"| {task.value} "
            f"| {row[Scenario.SINGLE_STREAM]} "
            f"| {row[Scenario.MULTI_STREAM]} "
            f"| {row[Scenario.SERVER]} "
            f"| {row[Scenario.OFFLINE]} "
            f"| {sum(row.values())} |"
        )
    lines.append(
        f"| **total** | {totals[Scenario.SINGLE_STREAM]} "
        f"| {totals[Scenario.MULTI_STREAM]} | {totals[Scenario.SERVER]} "
        f"| {totals[Scenario.OFFLINE]} | {len(records)} |"
    )
    return "\n".join(lines)


def per_task_section(records: Sequence[SubmissionRecord]) -> str:
    counts = results_per_task(records)
    lines = ["| model | results |", "|---|---:|"]
    for task in Task:
        lines.append(f"| {task.value} | {counts[task]} |")
    return "\n".join(lines)


def per_processor_section(records: Sequence[SubmissionRecord]) -> str:
    per_proc = results_per_processor(records)
    lines = ["| processor | results |", "|---|---:|"]
    ordered = sorted(per_proc.items(),
                     key=lambda kv: -sum(kv[1].values()))
    for proc, tasks in ordered:
        lines.append(f"| {proc.value} | {sum(tasks.values())} |")
    return "\n".join(lines)


def degradation_section(records: Sequence[SubmissionRecord]) -> str:
    ratios = server_offline_ratios(records)
    per_task: Dict[Task, List[float]] = {}
    for by_task in ratios.values():
        for task, ratio in by_task.items():
            per_task.setdefault(task, []).append(ratio)
    lines = [
        "| model | systems | min | mean | max |",
        "|---|---:|---:|---:|---:|",
    ]
    for task in Task:
        values = per_task.get(task)
        if not values:
            continue
        lines.append(
            f"| {task.value} | {len(values)} | {min(values):.2f} "
            f"| {statistics.mean(values):.2f} | {max(values):.2f} |"
        )
    return "\n".join(lines)


def spread_section(records: Sequence[SubmissionRecord]) -> str:
    rel = relative_performance(records)
    lines = [
        "| model | scenario | systems | spread (fastest/slowest) |",
        "|---|---|---:|---:|",
    ]
    for task in Task:
        for scenario in Scenario:
            group = rel.get((task, scenario))
            if not group:
                continue
            lines.append(
                f"| {task.value} | {scenario.short_name} | {len(group)} "
                f"| {max(group.values()):.1f}x |"
            )
    return "\n".join(lines)


def framework_section(systems: Sequence[FleetSystem]) -> str:
    matrix = framework_matrix(systems)
    columns = [ProcessorType.ASIC, ProcessorType.CPU, ProcessorType.DSP,
               ProcessorType.FPGA, ProcessorType.GPU]
    header = "| framework | " + " | ".join(c.value for c in columns) + " |"
    lines = [header, "|---|" + "---|" * len(columns)]
    for framework in sorted(matrix):
        marks = " | ".join(
            "X" if column in matrix[framework] else ""
            for column in columns
        )
        lines.append(f"| {framework} | {marks} |")
    return "\n".join(lines)


def results_listing(records: Sequence[SubmissionRecord],
                    limit: Optional[int] = None) -> str:
    lines = [
        "| system | processor | framework | model | scenario | metric |",
        "|---|---|---|---|---|---|",
    ]
    shown = records if limit is None else records[:limit]
    for record in shown:
        lines.append(
            f"| {record.system} | {record.processor.value} "
            f"| {record.framework} | {record.task.value} "
            f"| {record.scenario.short_name} | {_metric_text(record)} |"
        )
    if limit is not None and len(records) > limit:
        lines.append(f"| ... | | | | | ({len(records) - limit} more) |")
    return "\n".join(lines)


def generate_report(
    records: Sequence[SubmissionRecord],
    systems: Optional[Sequence[FleetSystem]] = None,
    title: str = "Fleet sweep report",
    listing_limit: Optional[int] = 40,
) -> str:
    """Render the full markdown report."""
    sections = [
        f"# {title}",
        f"\n{len(records)} closed-division results"
        + (f" from {len(systems)} systems" if systems else "") + ".",
        "\n## Coverage of models and scenarios (Table VI)\n",
        coverage_section(records),
        "\n## Results per model (Figure 5)\n",
        per_task_section(records),
        "\n## Results per processor architecture (Figure 7)\n",
        per_processor_section(records),
        "\n## Server-to-offline throughput ratios (Figure 6)\n",
        degradation_section(records),
        "\n## Relative performance spreads (Figure 8)\n",
        spread_section(records),
    ]
    if systems:
        sections += [
            "\n## Framework x architecture (Table VII)\n",
            framework_section(systems),
        ]
    sections += [
        "\n## Individual results\n",
        results_listing(records, limit=listing_limit),
        "",
    ]
    return "\n".join(sections)
