"""Experiment harnesses: capacity tuning, fleet sweeps, table formatters."""

from .multitenant import TenantSpec, all_tenants_valid, run_multitenant
from .report import generate_report
from .experiments import (
    FLEET_SCALE,
    SubmissionRecord,
    relative_performance,
    result_matrix,
    results_per_processor,
    results_per_task,
    run_fleet,
    run_submission,
    server_offline_ratios,
)
from .tuning import (
    FULL_SCALE,
    QUICK_SCALE,
    RunScale,
    TunedResult,
    find_max_multistream_n,
    find_max_server_qps,
    measure_offline,
    measure_single_stream,
)

__all__ = [
    "FLEET_SCALE",
    "FULL_SCALE",
    "QUICK_SCALE",
    "RunScale",
    "SubmissionRecord",
    "TenantSpec",
    "TunedResult",
    "find_max_multistream_n",
    "find_max_server_qps",
    "measure_offline",
    "measure_single_stream",
    "relative_performance",
    "result_matrix",
    "results_per_processor",
    "results_per_task",
    "all_tenants_valid",
    "generate_report",
    "run_fleet",
    "run_multitenant",
    "run_submission",
    "server_offline_ratios",
]
