"""Fleet experiment harness: run every planned submission (Section VI).

``run_fleet`` drives each system in the simulated fleet through its
planned (task, scenario) combinations with the appropriate measurement:
one run for single-stream and offline, a capacity search for server and
multistream.  The output is a list of :class:`SubmissionRecord` - the
closed-division result corpus from which the Section VI figures and
tables are regenerated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.config import Scenario, Task
from ..sut.device import ProcessorType
from ..sut.fleet import FleetSystem, build_fleet, task_workload
from ..sut.simulated import SimulatedSUT
from .tuning import (
    QUICK_SCALE,
    RunScale,
    find_max_multistream_n,
    find_max_server_qps,
    measure_offline,
    measure_single_stream,
)

#: Even lighter probes for the 166-submission sweep.
FLEET_SCALE = RunScale(query_count_factor=1.0 / 256.0, min_duration=2.0,
                       server_runs=1)


class _NullQSL:
    """Sample data is irrelevant for simulated-SUT performance runs."""

    name = "fleet-null"
    total_sample_count = 8192
    performance_sample_count = 1024

    def load_samples(self, indices) -> None:
        pass

    def unload_samples(self, indices) -> None:
        pass

    def get_sample(self, index: int) -> object:
        return None


@dataclass(frozen=True)
class SubmissionRecord:
    """One closed-division result."""

    system: str
    processor: ProcessorType
    framework: str
    category: str
    task: Task
    scenario: Scenario
    #: The scenario's Table II metric (latency s / streams / QPS / throughput).
    metric: float
    valid: bool

    @property
    def performance(self) -> float:
        """Higher-is-better figure used for Fig. 8 comparisons."""
        if self.scenario is Scenario.SINGLE_STREAM:
            return 1.0 / self.metric
        return self.metric


def run_submission(
    system: FleetSystem,
    task: Task,
    scenario: Scenario,
    scale: RunScale = FLEET_SCALE,
    seed: int = None,
) -> Optional[SubmissionRecord]:
    """Run one planned submission; ``None`` if the system cannot qualify."""
    workload = task_workload(task)
    qsl = _NullQSL()

    def make_sut() -> SimulatedSUT:
        return SimulatedSUT(
            system.device, workload, batch_window=system.batch_window
        )

    if scenario is Scenario.SINGLE_STREAM:
        result = measure_single_stream(make_sut, qsl, task, scale, seed=seed)
        metric = result.primary_metric if result.valid else None
    elif scenario is Scenario.OFFLINE:
        result = measure_offline(make_sut, qsl, task, scale, seed=seed)
        metric = result.primary_metric if result.valid else None
    elif scenario is Scenario.SERVER:
        tuned = find_max_server_qps(make_sut, qsl, task, scale,
                                    relative_tolerance=0.1, seed=seed)
        metric = tuned.value if tuned is not None else None
    elif scenario is Scenario.MULTI_STREAM:
        tuned = find_max_multistream_n(make_sut, qsl, task, scale,
                                       max_n=512, seed=seed)
        metric = tuned.value if tuned is not None else None
    else:  # pragma: no cover - exhaustive
        raise ValueError(f"unknown scenario {scenario}")

    if metric is None:
        return None
    return SubmissionRecord(
        system=system.name,
        processor=system.device.processor,
        framework=system.framework,
        category=system.category,
        task=task,
        scenario=scenario,
        metric=metric,
        valid=True,
    )


def run_fleet(
    systems: Optional[Sequence[FleetSystem]] = None,
    scale: RunScale = FLEET_SCALE,
    seed: int = None,
) -> List[SubmissionRecord]:
    """Run every planned submission across the fleet."""
    if systems is None:
        systems = build_fleet()
    records: List[SubmissionRecord] = []
    for system in systems:
        for task, scenario in system.submissions():
            record = run_submission(system, task, scenario, scale, seed=seed)
            if record is not None:
                records.append(record)
    return records


# -- result-corpus views used by the Section VI figures -----------------------

def result_matrix(records: Sequence[SubmissionRecord]
                  ) -> Dict[Task, Dict[Scenario, int]]:
    """Counts per (task, scenario) - the Table VI view."""
    matrix: Dict[Task, Dict[Scenario, int]] = {
        task: {scenario: 0 for scenario in Scenario} for task in Task
    }
    for record in records:
        matrix[record.task][record.scenario] += 1
    return matrix


def results_per_task(records: Sequence[SubmissionRecord]) -> Dict[Task, int]:
    """Counts per model - the Fig. 5 view."""
    counts = {task: 0 for task in Task}
    for record in records:
        counts[record.task] += 1
    return counts


def results_per_processor(records: Sequence[SubmissionRecord]
                          ) -> Dict[ProcessorType, Dict[Task, int]]:
    """Counts per processor architecture - the Fig. 7 view."""
    out: Dict[ProcessorType, Dict[Task, int]] = {}
    for record in records:
        per_task = out.setdefault(record.processor, {t: 0 for t in Task})
        per_task[record.task] += 1
    return out


def server_offline_ratios(records: Sequence[SubmissionRecord]
                          ) -> Dict[str, Dict[Task, float]]:
    """Server/offline throughput ratio per system and task (Fig. 6).

    Only systems with both a server and an offline result for a task
    contribute, mirroring the paper's 11-system subset.
    """
    server: Dict[Tuple[str, Task], float] = {}
    offline: Dict[Tuple[str, Task], float] = {}
    for record in records:
        key = (record.system, record.task)
        if record.scenario is Scenario.SERVER:
            server[key] = record.metric
        elif record.scenario is Scenario.OFFLINE:
            offline[key] = record.metric
    ratios: Dict[str, Dict[Task, float]] = {}
    for key in server:
        if key in offline and offline[key] > 0:
            system, task = key
            ratios.setdefault(system, {})[task] = server[key] / offline[key]
    return ratios


def relative_performance(records: Sequence[SubmissionRecord]
                         ) -> Dict[Tuple[Task, Scenario], Dict[str, float]]:
    """Per (task, scenario): performance relative to the slowest (Fig. 8)."""
    groups: Dict[Tuple[Task, Scenario], Dict[str, float]] = {}
    for record in records:
        groups.setdefault((record.task, record.scenario), {})[
            record.system
        ] = record.performance
    out: Dict[Tuple[Task, Scenario], Dict[str, float]] = {}
    for key, values in groups.items():
        floor = min(values.values())
        out[key] = {system: value / floor for system, value in values.items()}
    return out
