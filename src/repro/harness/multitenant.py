"""Multitenancy mode (paper Section IV-B, future work).

"The LoadGen is extensible to support more scenarios, such as a
multitenancy mode where the SUT must continuously serve multiple models
while maintaining QoS constraints."  This harness realizes that mode by
composing existing pieces: one scenario driver per tenant (each with its
own traffic, log, and validity rules) all feeding a shared device whose
engines serve every tenant's queue.

Batches never mix tenants (different models cannot share a dispatch),
so co-location costs are real: each tenant's sustainable rate under its
own QoS bound is lower than it would be with the device to itself -
quantified by ``benchmarks/test_ext_multitenant.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..core.config import TestMode, TestSettings
from ..core.events import EventLoop, RunAbortedError, VirtualClock
from ..core.loadgen import LoadGenResult
from ..core.logging import QueryLog
from ..core.metrics import compute_metrics, empty_metrics
from ..core.query import Query, QuerySampleResponse
from ..core.sampler import SampleSelector
from ..core.scenarios import PerformanceSource, make_driver
from ..core.sut import SutBase
from ..core.validation import validate_run
from ..sut.device import DeviceModel
from ..sut.simulated import WorkloadProfile


@dataclass(frozen=True)
class TenantSpec:
    """One co-located model: its workload and its scenario settings."""

    name: str
    workload: WorkloadProfile
    settings: TestSettings


@dataclass
class _TenantChunk:
    tenant: "_TenantFacade"
    query: Query
    sample_count: int
    max_multiplier: float
    arrival: float


class _SharedEnginePool:
    """Device engines serving per-tenant FIFO queues.

    Dispatch policy: take the globally oldest queued chunk, then fill
    the batch with further chunks *of the same tenant* (models cannot
    share a dispatch), up to ``max_batch`` samples.
    """

    def __init__(self, device: DeviceModel, loop: EventLoop,
                 seed: int = 77) -> None:
        self.device = device
        self.loop = loop
        self._queue: List[_TenantChunk] = []
        self._idle_engines = device.engines
        self._rng = np.random.default_rng(seed)
        #: (tenant name, batch sample count) per dispatch, for tests.
        self.dispatch_trace: List[Tuple[str, int]] = []

    def submit(self, tenant: "_TenantFacade", query: Query) -> None:
        workload = tenant.workload
        if workload.variability > 0.0:
            sigma = workload.variability
            draws = self._rng.lognormal(0.0, sigma, query.sample_count)
            multipliers = np.sort(draws / np.exp(sigma * sigma / 2.0))
        else:
            multipliers = np.ones(query.sample_count)
        max_batch = self.device.max_batch
        chunks = 0
        for start in range(0, query.sample_count, max_batch):
            part = multipliers[start:start + max_batch]
            self._queue.append(_TenantChunk(
                tenant=tenant, query=query, sample_count=len(part),
                max_multiplier=float(part[-1]), arrival=self.loop.now,
            ))
            chunks += 1
        tenant.pending_chunks[query.id] = chunks
        self._try_dispatch()

    def _try_dispatch(self) -> None:
        while self._queue and self._idle_engines > 0:
            self._dispatch()

    def _dispatch(self) -> None:
        head = self._queue.pop(0)
        batch = [head]
        capacity = self.device.max_batch - head.sample_count
        remaining: List[_TenantChunk] = []
        for chunk in self._queue:
            if (chunk.tenant is head.tenant
                    and chunk.sample_count <= capacity):
                batch.append(chunk)
                capacity -= chunk.sample_count
            else:
                remaining.append(chunk)
        self._queue = remaining

        samples = sum(c.sample_count for c in batch)
        worst = max(c.max_multiplier for c in batch)
        workload = head.tenant.workload
        duration = self.device.service_time(
            workload.gops_per_sample * worst, samples, workload.motif)
        self._idle_engines -= 1
        self.dispatch_trace.append((head.tenant.name, samples))
        self.loop.schedule_after(
            duration, lambda batch=batch: self._finish(batch))

    def _finish(self, batch: List[_TenantChunk]) -> None:
        self._idle_engines += 1
        for chunk in batch:
            tenant = chunk.tenant
            query = chunk.query
            tenant.pending_chunks[query.id] -= 1
            if tenant.pending_chunks[query.id] == 0:
                del tenant.pending_chunks[query.id]
                responses = [
                    QuerySampleResponse(s.id, None) for s in query.samples
                ]
                tenant.complete(query, responses)
        self._try_dispatch()


class _TenantFacade(SutBase):
    """The per-tenant SUT handle the scenario driver talks to."""

    def __init__(self, name: str, workload: WorkloadProfile,
                 pool: _SharedEnginePool) -> None:
        super().__init__(name)
        self.workload = workload
        self.pool = pool
        self.pending_chunks: Dict[int, int] = {}

    def issue_query(self, query: Query) -> None:
        self.pool.submit(self, query)

    def flush(self) -> None:
        self.pool._try_dispatch()


def run_multitenant(
    device: DeviceModel,
    tenants: List[TenantSpec],
    pool_size: int = 1_024,
) -> Dict[str, LoadGenResult]:
    """Drive every tenant's scenario concurrently on one shared device.

    Returns one standard :class:`LoadGenResult` per tenant, each
    validated against its own scenario's rules.
    """
    if not tenants:
        raise ValueError("at least one tenant is required")
    names = [t.name for t in tenants]
    if len(set(names)) != len(names):
        raise ValueError(f"tenant names must be unique: {names}")

    loop = EventLoop(VirtualClock())
    pool = _SharedEnginePool(device, loop)
    drivers = []
    logs: Dict[str, QueryLog] = {}
    for spec in tenants:
        if spec.settings.mode is not TestMode.PERFORMANCE:
            raise ValueError(
                f"tenant {spec.name}: multitenant runs are performance-mode"
            )
        facade = _TenantFacade(spec.name, spec.workload, pool)
        log = QueryLog()
        source = PerformanceSource(
            SampleSelector(range(pool_size), seed=spec.settings.seed))
        driver = make_driver(loop, spec.settings, facade, source, log)
        facade.start_run(loop, driver.handle_completion)
        drivers.append((spec, driver))
        logs[spec.name] = log

    for _spec, driver in drivers:
        driver.start()
    try:
        loop.run()
    except RunAbortedError as abort:
        for _spec, driver in drivers:
            driver.stats.aborted = str(abort)

    results: Dict[str, LoadGenResult] = {}
    for spec, driver in drivers:
        log = logs[spec.name]
        metrics = (
            compute_metrics(log, spec.settings)
            if log.completed_records()
            else empty_metrics(log, spec.settings)
        )
        results[spec.name] = LoadGenResult(
            settings=spec.settings,
            log=log,
            metrics=metrics,
            validity=validate_run(log, spec.settings, driver.stats),
            loaded_indices=list(range(pool_size)),
            stats=driver.stats,
        )
    return results


def all_tenants_valid(results: Dict[str, LoadGenResult]) -> bool:
    """The multitenancy pass criterion: every tenant held its QoS."""
    return all(result.valid for result in results.values())
