"""Search harnesses for the tuned scenario metrics.

The server and multistream metrics are *capacities*: the highest Poisson
rate (resp. stream count N) at which the run is still valid.  Real
submitters tune these by repeated runs; this module automates that with
geometric bracketing plus bisection, re-running the LoadGen at each
probe.

``RunScale`` lets experiments trade statistical weight for wall time:
``full`` applies the paper's exact Table IV/V minimums (270,336 queries
for vision server runs); ``quick`` keeps every rule but scales the
minimum query counts and duration down - the default for the benchmark
sweeps, which probe dozens of (system, task, scenario) combos.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from ..core.config import (
    SERVER_REQUIRED_RUNS,
    Scenario,
    Task,
    TestMode,
    TestSettings,
)
from ..core.loadgen import LoadGenResult, run_benchmark
from ..core.sut import QuerySampleLibrary, SystemUnderTest

#: Factory producing a fresh SUT for every probe run (state isolation).
SutFactory = Callable[[], SystemUnderTest]


@dataclass(frozen=True)
class RunScale:
    """Scale factors applied to the rule minimums for probe runs."""

    query_count_factor: float = 1.0
    min_duration: Optional[float] = None
    server_runs: int = SERVER_REQUIRED_RUNS

    def apply(self, settings: TestSettings) -> TestSettings:
        overrides = {}
        if self.query_count_factor != 1.0:
            scaled = max(
                64, int(settings.resolved_min_query_count
                        * self.query_count_factor)
            )
            overrides["min_query_count"] = scaled
            if settings.scenario is Scenario.OFFLINE:
                # Keep offline batches large enough that any device's
                # max_batch is still saturated (the real run's single
                # 24,576-sample query always is).
                overrides["offline_sample_count"] = max(
                    1024, int(settings.resolved_offline_samples
                              * self.query_count_factor)
                )
        if self.min_duration is not None:
            overrides["min_duration"] = self.min_duration
        return settings.with_overrides(**overrides) if overrides else settings


FULL_SCALE = RunScale()
#: ~1/64th of the full query counts and a 2-second floor: seconds per
#: probe instead of minutes, same validity machinery.
QUICK_SCALE = RunScale(query_count_factor=1.0 / 64.0, min_duration=2.0,
                       server_runs=2)


@dataclass
class TunedResult:
    """Outcome of a capacity search."""

    value: float
    result: LoadGenResult
    probes: int


def _is_stationary(result: LoadGenResult, bound: float) -> bool:
    """Reject runs whose latency is still ramping (overloaded queue).

    A short scaled-down run can stay under the latency bound while the
    queue grows without bound; the full 60-second run would catch this
    via the bound itself.  Compare the first and last latency deciles:
    in steady state they agree, under overload the last decile is far
    larger.
    """
    records = result.log.completed_records()
    if len(records) < 100:
        return True
    records = sorted(records, key=lambda r: r.issue_time)
    decile = max(len(records) // 10, 1)
    first = sum(r.latency for r in records[:decile]) / decile
    last = sum(r.latency for r in records[-decile:]) / decile
    return last <= 2.0 * first + 0.05 * bound


def _probe_server(sut_factory: SutFactory, qsl: QuerySampleLibrary,
                  settings: TestSettings, qps: float,
                  runs: int) -> Optional[LoadGenResult]:
    """Run the server scenario ``runs`` times at ``qps``.

    Section III-D: the reported server result is the minimum of five
    runs; a probe passes only if every run is valid.  Returns the result
    of the last run, or ``None`` if any run was invalid.
    """
    last: Optional[LoadGenResult] = None
    bound = settings.resolved_server_latency_bound
    for run_index in range(runs):
        probe_settings = settings.with_overrides(
            server_target_qps=qps,
            seed=settings.seed + run_index,
        )
        result = run_benchmark(sut_factory(), qsl, probe_settings)
        if not result.valid or not _is_stationary(result, bound):
            return None
        last = result
    return last


def find_max_server_qps(
    sut_factory: SutFactory,
    qsl: QuerySampleLibrary,
    task: Task,
    scale: RunScale = QUICK_SCALE,
    start_qps: float = 1.0,
    relative_tolerance: float = 0.05,
    max_probes: int = 40,
    min_qps: float = 1e-3,
    seed: int = None,
) -> Optional[TunedResult]:
    """Highest Poisson QPS at which the server scenario stays valid.

    Returns ``None`` when no rate down to ``min_qps`` is valid - the
    system cannot meet the task's QoS bound at all and simply would not
    submit this scenario (cf. the sparse columns of Table VI).
    """
    settings = TestSettings(scenario=Scenario.SERVER, task=task,
                            mode=TestMode.PERFORMANCE)
    if seed is not None:
        settings = settings.with_overrides(seed=seed)
    settings = scale.apply(settings)

    probes = 0

    def valid_at(qps: float) -> Optional[LoadGenResult]:
        nonlocal probes
        probes += 1
        return _probe_server(sut_factory, qsl, settings, qps,
                             scale.server_runs)

    # Bracket: grow until invalid, shrink until valid.
    lo_result = valid_at(start_qps)
    if lo_result is None:
        hi = start_qps
        lo = None
        while probes < max_probes and hi / 4.0 >= min_qps:
            candidate = hi / 4.0
            result = valid_at(candidate)
            if result is not None:
                lo, lo_result = candidate, result
                break
            hi = candidate
        if lo is None:
            return None
    else:
        lo = start_qps
        hi = start_qps
        while probes < max_probes:
            hi = hi * 4.0
            result = valid_at(hi)
            if result is None:
                break
            lo, lo_result = hi, result
        else:
            raise RuntimeError("server rate search did not bracket a failure")

    # Bisect [lo valid, hi invalid].
    while hi / lo > 1.0 + relative_tolerance and probes < max_probes:
        mid = math.sqrt(lo * hi)
        result = valid_at(mid)
        if result is None:
            hi = mid
        else:
            lo, lo_result = mid, result
    return TunedResult(value=lo, result=lo_result, probes=probes)


def find_max_multistream_n(
    sut_factory: SutFactory,
    qsl: QuerySampleLibrary,
    task: Task,
    scale: RunScale = QUICK_SCALE,
    max_n: int = 4096,
    seed: int = None,
) -> Optional[TunedResult]:
    """Largest integer streams-per-query N that stays valid.

    Returns ``None`` when even N=1 is invalid (the system cannot keep up
    with the arrival interval at all - such systems simply do not submit
    multistream results, cf. the sparse MS column of Table VI).
    """
    settings = TestSettings(scenario=Scenario.MULTI_STREAM, task=task,
                            mode=TestMode.PERFORMANCE)
    if seed is not None:
        settings = settings.with_overrides(seed=seed)
    settings = scale.apply(settings)

    probes = 0

    def run_at(n: int) -> Optional[LoadGenResult]:
        nonlocal probes
        probes += 1
        result = run_benchmark(
            sut_factory(), qsl,
            settings.with_overrides(multistream_samples_per_query=n),
        )
        return result if result.valid else None

    best: Optional[Tuple[int, LoadGenResult]] = None
    lo = 1
    result = run_at(lo)
    if result is None:
        return None
    best = (lo, result)

    hi = 2
    while hi <= max_n:
        result = run_at(hi)
        if result is None:
            break
        best = (hi, result)
        lo = hi
        hi *= 2
    else:
        return TunedResult(value=float(best[0]), result=best[1],
                           probes=probes)

    # Bisect integers in (lo valid, hi invalid).
    low, high = lo, hi
    while high - low > 1:
        mid = (low + high) // 2
        result = run_at(mid)
        if result is None:
            high = mid
        else:
            low = mid
            best = (mid, result)
    return TunedResult(value=float(best[0]), result=best[1], probes=probes)


def measure_offline(
    sut_factory: SutFactory,
    qsl: QuerySampleLibrary,
    task: Task,
    scale: RunScale = QUICK_SCALE,
    seed: int = None,
) -> LoadGenResult:
    """One offline run; the metric is its measured throughput."""
    settings = TestSettings(scenario=Scenario.OFFLINE, task=task,
                            mode=TestMode.PERFORMANCE)
    if seed is not None:
        settings = settings.with_overrides(seed=seed)
    return run_benchmark(sut_factory(), qsl, scale.apply(settings))


def measure_single_stream(
    sut_factory: SutFactory,
    qsl: QuerySampleLibrary,
    task: Task,
    scale: RunScale = QUICK_SCALE,
    seed: int = None,
) -> LoadGenResult:
    """One single-stream run; the metric is its 90th-pct latency."""
    settings = TestSettings(scenario=Scenario.SINGLE_STREAM, task=task,
                            mode=TestMode.PERFORMANCE)
    if seed is not None:
        settings = settings.with_overrides(seed=seed)
    return run_benchmark(sut_factory(), qsl, scale.apply(settings))
