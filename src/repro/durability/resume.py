"""Deterministic resume of an interrupted, journaled run.

The LoadGen is a pure function of its settings seed: two runs with the
same ``TestSettings`` issue the same queries with the same ids at the
same virtual times.  Resume leans on that purity — instead of trying to
restore the event loop's heap mid-flight, :func:`resume_run` re-runs the
scenario from t=0 against a :class:`ReplaySUT`:

* queries whose terminal record is already in the journal are *replayed*
  — the recorded completion (or failure) is scheduled at its journaled
  virtual time, and the real SUT never sees the query;
* queries the interrupted run never resolved are *recomputed* — they are
  forwarded to the real SUT exactly as a fresh run would.

Because issue times and latencies are reproduced exactly, the resumed
run's ``LoadGenResult`` is identical to an uninterrupted golden run
(asserted by the chaos smoke and ``benchmarks/test_ext_durability.py``).
Exactness requires the deterministic virtual clock and a backend whose
per-query timing is a pure function of the query (the recomputed tail
re-measures under a wall clock or a batch-sensitive backend); resume
still completes correctly there, it just re-times the tail.

Divergence — a journal from different settings, a replayed query whose
sample ids changed, journaled completions that are never re-issued — is
detected and raised as a classified
:class:`~repro.durability.journal.ResumeError` rather than silently
producing a half-wrong result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.events import EventLoop
from ..core.loadgen import LoadGenResult, run_benchmark
from ..core.query import Query, QuerySampleResponse
from ..core.sut import QuerySampleLibrary, Responder, SutBase, SystemUnderTest
from ..metrics import MetricsRegistry
from .journal import (
    FsyncPolicy,
    JournalState,
    ResumeError,
    RunJournal,
    _sample_ids_crc,
    read_run_journal,
)


@dataclass
class ReplayStats:
    """What the replay layer did during one resumed run."""

    replayed_completions: int = 0
    replayed_failures: int = 0
    recomputed_queries: int = 0
    divergence: Optional[str] = None


class _ReplayInstruments:
    """Live ``durability_*`` counters for the replay layer."""

    __slots__ = ("completions", "failures", "recomputed")

    def __init__(self, registry: MetricsRegistry) -> None:
        self.completions = registry.counter(
            "durability_replayed_completions_total",
            "Completions replayed from the journal instead of the SUT")
        self.failures = registry.counter(
            "durability_replayed_failures_total",
            "Recorded failures replayed from the journal")
        self.recomputed = registry.counter(
            "durability_recomputed_queries_total",
            "Queries the interrupted run never resolved, re-sent to the SUT")


class ReplaySUT(SutBase):
    """Answers journaled queries from the journal, forwards the rest."""

    def __init__(
        self,
        inner: SystemUnderTest,
        state: JournalState,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        super().__init__(f"replay[{inner.name}]")
        self.inner = inner
        self._issued = dict(state.issued)
        self._completions = dict(state.completions)
        self._failures = dict(state.failures)
        self.stats = ReplayStats()
        self._m = (_ReplayInstruments(registry)
                   if registry is not None else None)

    def start_run(self, loop: EventLoop, responder: Responder) -> None:
        super().start_run(loop, responder)
        # Inner completions flow straight through to the referee; the
        # replay layer only intervenes at issue time.
        self.inner.start_run(loop, responder)

    def issue_query(self, query: Query) -> None:
        entry = self._issued.get(query.id)
        if entry is not None:
            if (entry.sample_count != query.sample_count
                    or entry.ids_crc != _sample_ids_crc(query)):
                self.stats.divergence = (
                    f"query {query.id} was journaled with "
                    f"{entry.sample_count} samples (ids crc "
                    f"{entry.ids_crc:#010x}); the resumed run issued a "
                    "different query under the same id - settings or "
                    "code diverged from the journaled run")
                raise ResumeError("replay-divergence", self.stats.divergence)
        completion = self._completions.pop(query.id, None)
        if completion is not None:
            time, pairs = completion
            if pairs is None:
                responses = [QuerySampleResponse(s.id, None)
                             for s in query.samples]
            else:
                responses = [QuerySampleResponse(sid, data)
                             for sid, data in pairs]
            self.loop.schedule(
                max(time, self.loop.now),
                lambda q=query, r=responses: self.complete(q, r))
            self.stats.replayed_completions += 1
            if self._m:
                self._m.completions.inc()
            return
        failure = self._failures.pop(query.id, None)
        if failure is not None:
            time, reason = failure
            self.loop.schedule(
                max(time, self.loop.now),
                lambda q=query, msg=reason: self.fail(q, msg))
            self.stats.replayed_failures += 1
            if self._m:
                self._m.failures.inc()
            return
        self.stats.recomputed_queries += 1
        if self._m:
            self._m.recomputed.inc()
        self.inner.issue_query(query)

    def flush(self) -> None:
        self.inner.flush()

    @property
    def leftover(self) -> int:
        """Journaled terminal records the run never re-issued."""
        return len(self._completions) + len(self._failures)


def resume_run(
    path: str,
    sut: SystemUnderTest,
    qsl: QuerySampleLibrary,
    *,
    registry: Optional[MetricsRegistry] = None,
    snapshot_period: Optional[float] = None,
    fsync: "FsyncPolicy | str" = FsyncPolicy.NEVER,
    fsync_interval: int = 64,
    checkpoint_period: Optional[float] = 0.5,
) -> LoadGenResult:
    """Resume an interrupted journaled run and return its full result.

    Reads the journal at ``path`` (tolerating a torn tail), re-runs the
    journaled ``TestSettings`` against a :class:`ReplaySUT` wrapping
    ``sut``, and appends the continuation's events to the same journal.
    The journal is sealed with an ``end`` record on success, so the file
    remains a complete, auditable record of the whole (interrupted +
    resumed) run.

    Raises :class:`~repro.durability.journal.JournalError` /
    :class:`~repro.durability.journal.ResumeError` with a classified
    ``reason`` when the journal is missing, unreadable, from another
    format version, or when replay diverges from the journaled run.
    """
    state = read_run_journal(path)
    journal = RunJournal(
        path, fsync=fsync, fsync_interval=fsync_interval,
        checkpoint_period=checkpoint_period, registry=registry)
    journal.resume_from(state)
    if registry is not None:
        registry.counter(
            "durability_resumes_total",
            "Times a journaled run was resumed").inc()
    replay = ReplaySUT(sut, state, registry=registry)
    result = run_benchmark(
        replay, qsl, state.settings,
        log_sample_probability=state.log_sample_probability,
        registry=registry, snapshot_period=snapshot_period,
        journal=journal,
    )
    if replay.stats.divergence is not None:
        raise ResumeError("replay-divergence", replay.stats.divergence)
    if replay.leftover:
        missing = sorted(
            list(replay._completions) + list(replay._failures))[:5]
        raise ResumeError(
            "replay-divergence",
            f"{replay.leftover} journaled terminal records were never "
            f"re-issued by the resumed run (query ids {missing}...) - "
            "the journal belongs to different settings or code")
    return result


def run_fingerprint(result: LoadGenResult) -> tuple:
    """Order-stable digest of everything a run result asserts.

    Two runs are "identical" for resume purposes when their fingerprints
    match: every query's identity, sample ids, issue/completion/failure
    times, failure reasons, logged response payloads, the computed
    metrics, and the validity verdict.
    """
    records = tuple(
        (
            r.query.id,
            tuple(s.id for s in r.query.samples),
            tuple(r.query.sample_indices),
            r.issue_time,
            r.scheduled_time,
            r.completion_time,
            r.failure_time,
            r.failure_reason,
            (tuple((resp.sample_id, repr(resp.data))
                   for resp in r.responses)
             if r.responses is not None else None),
        )
        for r in result.log.records()
    )
    return (
        records,
        result.metrics.primary_metric,
        result.metrics.query_count,
        result.metrics.sample_count,
        round(result.metrics.latency_p90, 12),
        round(result.metrics.latency_p99, 12),
        result.validity.valid,
        tuple(result.validity.reasons),
    )
