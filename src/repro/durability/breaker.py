"""Circuit breaker: failure-rate tripping, timed recovery probes.

The serving path's self-healing layer needs a fast, local decision:
"is the primary backend healthy enough to send this query to?".  The
:class:`CircuitBreaker` answers it with the classic three-state machine:

* **closed** — traffic flows; outcomes feed a sliding window.  When the
  window holds at least ``min_samples`` outcomes and the failure rate
  reaches ``failure_threshold``, the breaker trips open.
* **open** — every admission is rejected instantly (no deadline burned,
  no queue built) until ``open_duration`` has elapsed on the run clock.
* **half-open** — up to ``half_open_probes`` trial queries are admitted;
  ``half_open_probes`` consecutive successes close the breaker, a single
  probe failure re-opens it for another ``open_duration``.

Time comes from an injected ``clock`` callable (the run loop's ``now``),
so breaker behavior is as deterministic and virtual-time-fast as the
rest of the stack.  State transitions are recorded with timestamps and
mirrored to the ``breaker_*`` metric families by the self-healing SUT
(``repro.durability.healing``); see ``docs/durability.md`` for the state
machine diagram.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, List, Optional, Tuple


class BreakerState(enum.Enum):
    """The three classic circuit-breaker states."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


#: Numeric encoding of :class:`BreakerState` for the ``breaker_state``
#: gauge (Prometheus convention: enum states export as small integers).
STATE_CODES = {
    BreakerState.CLOSED: 0,
    BreakerState.OPEN: 1,
    BreakerState.HALF_OPEN: 2,
}


@dataclass(frozen=True)
class BreakerPolicy:
    """Tuning knobs for :class:`CircuitBreaker`."""

    #: Sliding outcome window size (most recent admissions, closed state).
    window: int = 20
    #: Failure rate in the window that trips the breaker open.
    failure_threshold: float = 0.5
    #: Minimum outcomes in the window before the rate is trusted.
    min_samples: int = 10
    #: Seconds the breaker stays open before probing (run-clock time).
    open_duration: float = 1.0
    #: Probe admissions in half-open; this many consecutive successes
    #: close the breaker, one failure re-opens it.
    half_open_probes: int = 3

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")
        if not 0.0 < self.failure_threshold <= 1.0:
            raise ValueError(
                "failure_threshold must be in (0, 1], got "
                f"{self.failure_threshold}")
        if not 1 <= self.min_samples <= self.window:
            raise ValueError(
                f"min_samples must be in [1, window], got {self.min_samples}")
        if self.open_duration <= 0:
            raise ValueError(
                f"open_duration must be positive, got {self.open_duration}")
        if self.half_open_probes < 1:
            raise ValueError(
                f"half_open_probes must be >= 1, got {self.half_open_probes}")


@dataclass
class BreakerStats:
    """Cumulative admission/outcome accounting."""

    admitted: int = 0
    rejected: int = 0
    probes: int = 0
    opens: int = 0
    closes: int = 0
    recorded_failures: int = 0
    recorded_successes: int = 0


class CircuitBreaker:
    """Failure-rate circuit breaker on an injected clock.

    Single-writer like the rest of the run machinery: all calls happen
    on the run's event loop, so no locking is needed.
    """

    def __init__(
        self,
        policy: Optional[BreakerPolicy] = None,
        *,
        clock: Callable[[], float],
        on_transition: Optional[
            Callable[[float, BreakerState, BreakerState], None]] = None,
    ) -> None:
        self.policy = policy if policy is not None else BreakerPolicy()
        self._clock = clock
        self._on_transition = on_transition
        self.state = BreakerState.CLOSED
        self.stats = BreakerStats()
        #: ``(time, source_state, target_state)`` transition log.
        self.transitions: List[Tuple[float, BreakerState, BreakerState]] = []
        self._window: Deque[bool] = deque(maxlen=self.policy.window)
        self._opened_at = 0.0
        self._probes_inflight = 0
        self._probe_successes = 0

    # -- admission --------------------------------------------------------------

    def admit(self) -> str:
        """Decide one admission: ``"admit"``, ``"probe"``, or ``"reject"``.

        A ``"probe"`` admission must be reported back via
        :meth:`record_success`/:meth:`record_failure` with ``probe=True``
        so the half-open bookkeeping closes or re-opens the breaker.
        """
        if self.state is BreakerState.OPEN:
            if self._clock() - self._opened_at >= self.policy.open_duration:
                self._transition(BreakerState.HALF_OPEN)
            else:
                self.stats.rejected += 1
                return "reject"
        if self.state is BreakerState.HALF_OPEN:
            if self._probes_inflight < self.policy.half_open_probes:
                self._probes_inflight += 1
                self.stats.probes += 1
                return "probe"
            self.stats.rejected += 1
            return "reject"
        self.stats.admitted += 1
        return "admit"

    @property
    def failure_rate(self) -> float:
        """Failure fraction of the current closed-state window."""
        if not self._window:
            return 0.0
        return sum(1 for ok in self._window if not ok) / len(self._window)

    # -- outcomes ---------------------------------------------------------------

    def record_success(self, *, probe: bool = False) -> None:
        self.stats.recorded_successes += 1
        if probe and self.state is BreakerState.HALF_OPEN:
            self._probes_inflight = max(0, self._probes_inflight - 1)
            self._probe_successes += 1
            if self._probe_successes >= self.policy.half_open_probes:
                self._transition(BreakerState.CLOSED)
                self.stats.closes += 1
        elif self.state is BreakerState.CLOSED:
            self._window.append(True)
        # Stragglers arriving in other states carry no signal: the
        # breaker already acted on fresher information.

    def record_failure(self, *, probe: bool = False) -> None:
        self.stats.recorded_failures += 1
        if probe and self.state is BreakerState.HALF_OPEN:
            self._trip()
        elif self.state is BreakerState.CLOSED:
            self._window.append(False)
            if (len(self._window) >= self.policy.min_samples
                    and self.failure_rate >= self.policy.failure_threshold):
                self._trip()

    # -- internals --------------------------------------------------------------

    def _trip(self) -> None:
        self._transition(BreakerState.OPEN)
        self.stats.opens += 1

    def _transition(self, target: BreakerState) -> None:
        source, self.state = self.state, target
        now = self._clock()
        if target is BreakerState.OPEN:
            self._opened_at = now
        self._window.clear()
        self._probes_inflight = 0
        self._probe_successes = 0
        self.transitions.append((now, source, target))
        if self._on_transition is not None:
            self._on_transition(now, source, target)
