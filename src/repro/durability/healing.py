"""Self-healing serving path: breaker-guarded primary, hedged standby.

``SelfHealingSUT`` wraps a primary backend (typically a ``NetworkSUT``
or ``ParallelSUT``) and keeps the run alive through backend outages:

* every query carries a per-query deadline (``attempt_timeout``);
* primary outcomes feed a :class:`~repro.durability.breaker.CircuitBreaker`
  — while it is open, queries are *shed* in O(1) (failed fast with a
  classified reason) or, when a ``standby`` backend is configured,
  rerouted to the standby without burning the deadline on a dead
  primary;
* with ``hedge_delay`` set, a query that the primary has not answered
  after that long is *hedged*: re-issued to the standby under the same
  query id, first clean answer wins, the shared
  :class:`~repro.faults.filtering.CompletionFilter` absorbs the loser;
* a primary failure (``QueryFailure`` or malformed response set) fails
  over to the standby immediately instead of waiting out the deadline.

Health checking is passive-first: the breaker's sliding outcome window
is the health signal, and its half-open probe admissions are the
recovery checks.  All timing runs on the run's event loop, so the whole
healing path is deterministic under the virtual clock.  The layer emits
the ``breaker_*`` metric families; see ``docs/durability.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.events import EventHandle, EventLoop
from ..core.query import Query, StreamChunk
from ..core.sut import Responder, SutBase, SystemUnderTest
from ..faults.filtering import CompletionFilter
from ..metrics import MetricsRegistry
from .breaker import STATE_CODES, BreakerPolicy, BreakerState, CircuitBreaker


@dataclass
class HealingStats:
    """What the healing layer did during one run."""

    shed_queries: int = 0
    standby_queries: int = 0
    hedged_queries: int = 0
    failovers: int = 0
    hedge_wins: int = 0
    standby_completions: int = 0
    primary_failures: int = 0
    deadline_failures: int = 0
    filtered_completions: int = 0
    probe_queries: int = 0

    def summary(self) -> str:
        return (
            f"shed={self.shed_queries} standby={self.standby_queries} "
            f"hedged={self.hedged_queries} failovers={self.failovers} "
            f"hedge_wins={self.hedge_wins} "
            f"primary_failures={self.primary_failures} "
            f"deadlines={self.deadline_failures}"
        )


class _BreakerInstruments:
    """Live ``breaker_*`` metric families for one healing layer."""

    __slots__ = ("transitions", "rejected", "probes", "hedges",
                 "standby", "failures")

    def __init__(self, registry: MetricsRegistry,
                 state_fn) -> None:
        registry.gauge(
            "breaker_state",
            "Circuit breaker state (0=closed, 1=open, 2=half_open)",
            fn=state_fn)
        self.transitions = registry.counter(
            "breaker_transitions_total",
            "Circuit breaker state transitions",
            labels=("source", "target"))
        self.rejected = registry.counter(
            "breaker_rejected_queries_total",
            "Queries rejected fast (shed or rerouted) while open")
        self.probes = registry.counter(
            "breaker_probe_queries_total",
            "Half-open trial queries admitted to the primary")
        self.hedges = registry.counter(
            "breaker_hedged_queries_total",
            "Queries hedged or failed over to the standby backend")
        self.standby = registry.counter(
            "breaker_standby_completions_total",
            "Queries answered by the standby backend")
        self.failures = registry.counter(
            "breaker_recorded_failures_total",
            "Primary outcomes recorded as failures by the breaker")


@dataclass
class _Guarded:
    """Per-query in-flight state."""

    query: Query
    routed: str  # "primary" | "standby"
    probe: bool = False
    hedged: bool = False
    primary_dead: bool = False
    standby_dead: bool = False
    #: Run time of admission - anchors the total budget when streaming
    #: progress re-arms the deadline.
    started: float = 0.0
    deadline_timer: Optional[EventHandle] = None
    hedge_timer: Optional[EventHandle] = None

    def cancel_timers(self) -> None:
        if self.deadline_timer is not None:
            self.deadline_timer.cancel()
            self.deadline_timer = None
        if self.hedge_timer is not None:
            self.hedge_timer.cancel()
            self.hedge_timer = None


class SelfHealingSUT(SutBase):
    """Circuit breaker + hedged standby around a primary backend."""

    def __init__(
        self,
        primary: SystemUnderTest,
        standby: Optional[SystemUnderTest] = None,
        *,
        policy: Optional[BreakerPolicy] = None,
        attempt_timeout: float = 0.100,
        total_timeout: Optional[float] = None,
        hedge_delay: Optional[float] = None,
        name: Optional[str] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        super().__init__(name or f"healing[{primary.name}]")
        if attempt_timeout <= 0:
            raise ValueError(
                f"attempt_timeout must be positive, got {attempt_timeout}")
        if total_timeout is not None and total_timeout < attempt_timeout:
            raise ValueError(
                "total_timeout must be >= attempt_timeout, got "
                f"{total_timeout} < {attempt_timeout}")
        if hedge_delay is not None:
            if standby is None:
                raise ValueError("hedge_delay requires a standby backend")
            if not 0 < hedge_delay < attempt_timeout:
                raise ValueError(
                    "hedge_delay must be in (0, attempt_timeout), got "
                    f"{hedge_delay}")
        self.primary = primary
        self.standby = standby
        self.policy = policy if policy is not None else BreakerPolicy()
        self.attempt_timeout = attempt_timeout
        #: Hard per-query wall across failovers and hedges.  The healing
        #: layer arms exactly one deadline per query (failover never
        #: rearms it), so the per-query bound is
        #: ``min(attempt_timeout, total_timeout)`` by construction -
        #: pass the run's ``watchdog_timeout`` (minus headroom) to make
        #: the layer deadline-safe regardless of how the two knobs are
        #: tuned relative to each other.
        self.total_timeout = total_timeout
        self.hedge_delay = hedge_delay
        self.stats = HealingStats()
        self._filter = CompletionFilter()
        self._breaker: Optional[CircuitBreaker] = None
        self._m = (
            _BreakerInstruments(registry, self._state_code)
            if registry is not None else None
        )

    def _state_code(self) -> float:
        if self._breaker is None:
            return float(STATE_CODES[BreakerState.CLOSED])
        return float(STATE_CODES[self._breaker.state])

    @property
    def breaker(self) -> CircuitBreaker:
        if self._breaker is None:
            raise RuntimeError("start_run was never called on this SUT")
        return self._breaker

    # -- lifecycle --------------------------------------------------------------

    def start_run(self, loop: EventLoop, responder: Responder) -> None:
        super().start_run(loop, responder)
        self.stats = HealingStats()
        self._filter = CompletionFilter()
        self._breaker = CircuitBreaker(
            self.policy, clock=lambda: loop.now,
            on_transition=self._on_transition)
        self.primary.start_run(loop, self._from_primary)
        if self.standby is not None:
            self.standby.start_run(loop, self._from_standby)

    def _on_transition(self, time: float, source: BreakerState,
                       target: BreakerState) -> None:
        if self._m:
            self._m.transitions.labels(
                source=source.value, target=target.value).inc()

    def issue_query(self, query: Query) -> None:
        verdict = self.breaker.admit()
        if verdict == "reject":
            if self._m:
                self._m.rejected.inc()
            if self.standby is not None:
                # Shed *from the primary*: the standby carries the load
                # while the breaker waits out the outage.
                state = self._filter.admit(
                    query, _Guarded(query=query, routed="standby",
                                    started=self.loop.now))
                self.stats.standby_queries += 1
                self._arm_deadline(state)
                self.standby.issue_query(query)
            else:
                self.stats.shed_queries += 1
                self.fail(
                    query,
                    "circuit breaker open: primary backend shedding load")
            return
        state = self._filter.admit(
            query,
            _Guarded(query=query, routed="primary",
                     probe=(verdict == "probe"), started=self.loop.now))
        if state.probe:
            self.stats.probe_queries += 1
            if self._m:
                self._m.probes.inc()
        self._arm_deadline(state)
        if (self.hedge_delay is not None and self.standby is not None
                and not state.probe):
            state.hedge_timer = self.loop.schedule_after(
                self.hedge_delay, lambda: self._hedge(state))
        self.primary.issue_query(query)

    def flush(self) -> None:
        self.primary.flush()
        if self.standby is not None:
            self.standby.flush()

    # -- timers -----------------------------------------------------------------

    def _arm_deadline(self, state: _Guarded) -> None:
        deadline = self.attempt_timeout
        if self.total_timeout is not None:
            deadline = min(deadline, self.total_timeout)
        state.deadline_timer = self.loop.schedule_after(
            deadline, lambda: self._deadline(state))

    def _deadline(self, state: _Guarded) -> None:
        if self._filter.get(state.query.id) is not state:
            return  # resolved in the meantime
        state.cancel_timers()
        self._filter.resolve(state.query.id)
        if state.routed == "primary" and not state.primary_dead:
            self.stats.primary_failures += 1
            self.breaker.record_failure(probe=state.probe)
            if self._m:
                self._m.failures.inc()
        self.stats.deadline_failures += 1
        where = state.routed if not state.hedged else "primary or standby"
        self.fail(
            state.query,
            f"no response from {where} within {self.attempt_timeout:g}s")

    def _hedge(self, state: _Guarded) -> None:
        if self._filter.get(state.query.id) is not state or state.hedged:
            return
        state.hedged = True
        self.stats.hedged_queries += 1
        if self._m:
            self._m.hedges.inc()
        assert self.standby is not None
        # The standby's stream starts over at seq 0; both attempts draw
        # the same per-query stream plan, so whichever source is ahead
        # after the restart screens clean without double-counting.
        self._filter.restart_stream(state.query.id)
        self.standby.issue_query(state.query)

    # -- completions ------------------------------------------------------------

    def _from_primary(self, query: Query, responses) -> None:
        self._on_completion("primary", query, responses)

    def _from_standby(self, query: Query, responses) -> None:
        self._on_completion("standby", query, responses)

    def _on_chunk(self, source: str, query: Query,
                  chunk: StreamChunk) -> None:
        current = self._filter.get(query.id)
        if current is not None and source == "primary" and current.primary_dead:
            # A failed-over primary may keep streaming; drop its chunks
            # *before* screening so they cannot advance the stream
            # progress the standby's attempt is being screened against.
            self.stats.filtered_completions += 1
            return
        screened = self._filter.screen_chunk(query, chunk)
        if screened.stale or screened.flaw is not None:
            self.stats.filtered_completions += 1
            return
        state: _Guarded = screened.state
        # Streaming progress re-arms the deadline (the backend is
        # alive), still bounded by the query's total budget.
        if state.deadline_timer is not None:
            state.deadline_timer.cancel()
        deadline = self.attempt_timeout
        if self.total_timeout is not None:
            deadline = max(
                0.0,
                min(deadline,
                    self.total_timeout - (self.loop.now - state.started)),
            )
        state.deadline_timer = self.loop.schedule_after(
            deadline, lambda: self._deadline(state))
        self._responder(query, chunk)

    def _on_completion(self, source: str, query: Query, responses) -> None:
        if isinstance(responses, StreamChunk):
            self._on_chunk(source, query, responses)
            return
        screened = self._filter.screen(query, responses)
        if screened.stale:
            # Duplicate, hedge loser, or post-deadline straggler: the
            # healing layer absorbs it so the referee never sees it.
            self.stats.filtered_completions += 1
            return
        state: _Guarded = screened.state
        if screened.flaw is not None:
            self._on_flaw(source, state, screened.flaw)
            return
        state.cancel_timers()
        self._filter.resolve(query.id)
        if source == "primary":
            self.breaker.record_success(probe=state.probe)
        else:
            self.stats.standby_completions += 1
            if self._m:
                self._m.standby.inc()
            if state.routed == "primary":
                self.stats.hedge_wins += 1
        self.complete(query, responses)

    def _on_flaw(self, source: str, state: _Guarded, flaw: str) -> None:
        qid = state.query.id
        if source == "primary":
            state.primary_dead = True
            self.stats.primary_failures += 1
            self.breaker.record_failure(probe=state.probe)
            if self._m:
                self._m.failures.inc()
            if self.standby is not None and not state.hedged:
                # Fail over immediately rather than waiting out the
                # deadline on a primary that already answered badly.
                state.hedged = True
                self.stats.failovers += 1
                if self._m:
                    self._m.hedges.inc()
                self._filter.restart_stream(qid)
                self.standby.issue_query(state.query)
                return
            if self.standby is not None and not state.standby_dead:
                return  # the standby attempt is still in flight
        else:
            state.standby_dead = True
            if state.routed == "primary" and not state.primary_dead:
                return  # the primary attempt is still in flight
        state.cancel_timers()
        self._filter.resolve(qid)
        self.fail(state.query, flaw)
