"""Durable runs: crash-safe journaling, resume, and self-healing serving.

This package makes a LoadGen run survive the failures a production
serving stack actually sees:

* ``journal`` — a CRC-framed, append-only write-ahead journal of every
  query lifecycle event plus periodic checkpoints, with a configurable
  fsync policy (:class:`FsyncPolicy`) and torn-tail-tolerant reader;
* ``resume`` — :func:`resume_run` replays a journal and deterministically
  continues an interrupted run to the same ``LoadGenResult`` as an
  uninterrupted one (:func:`run_fingerprint` is the equality witness);
* ``breaker`` / ``healing`` — a :class:`CircuitBreaker` state machine
  and the :class:`SelfHealingSUT` serving wrapper (load shedding, hedged
  retries against a standby, immediate failover) that keep a run alive
  through backend outages.

``docs/durability.md`` documents the journal format, fsync semantics,
resume guarantees, and the breaker state machine.
"""

from .breaker import (
    STATE_CODES,
    BreakerPolicy,
    BreakerState,
    BreakerStats,
    CircuitBreaker,
)
from .healing import HealingStats, SelfHealingSUT
from .journal import (
    JOURNAL_VERSION,
    MAGIC,
    FsyncPolicy,
    JournalError,
    JournalState,
    JournalStats,
    JournalWriter,
    ResumeError,
    RunJournal,
    read_frames,
    read_run_journal,
)
from .resume import ReplayStats, ReplaySUT, resume_run, run_fingerprint

__all__ = [
    "JOURNAL_VERSION",
    "MAGIC",
    "STATE_CODES",
    "BreakerPolicy",
    "BreakerState",
    "BreakerStats",
    "CircuitBreaker",
    "FsyncPolicy",
    "HealingStats",
    "JournalError",
    "JournalState",
    "JournalStats",
    "JournalWriter",
    "ReplayStats",
    "ReplaySUT",
    "ResumeError",
    "RunJournal",
    "SelfHealingSUT",
    "read_frames",
    "read_run_journal",
    "resume_run",
    "run_fingerprint",
]
