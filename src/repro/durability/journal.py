"""Crash-safe write-ahead journal for LoadGen runs.

A benchmark run that dies mid-flight — power loss, OOM kill, a flaky
device rebooting — normally discards the whole experiment.  The journal
makes the run durable: every query lifecycle event (issued, completed,
failed) is appended to an on-disk log *before* the run proceeds, so an
interrupted run can be resumed (``repro.durability.resume``) and
continued deterministically to the same result as an uninterrupted one.

File format (version 1)::

    magic   b"RJNL1\\n"
    frame*  <u32 payload_len> <u32 crc32(payload)> <payload>

Each payload is a pickled ``(kind, fields)`` pair.  Record kinds:

* ``header``     — run settings, journal version, payload policy;
* ``issued``     — query id, issue time, sample count, and a CRC over
  the sample ids (divergence detection on resume);
* ``completed``  — query id, completion time, and — in accuracy mode or
  when the payload audit is on — the ``(sample_id, data)`` pairs;
* ``failed``     — query id, failure time, classified reason;
* ``checkpoint`` — periodic scenario-state snapshot (progress counters);
* ``end``        — the run finished; carries a result digest.

The writer flushes every frame to the operating system, so a SIGKILL of
the benchmark process never loses an acknowledged record; the
:class:`FsyncPolicy` additionally controls when frames are forced to the
disk platter (machine-crash durability).  The reader tolerates a torn
tail: a truncated or CRC-corrupt final frame marks the journal as
``truncated`` and everything before it is trusted — exactly the
semantics of a crash mid-append.

See ``docs/durability.md`` for the full format and resume semantics.
"""

from __future__ import annotations

import enum
import os
import pickle
import struct
import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

import numpy as np

from ..core.config import TestSettings
from ..core.query import Query
from ..metrics import MetricsRegistry

#: First bytes of every journal file; bumping the trailing digit is a
#: format version change (readers refuse unknown magics loudly).
MAGIC = b"RJNL1\n"

#: Journal record-schema version, stored in the header record.
JOURNAL_VERSION = 1

_FRAME = struct.Struct("<II")


class JournalError(RuntimeError):
    """A journal could not be written, read, or replayed.

    ``reason`` is a stable machine-readable classification code
    (``"no-journal"``, ``"bad-magic"``, ``"no-header"``,
    ``"version-mismatch"``, ``"replay-divergence"``, ...); the message
    carries the human-readable detail.
    """

    def __init__(self, reason: str, message: str) -> None:
        super().__init__(f"[{reason}] {message}")
        self.reason = reason


class ResumeError(JournalError):
    """Resuming from a journal failed in a classified way."""


class FsyncPolicy(enum.Enum):
    """When journal frames are forced to the disk platter.

    Every policy still flushes each frame to the OS page cache, so a
    crash of the *process* (SIGKILL, abort) never loses an acknowledged
    record; fsync only matters for machine crashes and power loss.
    """

    #: ``fsync`` after every record: no acknowledged record is ever
    #: lost, at the cost of one disk round-trip per query event.
    ALWAYS = "always"
    #: ``fsync`` every ``fsync_interval`` records (and on close).
    INTERVAL = "interval"
    #: Never ``fsync`` explicitly; the OS writes back on its own
    #: schedule.  Survives process kills, not power loss.
    NEVER = "never"


@dataclass
class JournalStats:
    """Cumulative writer-side accounting."""

    records: int = 0
    bytes: int = 0
    fsyncs: int = 0
    #: Events skipped because the journal already holds them (resume).
    skipped: int = 0
    checkpoints: int = 0


class _JournalInstruments:
    """Live ``durability_*`` counters mirroring :class:`JournalStats`."""

    __slots__ = ("records", "bytes", "fsyncs", "checkpoints")

    def __init__(self, registry: MetricsRegistry) -> None:
        self.records = registry.counter(
            "durability_journal_records_total",
            "Frames appended to the run journal", labels=("kind",))
        self.bytes = registry.counter(
            "durability_journal_bytes_total",
            "Bytes appended to the run journal (frames + payloads)")
        self.fsyncs = registry.counter(
            "durability_journal_fsyncs_total",
            "Times the journal was forced to the disk platter")
        self.checkpoints = registry.counter(
            "durability_checkpoints_total",
            "Periodic scenario-state checkpoints written")


class JournalWriter:
    """Low-level CRC-framed append-only record writer.

    ``on_append`` is called with the running record count after every
    frame reaches the OS — the chaos tests use it as a deterministic
    kill switch ("die after the Nth record").
    """

    def __init__(
        self,
        path: str,
        *,
        fsync: "FsyncPolicy | str" = FsyncPolicy.NEVER,
        fsync_interval: int = 64,
        append: bool = False,
        truncate_to: Optional[int] = None,
        on_append: Optional[Callable[[int], None]] = None,
    ) -> None:
        self.path = str(path)
        self.fsync = FsyncPolicy(fsync)
        if fsync_interval < 1:
            raise ValueError(
                f"fsync_interval must be >= 1, got {fsync_interval}")
        self.fsync_interval = fsync_interval
        self.on_append = on_append
        self.stats = JournalStats()
        self._since_fsync = 0
        if append and os.path.exists(self.path):
            self._file = open(self.path, "r+b")
            if truncate_to is not None:
                # Resume after a crash: discard the torn tail frame so
                # appended records follow the last *intact* one - frames
                # after a tear would otherwise be unreachable to readers.
                self._file.truncate(truncate_to)
                self._file.seek(truncate_to)
            else:
                self._file.seek(0, os.SEEK_END)
        else:
            self._file = open(self.path, "wb")
        if self._file.tell() == 0:
            self._file.write(MAGIC)
            self._file.flush()

    @property
    def closed(self) -> bool:
        return self._file.closed

    def append(self, kind: str, fields: dict) -> None:
        """Frame, write, and flush one record to the OS."""
        if self._file.closed:
            raise JournalError(
                "closed", f"journal {self.path} is already closed")
        payload = pickle.dumps((kind, fields),
                               protocol=pickle.HIGHEST_PROTOCOL)
        frame = _FRAME.pack(len(payload), zlib.crc32(payload))
        self._file.write(frame)
        self._file.write(payload)
        self._file.flush()
        self.stats.records += 1
        self.stats.bytes += len(frame) + len(payload)
        self._since_fsync += 1
        if self.fsync is FsyncPolicy.ALWAYS or (
            self.fsync is FsyncPolicy.INTERVAL
            and self._since_fsync >= self.fsync_interval
        ):
            os.fsync(self._file.fileno())
            self.stats.fsyncs += 1
            self._since_fsync = 0
        if self.on_append is not None:
            self.on_append(self.stats.records)

    def close(self) -> None:
        if self._file.closed:
            return
        self._file.flush()
        if self.fsync is not FsyncPolicy.NEVER and self._since_fsync:
            os.fsync(self._file.fileno())
            self.stats.fsyncs += 1
            self._since_fsync = 0
        self._file.close()

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_frames(path: str) -> Tuple[List[Tuple[str, dict]], bool, int]:
    """Read every intact ``(kind, fields)`` record from a journal.

    Returns ``(records, truncated, intact_bytes)``.  ``truncated`` is
    True when the file ends in a torn or corrupt frame — the
    crash-mid-append case — in which case everything *before* the tear
    is returned and trusted; ``intact_bytes`` is the file offset just
    past the last intact frame (where a resume writer must truncate to
    before appending).  Raises :class:`JournalError` for a missing file
    or foreign magic.
    """
    try:
        blob = open(path, "rb").read()
    except FileNotFoundError:
        raise JournalError("no-journal", f"no journal at {path}")
    if not blob.startswith(MAGIC):
        raise JournalError(
            "bad-magic",
            f"{path} does not start with the journal magic {MAGIC!r}")
    records: List[Tuple[str, dict]] = []
    offset = len(MAGIC)
    while offset < len(blob):
        if offset + _FRAME.size > len(blob):
            return records, True, offset  # torn frame header
        length, crc = _FRAME.unpack_from(blob, offset)
        start = offset + _FRAME.size
        payload = blob[start:start + length]
        if len(payload) < length or zlib.crc32(payload) != crc:
            return records, True, offset  # torn or corrupt payload
        try:
            kind, fields = pickle.loads(payload)
        except Exception:
            return records, True, offset  # undecodable: treat as torn
        records.append((kind, fields))
        offset = start + length
    return records, False, offset


@dataclass(frozen=True)
class IssuedEntry:
    """What the journal knows about one issued query."""

    time: float
    sample_count: int
    ids_crc: int


@dataclass
class JournalState:
    """Parsed view of a run journal, keyed for replay."""

    path: str
    settings: TestSettings
    version: int
    #: Whether ``completed`` records carry response payloads.
    keep_payloads: bool
    log_sample_probability: float
    issued: Dict[int, IssuedEntry] = field(default_factory=dict)
    #: query id -> (completion_time, [(sample_id, data), ...] or None).
    completions: Dict[int, Tuple[float, Optional[list]]] = field(
        default_factory=dict)
    #: query id -> (failure_time, reason).
    failures: Dict[int, Tuple[float, str]] = field(default_factory=dict)
    checkpoints: List[dict] = field(default_factory=list)
    ended: bool = False
    truncated: bool = False
    record_count: int = 0
    #: File offset just past the last intact frame (resume truncates
    #: any torn tail to here before appending).
    intact_bytes: int = 0

    @property
    def resolved_ids(self) -> Set[int]:
        """Queries with a terminal (completed or failed) record."""
        return set(self.completions) | set(self.failures)


def read_run_journal(path: str) -> JournalState:
    """Parse a run journal into replay-ready state.

    Raises :class:`JournalError` with a classified reason when the file
    is missing (``no-journal``), not a journal (``bad-magic``), lacks an
    intact header (``no-header``), or was written by an incompatible
    format version (``version-mismatch``).
    """
    records, truncated, intact_bytes = read_frames(path)
    if not records or records[0][0] != "header":
        raise JournalError(
            "no-header",
            f"{path} holds no intact header record; nothing to resume")
    header = records[0][1]
    version = header.get("version")
    if version != JOURNAL_VERSION:
        raise JournalError(
            "version-mismatch",
            f"{path} was written by journal version {version}; "
            f"this reader speaks version {JOURNAL_VERSION}")
    state = JournalState(
        path=str(path),
        settings=header["settings"],
        version=version,
        keep_payloads=header["keep_payloads"],
        log_sample_probability=header["log_sample_probability"],
        truncated=truncated,
        record_count=len(records),
        intact_bytes=intact_bytes,
    )
    for kind, fields in records[1:]:
        if kind == "issued":
            state.issued[fields["q"]] = IssuedEntry(
                time=fields["t"], sample_count=fields["n"],
                ids_crc=fields["crc"])
        elif kind == "completed":
            state.completions[fields["q"]] = (fields["t"], fields["r"])
        elif kind == "failed":
            state.failures[fields["q"]] = (fields["t"], fields["reason"])
        elif kind == "checkpoint":
            state.checkpoints.append(fields)
        elif kind == "end":
            state.ended = True
        # Unknown kinds are skipped: minor-version forward compatibility.
    return state


#: Above this sample count the issued-record CRC hashes a deterministic
#: stride through the ids instead of every one, bounding the journaling
#: cost of huge Offline queries (the sample count and both endpoints are
#: always covered, so length changes and reorderings at the edges are
#: still caught; see docs/durability.md for the trade-off).
_CRC_FULL_LIMIT = 2048


def _sample_ids_crc(query: Query) -> int:
    samples = query.samples
    count = len(samples)
    if count <= _CRC_FULL_LIMIT:
        picked = samples
    else:
        stride = count // _CRC_FULL_LIMIT + 1
        picked = list(samples[::stride]) + [samples[-1]]
    ids = np.fromiter((s.id for s in picked), dtype="<u8",
                      count=len(picked))
    return zlib.crc32(ids.tobytes(), count)


class RunJournal:
    """The LoadGen-facing journal: write-ahead query events, periodic
    checkpoints, and resume-aware deduplication.

    Pass an instance to ``run_benchmark(..., journal=)`` (or let
    ``resume_run`` build one).  The LoadGen calls :meth:`begin` before
    the first query, the query log reports every lifecycle event through
    :meth:`on_log_event`, and :meth:`finish` seals the file with an
    ``end`` record.

    On resume the journal is reopened in append mode with
    :meth:`resume_from`: events already on disk are skipped instead of
    re-written, so a journal resumed N times still holds exactly one
    record per event.
    """

    def __init__(
        self,
        path: str,
        *,
        fsync: "FsyncPolicy | str" = FsyncPolicy.NEVER,
        fsync_interval: int = 64,
        checkpoint_period: Optional[float] = 0.5,
        registry: Optional[MetricsRegistry] = None,
        on_append: Optional[Callable[[int], None]] = None,
    ) -> None:
        if checkpoint_period is not None and checkpoint_period <= 0:
            raise ValueError(
                f"checkpoint_period must be positive, got {checkpoint_period}")
        self.path = str(path)
        self.fsync = FsyncPolicy(fsync)
        self.fsync_interval = fsync_interval
        self.checkpoint_period = checkpoint_period
        self.on_append = on_append
        self._m = (_JournalInstruments(registry)
                   if registry is not None else None)
        self._writer: Optional[JournalWriter] = None
        self._keep_payloads = False
        #: Query ids whose ``issued`` record is already on disk.
        self._known_issued: Set[int] = set()
        #: Query ids with a terminal record already on disk.
        self._known_resolved: Set[int] = set()
        self._resuming = False
        self._truncate_to: Optional[int] = None

    # -- lifecycle --------------------------------------------------------------

    def resume_from(self, state: JournalState) -> None:
        """Arm the journal to append to an existing file, skipping the
        events ``state`` already holds."""
        if self._writer is not None:
            raise JournalError(
                "already-begun", "resume_from must precede begin")
        self._known_issued = set(state.issued)
        self._known_resolved = state.resolved_ids
        self._resuming = True
        self._truncate_to = state.intact_bytes

    def begin(self, settings: TestSettings, *, keep_payloads: bool,
              log_sample_probability: float) -> None:
        """Open the file and write the header (fresh journals only)."""
        if self._writer is not None:
            return  # already begun (idempotent for wrapper layers)
        self._keep_payloads = keep_payloads
        self._writer = JournalWriter(
            self.path, fsync=self.fsync,
            fsync_interval=self.fsync_interval,
            append=self._resuming, truncate_to=self._truncate_to,
            on_append=self.on_append,
        )
        if not self._resuming:
            self._append("header", {
                "version": JOURNAL_VERSION,
                "settings": settings,
                "keep_payloads": keep_payloads,
                "log_sample_probability": log_sample_probability,
            })

    @property
    def stats(self) -> JournalStats:
        return self._writer.stats if self._writer else JournalStats()

    def _append(self, kind: str, fields: dict) -> None:
        assert self._writer is not None
        stats = self._writer.stats
        before_bytes, before_fsyncs = stats.bytes, stats.fsyncs
        self._writer.append(kind, fields)
        if self._m:
            self._m.records.labels(kind=kind).inc()
            self._m.bytes.inc(stats.bytes - before_bytes)
            if stats.fsyncs > before_fsyncs:
                self._m.fsyncs.inc(stats.fsyncs - before_fsyncs)

    # -- the QueryLog observer hook --------------------------------------------

    def on_log_event(self, event: str, query: Query, time: float,
                     payload: object) -> None:
        """Write-ahead one query lifecycle event.

        Called by ``QueryLog`` with ``event`` one of ``"issued"``
        (payload: None), ``"completed"`` (payload: the response list) or
        ``"failed"`` (payload: the classified reason string).
        """
        if self._writer is None or self._writer.closed:
            return
        qid = query.id
        if event == "issued":
            if qid in self._known_issued:
                self._writer.stats.skipped += 1
                return
            self._append("issued", {
                "q": qid, "t": time, "n": query.sample_count,
                "crc": _sample_ids_crc(query),
            })
        elif event == "completed":
            if qid in self._known_resolved:
                self._writer.stats.skipped += 1
                return
            pairs = ([(r.sample_id, r.data) for r in payload]
                     if self._keep_payloads else None)
            self._append("completed", {"q": qid, "t": time, "r": pairs})
        elif event == "failed":
            if qid in self._known_resolved:
                self._writer.stats.skipped += 1
                return
            self._append("failed", {"q": qid, "t": time,
                                    "reason": payload})

    # -- checkpoints and sealing ------------------------------------------------

    def checkpoint(self, time: float, **progress) -> None:
        """Append a scenario-state checkpoint (progress counters)."""
        if self._writer is None or self._writer.closed:
            return
        self._append("checkpoint", {"t": time, **progress})
        self._writer.stats.checkpoints += 1
        if self._m:
            self._m.checkpoints.inc()

    def finish(self, result: object) -> None:
        """Seal the journal with an ``end`` record and close the file."""
        if self._writer is None or self._writer.closed:
            return
        digest = {}
        metrics = getattr(result, "metrics", None)
        if metrics is not None:
            digest = {
                "query_count": metrics.query_count,
                "primary_metric": metrics.primary_metric,
                "valid": getattr(result, "valid", None),
            }
        self._append("end", digest)
        self.close()

    def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
