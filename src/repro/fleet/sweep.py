"""SLO-driven capacity search: find the max arrival rate a SUT sustains.

The Server scenario takes a *target* QPS as an input and returns a
verdict; the question operators actually ask is the inverse - "what is
the highest arrival rate at which this system still meets its latency
SLO?".  :class:`SweepHarness` answers it the way FlexBench argues
capacity questions should be answered: by *searching* the rate axis
rather than guessing, running one full (virtual-clock, deterministic)
Server run per probe and judging each probe with the referee's own
validity rules.

Two search modes:

* ``"binary"`` - bracket ``[qps_low, qps_high]`` and bisect on the
  run verdict down to ``resolution``.  Sound whenever validity is
  monotone in the arrival rate (true for capacity-limited SUTs; the
  benchmark study checks the found rate against a dense step scan).
* ``"step"`` - walk upward in ``resolution`` increments until the first
  invalid run; exact by construction, linear in the range.

The result is a :class:`SweepResult` whose :meth:`~SweepResult.report`
is a ``BENCH_fleet.json``-style capacity document (the ``repro sweep``
CLI writes it with ``--report``): the SLO probed against, every probe's
rate/verdict/p99, and the max compliant rate found.  Sweep semantics
and mode trade-offs are discussed in ``docs/fleet.md``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, List, NamedTuple, Optional, Tuple

from ..core.config import Scenario, TestSettings
from ..core.events import Clock
from ..core.loadgen import run_benchmark
from ..core.sut import QuerySampleLibrary, SystemUnderTest


@dataclass(frozen=True)
class SweepConfig:
    """Search-space knobs for :class:`SweepHarness`."""

    #: Bracket of arrival rates to search, queries per second.
    qps_low: float = 1.0
    qps_high: float = 256.0
    #: Terminal bracket width (binary) or step size (step), qps.
    resolution: float = 1.0
    #: ``"binary"`` or ``"step"``.
    mode: str = "binary"
    #: Hard cap on probe runs, a stuck-search backstop.
    max_probes: int = 32

    def __post_init__(self) -> None:
        if self.qps_low <= 0:
            raise ValueError(f"qps_low must be positive, got {self.qps_low}")
        if self.qps_high <= self.qps_low:
            raise ValueError(
                "qps_high must exceed qps_low, got "
                f"{self.qps_high} <= {self.qps_low}")
        if self.resolution <= 0:
            raise ValueError(
                f"resolution must be positive, got {self.resolution}")
        if self.mode not in ("binary", "step"):
            raise ValueError(
                f"mode must be 'binary' or 'step', got {self.mode!r}")
        if self.max_probes < 2:
            raise ValueError(
                f"max_probes must be >= 2, got {self.max_probes}")


class SweepProbe(NamedTuple):
    """One probe run: the rate asked for and how the run judged it."""

    qps: float
    valid: bool
    latency_p99: float
    completed: int
    reasons: Tuple[str, ...]


@dataclass
class SweepResult:
    """Outcome of one capacity search."""

    config: SweepConfig
    #: The SLO the probes were judged against, seconds.
    latency_bound: float
    #: Allowed fraction of queries over the bound.
    max_violation_fraction: float
    #: Every probe, in execution order.
    probes: List[SweepProbe] = field(default_factory=list)
    #: Highest SLO-compliant rate found; ``None`` when even ``qps_low``
    #: failed (the bracket does not contain the capacity).
    max_qps: Optional[float] = None

    def report(self) -> dict:
        """The ``BENCH_fleet.json``-style capacity document."""
        return {
            "benchmark": "fleet-capacity-sweep",
            "mode": self.config.mode,
            "bracket_qps": [self.config.qps_low, self.config.qps_high],
            "resolution_qps": self.config.resolution,
            "slo": {
                "latency_bound_s": self.latency_bound,
                "max_violation_fraction": self.max_violation_fraction,
            },
            "max_valid_qps": self.max_qps,
            "probe_count": len(self.probes),
            "probes": [
                {
                    "qps": p.qps,
                    "valid": p.valid,
                    "latency_p99_s": p.latency_p99,
                    "completed": p.completed,
                    "reasons": list(p.reasons),
                }
                for p in self.probes
            ],
        }

    def write(self, path) -> Path:
        """Write :meth:`report` as JSON; returns the path written."""
        path = Path(path)
        path.write_text(json.dumps(self.report(), indent=2) + "\n")
        return path

    def summary(self) -> str:
        found = ("below the bracket" if self.max_qps is None
                 else f"{self.max_qps:.3g} qps")
        return (f"max SLO-compliant rate: {found} "
                f"({len(self.probes)} probe runs, "
                f"bound {self.latency_bound * 1e3:g} ms)")


class SweepHarness:
    """Binary-search / step an arrival rate against the SLO.

    Works on both rate-driven scenarios: the Server scenario (queries/s)
    and the session scenario (sessions/s - ``server_target_qps`` is the
    session arrival rate there, see ``docs/sessions.md``), so a fleet
    with per-replica prefix caches can have its *conversation* capacity
    searched the same way.

    ``make_sut`` builds a *fresh* SUT per probe (probe runs must not
    share warm caches, breaker state, or worker pools), and any SUT
    exposing ``close()`` is released after its probe.
    """

    #: Scenarios whose load is an arrival rate the sweep can bisect.
    _RATE_SCENARIOS = (Scenario.SERVER, Scenario.SESSION)

    def __init__(
        self,
        make_sut: Callable[[], SystemUnderTest],
        qsl: QuerySampleLibrary,
        settings: TestSettings,
        config: Optional[SweepConfig] = None,
        *,
        clock: Optional[Clock] = None,
        services_factory: Optional[Callable[[SystemUnderTest], list]] = None,
        probe_observer: Optional[Callable[..., None]] = None,
    ) -> None:
        if settings.scenario not in self._RATE_SCENARIOS:
            raise ValueError(
                "capacity sweeps are a Server/session-scenario tool; got "
                f"{settings.scenario}")
        self.make_sut = make_sut
        self.qsl = qsl
        self.settings = settings
        self.config = config if config is not None else SweepConfig()
        self.clock = clock
        #: Per-probe :class:`~repro.core.loadgen.RunService` builder
        #: (e.g. a fresh Autoscaler around the probe's fresh fleet);
        #: called with the probe's SUT, returns the run's services.
        self.services_factory = services_factory
        #: Called as ``probe_observer(sut, result, probe)`` after each
        #: probe run, *before* the SUT is closed - the hook that lets a
        #: caller audit per-replica cache trails or collect hit rates
        #: while the probe's state is still alive.
        self.probe_observer = probe_observer

    def probe(self, qps: float) -> SweepProbe:
        """One full run at arrival rate ``qps``, judged by the referee."""
        settings = self.settings.with_overrides(server_target_qps=qps)
        sut = self.make_sut()
        services = (self.services_factory(sut)
                    if self.services_factory is not None else None)
        try:
            result = run_benchmark(sut, self.qsl, settings,
                                   clock=self.clock, services=services)
            probe = SweepProbe(
                qps=qps,
                valid=result.valid,
                latency_p99=result.metrics.latency_p99,
                completed=len(result.log.completed_records()),
                reasons=tuple(result.validity.reasons),
            )
            if self.probe_observer is not None:
                self.probe_observer(sut, result, probe)
        finally:
            close = getattr(sut, "close", None)
            if callable(close):
                close()
        return probe

    def run(self) -> SweepResult:
        try:
            bound = self.settings.resolved_server_latency_bound
        except ValueError:
            # A session sweep may carry no latency bound at all - the
            # referee then judges on session validity (stalls, aborts,
            # completion minimums) alone.
            bound = float("nan")
        result = SweepResult(
            config=self.config,
            latency_bound=bound,
            max_violation_fraction=(
                self.settings.resolved_max_violation_fraction),
        )
        if self.config.mode == "binary":
            self._binary(result)
        else:
            self._step(result)
        return result

    def _probe_into(self, result: SweepResult, qps: float) -> SweepProbe:
        probe = self.probe(qps)
        result.probes.append(probe)
        return probe

    def _binary(self, result: SweepResult) -> None:
        cfg = self.config
        low = self._probe_into(result, cfg.qps_low)
        if not low.valid:
            result.max_qps = None
            return
        high = self._probe_into(result, cfg.qps_high)
        if high.valid:
            result.max_qps = cfg.qps_high
            return
        lo, hi = cfg.qps_low, cfg.qps_high
        while (hi - lo > cfg.resolution
               and len(result.probes) < cfg.max_probes):
            mid = (lo + hi) / 2.0
            if self._probe_into(result, mid).valid:
                lo = mid
            else:
                hi = mid
        result.max_qps = lo

    def _step(self, result: SweepResult) -> None:
        cfg = self.config
        best: Optional[float] = None
        qps = cfg.qps_low
        # The epsilon admits qps_high itself despite float step error.
        while (qps <= cfg.qps_high + 1e-9 * cfg.qps_high
               and len(result.probes) < cfg.max_probes):
            if not self._probe_into(result, qps).valid:
                break
            best = qps
            qps += cfg.resolution
        result.max_qps = best
