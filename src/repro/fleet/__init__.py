"""Replicated serving fleet: balancer, autoscaler, capacity search.

The paper frames MLPerf Inference's Server scenario as a proxy for
production serving fleets; this package closes the loop by actually
running one.  :class:`ReplicaSet` puts N backend replicas behind a
SUT-shaped front door with pluggable seed-deterministic balancing
policies and per-replica circuit breakers (reroute, never crash);
:class:`Autoscaler` grows and shrinks the set from live load signals on
the run's event loop; :class:`OutlierDetector` quarantines gray-failing
replicas (alive but slow) and re-admits them through seeded probation
probes; :class:`SweepHarness` searches the Server arrival rate for the
highest SLO-compliant QPS (``repro sweep`` on the command line).
Replicas live in zones (fault domains), so correlated failures and
zone-aware policies are first-class.  Everything runs under the virtual
clock with seeded RNG streams, so fleet behavior - routing, scaling,
ejection, capacity verdicts - is bit-for-bit reproducible.  See
``docs/fleet.md`` and ``docs/chaos.md``.
"""

from .autoscaler import Autoscaler, AutoscalerPolicy, ScalingDecision
from .balancer import (
    POLICY_NAMES,
    BalancerPolicy,
    LeastOutstandingPolicy,
    RoundRobinPolicy,
    SessionAffinityPolicy,
    WeightedP99Policy,
    ZoneLocalPolicy,
    ZoneSpreadPolicy,
    make_policy,
)
from .outlier import EjectionEvent, OutlierDetector, OutlierPolicy
from .replica import Replica, ReplicaHealth
from .replicaset import FleetStats, ReplicaSet
from .signals import (
    BacklogSignal,
    SeriesSignal,
    SignalSource,
    ZoneBacklogSignal,
    make_signal,
)
from .sweep import SweepConfig, SweepHarness, SweepProbe, SweepResult

__all__ = [
    "Autoscaler",
    "AutoscalerPolicy",
    "BacklogSignal",
    "BalancerPolicy",
    "EjectionEvent",
    "FleetStats",
    "LeastOutstandingPolicy",
    "OutlierDetector",
    "OutlierPolicy",
    "POLICY_NAMES",
    "Replica",
    "ReplicaHealth",
    "ReplicaSet",
    "RoundRobinPolicy",
    "ScalingDecision",
    "SeriesSignal",
    "SessionAffinityPolicy",
    "SignalSource",
    "SweepConfig",
    "SweepHarness",
    "SweepProbe",
    "SweepResult",
    "WeightedP99Policy",
    "ZoneBacklogSignal",
    "ZoneLocalPolicy",
    "ZoneSpreadPolicy",
    "make_policy",
    "make_signal",
]
