"""Replicated serving fleet: balancer, autoscaler, capacity search.

The paper frames MLPerf Inference's Server scenario as a proxy for
production serving fleets; this package closes the loop by actually
running one.  :class:`ReplicaSet` puts N backend replicas behind a
SUT-shaped front door with pluggable seed-deterministic balancing
policies and per-replica circuit breakers (reroute, never crash);
:class:`Autoscaler` grows and shrinks the set from live load signals on
the run's event loop; :class:`SweepHarness` searches the Server arrival
rate for the highest SLO-compliant QPS (``repro sweep`` on the command
line).  Everything runs under the virtual clock with seeded RNG
streams, so fleet behavior - routing, scaling, capacity verdicts - is
bit-for-bit reproducible.  See ``docs/fleet.md``.
"""

from .autoscaler import Autoscaler, AutoscalerPolicy, ScalingDecision
from .balancer import (
    POLICY_NAMES,
    BalancerPolicy,
    LeastOutstandingPolicy,
    RoundRobinPolicy,
    SessionAffinityPolicy,
    WeightedP99Policy,
    make_policy,
)
from .replica import Replica, ReplicaHealth
from .replicaset import FleetStats, ReplicaSet
from .signals import (
    BacklogSignal,
    SeriesSignal,
    SignalSource,
    make_signal,
)
from .sweep import SweepConfig, SweepHarness, SweepProbe, SweepResult

__all__ = [
    "Autoscaler",
    "AutoscalerPolicy",
    "BacklogSignal",
    "BalancerPolicy",
    "FleetStats",
    "LeastOutstandingPolicy",
    "POLICY_NAMES",
    "Replica",
    "ReplicaHealth",
    "ReplicaSet",
    "RoundRobinPolicy",
    "ScalingDecision",
    "SeriesSignal",
    "SessionAffinityPolicy",
    "SignalSource",
    "SweepConfig",
    "SweepHarness",
    "SweepProbe",
    "SweepResult",
    "WeightedP99Policy",
    "make_policy",
    "make_signal",
]
