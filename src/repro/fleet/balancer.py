"""Pluggable, seed-deterministic load-balancing policies.

A policy answers one question per query: *in what order should the
available replicas be tried?*  The :class:`~repro.fleet.replicaset.ReplicaSet`
walks the returned ranking and hands the query to the first replica
whose circuit breaker admits it, so a policy never needs to reason about
breaker state - it only expresses preference.

All three stock policies are deterministic functions of (their own
state, the replicas' counters, the seeded RNG handed to
:meth:`BalancerPolicy.start_run`), so two same-seed runs route every
query identically - the fleet inherits the repeatability contract of the
rest of the harness.

* :class:`RoundRobinPolicy` - rotate through the available replicas;
  oblivious to load, optimal when replicas are identical.
* :class:`LeastOutstandingPolicy` - prefer the replica with the fewest
  in-flight queries (ties broken by index); the classic join-the-
  shortest-queue heuristic.
* :class:`WeightedP99Policy` - draw the first choice with probability
  inversely proportional to each replica's sliding-window p99 latency,
  so a browning-out replica organically sheds share without being
  declared unhealthy.
* :class:`SessionAffinityPolicy` - pin each conversation's turns to the
  replica that served its previous turn (the one holding the shared
  prefix), falling back to least-outstanding; see ``docs/sessions.md``.
* :class:`ZoneSpreadPolicy` - interleave fault domains in every
  ranking, so a query's fallback choices sit in *different* zones than
  its primary and a zone-wide brownout costs at most one wasted
  attempt per query.
* :class:`ZoneLocalPolicy` - prefer a configured local zone (data
  locality), spilling to the other zones - interleaved - only when the
  local zone cannot take the query.

See ``docs/fleet.md`` for guidance on choosing between them and
``docs/chaos.md`` for the zone vocabulary.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Type

import numpy as np

from .replica import Replica

#: Floor added to p99 estimates before inversion so an all-zero window
#: (cold start) weighs every replica equally instead of dividing by zero.
_P99_EPSILON = 1e-6


class BalancerPolicy:
    """Base class: rank the available replicas for one query."""

    #: Registry name (``make_policy``) and metric label value.
    name = "base"

    def start_run(self, rng: np.random.Generator) -> None:
        """Reset per-run state.  ``rng`` is the policy's only entropy
        source; it is seeded from the run seed, so consuming draws in a
        deterministic order keeps routing replayable."""
        self._rng = rng

    def rank(self, candidates: Sequence[Replica]) -> List[Replica]:
        """Order ``candidates`` (all administratively UP) by preference.

        Called once per routing decision; must return a permutation of
        ``candidates`` and must not mutate them.
        """
        raise NotImplementedError

    def rank_for(self, query, candidates: Sequence[Replica]) -> List[Replica]:
        """Rank with the query in hand.

        The ReplicaSet calls this entry point; the default ignores the
        query and delegates to :meth:`rank`, so load-oblivious policies
        stay one-method.  Content-aware policies (session affinity)
        override this instead.  Ranking must be **read-only**: the
        ranking expresses preference, and which replica *actually*
        serves the query (breaker rejections and reroutes included)
        arrives later through :meth:`notify_served`.
        """
        return self.rank(candidates)

    def notify_served(self, query, replica_index: int) -> None:
        """Feedback hook: ``replica_index`` completed ``query`` cleanly.

        The ReplicaSet reports the replica that *actually* served each
        query - after any breaker rejections, deadline reroutes, or
        kill rescues - so stateful policies track reality instead of
        their own first preference.  Default: no state, no-op.
        """

    def notify_failed(self, query) -> None:
        """Feedback hook: ``query`` was failed (shed or budget-exhausted).

        No replica served it; stateful policies drop whatever routing
        state they held for it.  Default: no-op.
        """

    def notify_rescued(self, query, replica_index: int) -> None:
        """Feedback hook: ``query`` was rescued onto ``replica_index``.

        Its previous replica was killed or ejected mid-flight and the
        ReplicaSet re-dispatched the query (after warming the rescue
        replica's cache with the session's prefix).  Stateful policies
        migrate their routing state *now*, before the rescued attempt
        completes - a sibling turn issued during the outage must
        already prefer the rescue replica.  Default: no-op.
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class RoundRobinPolicy(BalancerPolicy):
    """Rotate through the available replicas, one step per decision."""

    name = "round-robin"

    def start_run(self, rng: np.random.Generator) -> None:
        super().start_run(rng)
        self._cursor = 0

    def rank(self, candidates: Sequence[Replica]) -> List[Replica]:
        if not candidates:
            return []
        # The cursor advances per decision, not per replica index, so the
        # rotation stays fair as the autoscaler grows/shrinks the set.
        offset = self._cursor % len(candidates)
        self._cursor += 1
        return list(candidates[offset:]) + list(candidates[:offset])


class LeastOutstandingPolicy(BalancerPolicy):
    """Join the shortest queue: fewest in-flight queries first."""

    name = "least-outstanding"

    def rank(self, candidates: Sequence[Replica]) -> List[Replica]:
        return sorted(candidates, key=lambda r: (r.outstanding, r.index))


class WeightedP99Policy(BalancerPolicy):
    """First choice drawn inversely proportional to observed p99.

    Only the *primary* choice is randomized; the fallback order (tried
    when the primary's breaker rejects) is fastest-first, so a rejected
    draw degrades to the sensible deterministic ranking rather than a
    second random walk.
    """

    name = "weighted-p99"

    def rank(self, candidates: Sequence[Replica]) -> List[Replica]:
        if len(candidates) <= 1:
            return list(candidates)
        weights = np.array(
            [1.0 / (r.p99() + _P99_EPSILON) for r in candidates])
        primary = int(self._rng.choice(
            len(candidates), p=weights / weights.sum()))
        rest = sorted(
            (r for i, r in enumerate(candidates) if i != primary),
            key=lambda r: (r.p99(), r.index))
        return [candidates[primary]] + rest


class SessionAffinityPolicy(BalancerPolicy):
    """Pin each conversation to one replica; spill only when it is gone.

    Session turns share a growing prefix, so the replica that served
    turn N holds the KV state turn N+1 wants - with per-replica
    :class:`~repro.sessions.cache.PrefixCacheSUT` caches on the fleet
    the pin is exactly what keeps the session's prefix hot (see
    ``docs/sessions.md``).  The first turn of a session - and every
    non-session query - routes least-outstanding; later turns prefer
    the pinned replica, falling back to least-outstanding when the pin
    left the candidate set.

    Pins follow **reality**, not preference: :meth:`rank_for` is
    read-only, and the pin is written by :meth:`notify_served` with the
    replica that actually completed the turn - so a dispatch the pinned
    replica's breaker rejected, or a turn rerouted after a deadline,
    re-pins to the replica that really holds the new prefix.  A pin is
    released the moment its session ends: the final turn's completion
    (the conversation is over) or any failed turn (the session aborts),
    so the pin table cannot grow without bound across millions of
    users.
    """

    name = "session-affinity"

    def start_run(self, rng: np.random.Generator) -> None:
        super().start_run(rng)
        #: session_id -> index of the replica that last *served* it.
        self._pins: Dict[int, int] = {}

    @property
    def active_pins(self) -> int:
        """Sessions currently pinned (in flight, not yet ended)."""
        return len(self._pins)

    def pinned_replica(self, session_id: int) -> Optional[int]:
        """The replica ``session_id`` is pinned to, or ``None``."""
        return self._pins.get(session_id)

    def _least_outstanding(
        self, candidates: Sequence[Replica]
    ) -> List[Replica]:
        return sorted(candidates, key=lambda r: (r.outstanding, r.index))

    def rank(self, candidates: Sequence[Replica]) -> List[Replica]:
        return self._least_outstanding(candidates)

    def rank_for(self, query, candidates: Sequence[Replica]) -> List[Replica]:
        turn = getattr(query, "session", None)
        if turn is None or not candidates:
            return self._least_outstanding(candidates)
        ranked = self._least_outstanding(candidates)
        pinned_index = self._pins.get(turn.session_id)
        if pinned_index is not None:
            for position, replica in enumerate(ranked):
                if replica.index == pinned_index:
                    ranked.insert(0, ranked.pop(position))
                    break
        return ranked

    def notify_served(self, query, replica_index: int) -> None:
        turn = getattr(query, "session", None)
        if turn is None:
            return
        if turn.turn_index >= turn.turn_count - 1:
            # Final turn answered: the conversation is over, release the
            # pin so the table stays bounded by *live* sessions.
            self._pins.pop(turn.session_id, None)
        else:
            self._pins[turn.session_id] = replica_index

    def notify_failed(self, query) -> None:
        turn = getattr(query, "session", None)
        if turn is None:
            return
        # A lost turn aborts its session (the driver never issues the
        # next one); keeping the pin would leak it forever.
        self._pins.pop(turn.session_id, None)

    def notify_rescued(self, query, replica_index: int) -> None:
        turn = getattr(query, "session", None)
        if turn is None:
            return
        # The pinned replica died or was ejected and this turn migrated
        # (with its prefix - the rescue warmed the new replica's cache).
        # Re-pin immediately: a later turn issued while the old replica
        # is still quarantined must rank the rescue replica first, not
        # fall back to least-outstanding and strand the warm prefix.
        self._pins[turn.session_id] = replica_index


def _zone_of(replica: Replica) -> str:
    # FakeReplica-style test doubles may not carry a zone; one-zone
    # semantics (plain least-outstanding) is the right degradation.
    return getattr(replica, "zone", "z0")


def _interleave_zones(candidates: Sequence[Replica],
                      zone_order: Sequence[str]) -> List[Replica]:
    """Round-robin across zones (in ``zone_order``), least-outstanding
    within each zone - so consecutive ranking positions sit in
    different fault domains wherever possible."""
    queues = {
        zone: sorted((r for r in candidates if _zone_of(r) == zone),
                     key=lambda r: (r.outstanding, r.index))
        for zone in zone_order
    }
    ranked: List[Replica] = []
    depth = 0
    while len(ranked) < len(candidates):
        for zone in zone_order:
            queue = queues[zone]
            if depth < len(queue):
                ranked.append(queue[depth])
        depth += 1
    return ranked


class ZoneSpreadPolicy(BalancerPolicy):
    """Interleave fault domains: no two adjacent choices share a zone.

    The primary choice rotates across zones per decision (then
    least-outstanding within the zone), and the *fallback* order - what
    the ReplicaSet walks when a breaker rejects, and what a rescued or
    rerouted query tries next - alternates zones.  Under a zone-wide
    brownout that is the property that matters: a query that wastes an
    attempt on the sick zone retries in a healthy one instead of
    burning its whole reroute budget in the same failure domain.
    """

    name = "zone-spread"

    def start_run(self, rng: np.random.Generator) -> None:
        super().start_run(rng)
        self._cursor = 0

    def rank(self, candidates: Sequence[Replica]) -> List[Replica]:
        if not candidates:
            return []
        zones = sorted({_zone_of(r) for r in candidates})
        offset = self._cursor % len(zones)
        self._cursor += 1
        return _interleave_zones(candidates, zones[offset:] + zones[:offset])


class ZoneLocalPolicy(BalancerPolicy):
    """Prefer one local zone; spill to remote zones only under pressure.

    Models a topology where the caller is co-located with one fault
    domain (no cross-zone hop): local replicas rank first
    (least-outstanding), remote zones follow interleaved.  With no
    configured ``local_zone`` the first zone (sorted) is local.
    """

    name = "zone-local"

    def __init__(self, local_zone: Optional[str] = None) -> None:
        self.local_zone = local_zone

    def rank(self, candidates: Sequence[Replica]) -> List[Replica]:
        if not candidates:
            return []
        zones = sorted({_zone_of(r) for r in candidates})
        local = self.local_zone if self.local_zone in zones else zones[0]
        local_first = sorted(
            (r for r in candidates if _zone_of(r) == local),
            key=lambda r: (r.outstanding, r.index))
        spill = [r for r in candidates if _zone_of(r) != local]
        remote = [z for z in zones if z != local]
        return local_first + _interleave_zones(spill, remote)


_POLICIES: Dict[str, Type[BalancerPolicy]] = {
    cls.name: cls
    for cls in (RoundRobinPolicy, LeastOutstandingPolicy, WeightedP99Policy,
                SessionAffinityPolicy, ZoneSpreadPolicy, ZoneLocalPolicy)
}

#: The registry names, for CLI choices and error messages.
POLICY_NAMES = tuple(sorted(_POLICIES))


def make_policy(policy: Optional[object]) -> BalancerPolicy:
    """Resolve a policy argument: name, instance, or ``None`` (default).

    ``None`` maps to round-robin - the only policy with zero modeling
    assumptions about the replicas.
    """
    if policy is None:
        return RoundRobinPolicy()
    if isinstance(policy, BalancerPolicy):
        return policy
    if isinstance(policy, str):
        cls = _POLICIES.get(policy)
        if cls is None:
            raise ValueError(
                f"unknown balancer policy {policy!r}; "
                f"known: {', '.join(POLICY_NAMES)}")
        return cls()
    raise TypeError(
        f"policy must be a name, a BalancerPolicy, or None; got {policy!r}")
