"""Pluggable load signals for the :class:`~repro.fleet.autoscaler.Autoscaler`.

The autoscaler used to read exactly one in-process number - outstanding
queries per available replica.  Real fleets scale on *telemetry*: the
``server_*`` / ``parallel_*`` / ``prefix_cache_*`` series their replicas
already export.  A :class:`SignalSource` closes that gap: it is sampled
once per autoscaler tick on the run's (virtual) event loop and reduces
whatever it watches to one float for the watermark comparison.

Three stock sources:

* :class:`BacklogSignal` - the classic in-process backlog
  (``total_outstanding / max(1, available)``), the default; zero setup
  and exactly the pre-SignalSource behavior.
* :class:`ZoneBacklogSignal` - the *worst zone's* backlog per available
  replica.  Fleet-wide averaging hides a zone outage (the survivors'
  queues double while the mean barely moves); scaling on the hottest
  fault domain reacts to exactly that.
* :class:`SeriesSignal` - reads one **live metric family** from a
  :class:`~repro.metrics.MetricsRegistry`, summing every labeled child
  (so ``prefix_cache_misses_total{replica=...}`` aggregates across the
  fleet), over a sliding window of recent ticks.  ``mode="rate"``
  differences a counter into events/s; ``mode="level"`` averages a
  gauge.  ``per_available_replica`` divides by the live replica count so
  the watermarks stay per-replica quantities as the fleet resizes.

Both are pure functions of run state sampled at deterministic virtual
times, so the autoscaler's :class:`~repro.fleet.autoscaler.ScalingDecision`
trace stays bit-identical across same-seed runs - the contract the
benchmark suite asserts.  See ``docs/fleet.md``.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from ..metrics import MetricsRegistry

#: Default number of ticks a :class:`SeriesSignal` window spans.
DEFAULT_SIGNAL_WINDOW = 8


class SignalSource:
    """One load signal, sampled once per autoscaler tick."""

    #: Human-readable name, recorded in reports and reprs.
    name = "signal"

    def bind(self, replica_set) -> None:
        """Attach to the fleet being scaled (called once, at
        construction of the autoscaler)."""
        self.replica_set = replica_set

    def reset(self) -> None:
        """Forget windowed state; called at the start of every run."""

    def sample(self, now: float) -> float:
        """Record one observation at virtual time ``now`` and return the
        current signal value."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class BacklogSignal(SignalSource):
    """In-process backlog: outstanding queries per available replica.

    The pre-SignalSource autoscaler behavior, bit for bit.  The
    ``max(1, available)`` clamp keeps the signal finite when every
    replica is down or draining - outstanding work then reads as the
    backlog of a one-replica fleet, which is exactly what should push
    the scaler to bring capacity back.
    """

    name = "backlog"

    def sample(self, now: float) -> float:
        replica_set = self.replica_set
        available = len(replica_set.available_replicas)
        return replica_set.total_outstanding / max(1, available)


class ZoneBacklogSignal(SignalSource):
    """Backlog of the most-loaded fault domain, per available replica.

    Per zone: outstanding queries of its non-DOWN replicas divided by
    ``max(1, available in zone)``; the signal is the max over zones.
    During a zone outage the dead zone's rescued queries pile onto the
    survivors and *their* zone's backlog - not the fleet mean - is what
    the watermarks should see.  Zones with no replicas at all (never
    built) contribute nothing.
    """

    name = "zone-backlog"

    def sample(self, now: float) -> float:
        from .replica import ReplicaHealth
        outstanding: dict = {}
        available: dict = {}
        for replica in self.replica_set.replicas:
            if replica.health is ReplicaHealth.DOWN:
                continue
            zone = replica.zone
            outstanding[zone] = outstanding.get(zone, 0) + replica.outstanding
            if replica.available:
                available[zone] = available.get(zone, 0) + 1
        if not outstanding:
            return 0.0
        return max(
            queued / max(1, available.get(zone, 0))
            for zone, queued in outstanding.items())


class SeriesSignal(SignalSource):
    """Windowed reader of one live metric family in a registry.

    Per tick the family's children are summed into one observation
    (labels aggregate: a per-replica family contributes the whole
    fleet's number) and appended to a sliding window of the last
    ``window`` ticks:

    * ``mode="rate"`` - (newest - oldest) / elapsed across the window;
      the right reduction for monotone counters
      (``prefix_cache_tokens_missed_total`` -> missed tokens/s).
    * ``mode="level"`` - mean of the windowed observations; the right
      reduction for gauges (``fleet_outstanding_queries``,
      ``server_queue_depth``), smoothing single-tick spikes.

    A family that has not been registered (yet) reads as 0.0 - scaling
    on a series that never lights up simply holds.
    """

    name = "series"

    def __init__(
        self,
        registry: MetricsRegistry,
        family: str,
        *,
        mode: str = "rate",
        window: int = DEFAULT_SIGNAL_WINDOW,
        per_available_replica: bool = False,
    ) -> None:
        if mode not in ("rate", "level"):
            raise ValueError(
                f"mode must be 'rate' or 'level', got {mode!r}")
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.registry = registry
        self.family = family
        self.mode = mode
        self.window = window
        self.per_available_replica = per_available_replica
        self.name = f"{family}:{mode}"
        self._samples: Deque[Tuple[float, float]] = deque(maxlen=window)

    def reset(self) -> None:
        self._samples.clear()

    def _read_total(self) -> float:
        family = self.registry.get(self.family)
        if family is None:
            return 0.0
        if not family.label_names:
            # Unlabeled families (callback gauges included) materialize
            # their single child lazily; read through the family.
            return float(family.value)
        return float(sum(
            child.value for _, child in family.series()))

    def sample(self, now: float) -> float:
        self._samples.append((now, self._read_total()))
        (t0, v0), (t1, v1) = self._samples[0], self._samples[-1]
        if self.mode == "rate":
            elapsed = t1 - t0
            value = (v1 - v0) / elapsed if elapsed > 0 else 0.0
        else:
            value = sum(v for _, v in self._samples) / len(self._samples)
        if self.per_available_replica:
            value /= max(1, len(self.replica_set.available_replicas))
        return value


def make_signal(signal: Optional[object]) -> SignalSource:
    """Resolve a signal argument: instance or ``None`` (default backlog)."""
    if signal is None:
        return BacklogSignal()
    if isinstance(signal, SignalSource):
        return signal
    raise TypeError(
        f"signal must be a SignalSource or None; got {signal!r}")
