"""Deterministic autoscaler clocked by the run's event loop.

The :class:`Autoscaler` is a :class:`~repro.core.loadgen.RunService`: it
ticks every ``period`` seconds of run time, samples one pluggable load
signal (:mod:`repro.fleet.signals` - the in-process backlog by default,
or any windowed live ``server_*``/``parallel_*``/``prefix_cache_*``
metric series via :class:`~repro.fleet.signals.SeriesSignal`) and
applies classic watermark hysteresis:

* signal ≥ ``high_watermark`` → grow by ``step`` replicas;
* signal ≤ ``low_watermark`` → shrink by ``step`` (drain, never drop);
* in between, or within ``cooldown`` of the last action, hold.

The gap between the watermarks plus the cooldown is what prevents
flapping: a burst must push the per-replica backlog past the high mark
to trigger growth, and the fleet must be demonstrably idle before the
extra capacity is drained away.

Because the tick runs on the (virtual) event loop and every stock
signal is a pure function of run state sampled at deterministic times,
the full decision :attr:`~Autoscaler.trace` - one
:class:`ScalingDecision` per tick, holds included - is bit-identical
across same-seed runs *whatever the signal source*; the benchmark suite
asserts exactly that.  With a ``registry`` the ``autoscaler_*`` metric
families light up (see ``docs/observability.md``); the state machine is
drawn in ``docs/fleet.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, NamedTuple, Optional

from ..core.events import EventHandle, EventLoop
from ..metrics import MetricsRegistry
from .replicaset import ReplicaSet
from .signals import SignalSource, make_signal


@dataclass(frozen=True)
class AutoscalerPolicy:
    """Watermark-hysteresis tuning for :class:`Autoscaler`."""

    #: Seconds of run time between scaling decisions.
    period: float = 0.050
    #: Mean outstanding queries per replica that triggers growth.
    high_watermark: float = 4.0
    #: Mean outstanding queries per replica that triggers shrinkage.
    low_watermark: float = 1.0
    #: Minimum run-time between two scaling *actions* (holds are free).
    cooldown: float = 0.200
    #: Replicas added or drained per action.
    step: int = 1

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError(f"period must be positive, got {self.period}")
        if self.low_watermark < 0:
            raise ValueError(
                f"low_watermark must be >= 0, got {self.low_watermark}")
        if self.high_watermark <= self.low_watermark:
            raise ValueError(
                "high_watermark must exceed low_watermark, got "
                f"{self.high_watermark} <= {self.low_watermark}")
        if self.cooldown < 0:
            raise ValueError(
                f"cooldown must be >= 0, got {self.cooldown}")
        if self.step < 1:
            raise ValueError(f"step must be >= 1, got {self.step}")


class ScalingDecision(NamedTuple):
    """One autoscaler tick: what it saw and what it did."""

    time: float
    signal: float
    action: str  # "up" | "down" | "hold"
    replicas_before: int
    replicas_after: int


class _AutoscalerInstruments:
    """Live ``autoscaler_*`` metric families."""

    __slots__ = ("actions", "signal", "replicas")

    def __init__(self, registry: MetricsRegistry) -> None:
        self.actions = registry.counter(
            "autoscaler_actions_total",
            "Autoscaler decisions, by action taken",
            labels=("action",))
        self.signal = registry.gauge(
            "autoscaler_signal",
            "Outstanding queries per available replica at the last tick")
        self.replicas = registry.gauge(
            "autoscaler_replicas",
            "Available replicas after the last autoscaler tick")


class Autoscaler:
    """Grow/shrink a :class:`ReplicaSet` from its live load signal."""

    def __init__(
        self,
        replica_set: ReplicaSet,
        policy: Optional[AutoscalerPolicy] = None,
        *,
        signal: Optional[SignalSource] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.replica_set = replica_set
        self.policy = policy if policy is not None else AutoscalerPolicy()
        #: The pluggable load signal sampled each tick; defaults to the
        #: in-process :class:`~repro.fleet.signals.BacklogSignal`.
        self.signal_source: SignalSource = make_signal(signal)
        self.signal_source.bind(replica_set)
        #: Every tick's :class:`ScalingDecision`, holds included - the
        #: determinism witness the benchmarks compare across runs.
        self.trace: List[ScalingDecision] = []
        self._m = (
            _AutoscalerInstruments(registry) if registry is not None
            else None
        )
        self._loop: Optional[EventLoop] = None
        self._keep_going: Callable[[], bool] = lambda: False
        self._timer: Optional[EventHandle] = None
        self._last_action_time = 0.0

    # -- RunService -------------------------------------------------------------

    def start(self, loop: EventLoop,
              keep_going: Callable[[], bool]) -> None:
        self._loop = loop
        self._keep_going = keep_going
        self.trace = []
        self.signal_source.reset()
        # A fresh run may act immediately: backdate the cooldown anchor.
        self._last_action_time = loop.now - self.policy.cooldown
        self._timer = loop.schedule_after(self.policy.period, self._tick)

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    # -- decisions --------------------------------------------------------------

    def signal(self) -> float:
        """The classic in-process backlog read: mean outstanding queries
        per available replica (the ``max(1, ...)`` clamp keeps an
        all-down fleet's backlog finite so scale-up can trigger).

        Kept as a plain property-style read for tests and callers that
        want the instantaneous backlog regardless of which
        :attr:`signal_source` drives the scaling loop.
        """
        available = len(self.replica_set.available_replicas)
        return self.replica_set.total_outstanding / max(1, available)

    def _tick(self) -> None:
        self._timer = None
        loop = self._loop
        assert loop is not None
        now = loop.now
        signal = self.signal_source.sample(now)
        before = len(self.replica_set.available_replicas)
        action = "hold"
        if now - self._last_action_time >= self.policy.cooldown:
            # A list, not any(generator): short-circuiting would stop a
            # multi-replica step after its first success.
            if signal >= self.policy.high_watermark:
                grown = [self.replica_set.scale_up()
                         for _ in range(self.policy.step)]
                if any(grown):
                    action = "up"
                    self._last_action_time = now
            elif signal <= self.policy.low_watermark:
                shrunk = [self.replica_set.scale_down()
                          for _ in range(self.policy.step)]
                if any(shrunk):
                    action = "down"
                    self._last_action_time = now
        after = len(self.replica_set.available_replicas)
        self.trace.append(
            ScalingDecision(now, signal, action, before, after))
        if self._m:
            self._m.actions.labels(action=action).inc()
            self._m.signal.set(signal)
            self._m.replicas.set(float(after))
        if self._keep_going():
            self._timer = loop.schedule_after(self.policy.period, self._tick)
