"""One member of a replicated serving fleet.

A :class:`Replica` is the load balancer's view of a single backend: the
wrapped SUT, its admission :class:`~repro.durability.breaker.CircuitBreaker`,
an administrative :class:`ReplicaHealth` state, and the live counters the
balancing policies rank on (outstanding queries, a sliding window of
observed latencies).  The replica itself makes no routing decisions -
:class:`~repro.fleet.replicaset.ReplicaSet` owns those - it only keeps
the books that the decisions read.

Health is two-layered by design: the breaker tracks *observed* failures
(timeouts, malformed answers) and recovers on its own via half-open
probes, while :class:`ReplicaHealth` tracks *administrative* state (a
kill, a drain ordered by the autoscaler, an ejection ordered by the
outlier detector) that no probe should ever reverse.  A replica
receives traffic only when it is :attr:`~ReplicaHealth.UP` *and* its
breaker admits the query.

Every replica also carries a ``zone`` - the fault domain it lives in.
Zones are labels, not behavior: correlated failures
(:meth:`~repro.fleet.replicaset.ReplicaSet.kill_zone`) and zone-aware
balancing policies read them, the replica itself never does.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Callable, Deque, Optional

from ..core.sut import SystemUnderTest
from ..durability.breaker import BreakerPolicy, CircuitBreaker

#: Sliding latency-window size used for the per-replica p99 estimate the
#: weighted balancing policy ranks on.  Small on purpose: the estimate
#: must track a brownout within a few dozen queries, not average it away.
DEFAULT_LATENCY_WINDOW = 128


class ReplicaHealth(enum.Enum):
    """Administrative health of one replica.

    * **UP** - eligible for new traffic (subject to its breaker).
    * **DRAINING** - no new traffic; in-flight queries finish normally.
      The autoscaler's scale-down path parks a replica here until its
      outstanding count reaches zero.
    * **EJECTED** - quarantined by the outlier detector: alive (its
      backend still answers probe queries) but carrying no fleet
      traffic until probation re-admits it.  Distinct from DOWN so the
      detector's probes have something to talk to.
    * **DOWN** - dead.  Killed replicas and fully drained replicas land
      here; only an explicit restore brings a replica back.
    """

    UP = "up"
    DRAINING = "draining"
    EJECTED = "ejected"
    DOWN = "down"


class Replica:
    """Bookkeeping for one fleet member (no routing logic here)."""

    __slots__ = ("index", "sut", "zone", "breaker", "health", "outstanding",
                 "issued", "completed", "failed", "_latencies")

    def __init__(
        self,
        index: int,
        sut: SystemUnderTest,
        *,
        zone: str = "z0",
        breaker_policy: Optional[BreakerPolicy] = None,
        clock: Callable[[], float],
        latency_window: int = DEFAULT_LATENCY_WINDOW,
    ) -> None:
        self.index = index
        self.sut = sut
        self.zone = zone
        self.breaker = CircuitBreaker(breaker_policy, clock=clock)
        self.health = ReplicaHealth.UP
        self.outstanding = 0
        self.issued = 0
        self.completed = 0
        self.failed = 0
        self._latencies: Deque[float] = deque(maxlen=latency_window)

    @property
    def available(self) -> bool:
        """Eligible for new traffic (administratively, not breaker-wise)."""
        return self.health is ReplicaHealth.UP

    def observe_latency(self, latency: float) -> None:
        self._latencies.append(latency)

    @property
    def latency_observations(self) -> int:
        """Samples currently in the sliding latency window (the outlier
        detector's minimum-evidence guard reads this)."""
        return len(self._latencies)

    def p99(self) -> float:
        """Sliding-window p99 latency estimate (0 with no observations).

        Nearest-rank over the window - cheap enough to recompute per
        routing decision at the window sizes involved, and deterministic
        (no interpolation mode to disagree on).
        """
        if not self._latencies:
            return 0.0
        ordered = sorted(self._latencies)
        rank = min(len(ordered) - 1, int(0.99 * len(ordered)))
        return ordered[rank]

    def reset_breaker(self, policy: Optional[BreakerPolicy],
                      clock: Callable[[], float]) -> None:
        """Fresh breaker (used by restore: a revived replica must not
        inherit the failure window that got its predecessor killed)."""
        self.breaker = CircuitBreaker(policy, clock=clock)

    def clear_window(self) -> None:
        """Forget the latency window (used by restore/readmit: latencies
        observed before a kill or during a brownout would otherwise
        poison the p99 the balancer and detector rank on)."""
        self._latencies.clear()

    def __repr__(self) -> str:
        return (f"Replica(index={self.index}, zone={self.zone!r}, "
                f"health={self.health.value}, "
                f"outstanding={self.outstanding}, "
                f"breaker={self.breaker.state.value})")
