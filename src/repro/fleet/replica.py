"""One member of a replicated serving fleet.

A :class:`Replica` is the load balancer's view of a single backend: the
wrapped SUT, its admission :class:`~repro.durability.breaker.CircuitBreaker`,
an administrative :class:`ReplicaHealth` state, and the live counters the
balancing policies rank on (outstanding queries, a sliding window of
observed latencies).  The replica itself makes no routing decisions -
:class:`~repro.fleet.replicaset.ReplicaSet` owns those - it only keeps
the books that the decisions read.

Health is two-layered by design: the breaker tracks *observed* failures
(timeouts, malformed answers) and recovers on its own via half-open
probes, while :class:`ReplicaHealth` tracks *administrative* state (a
kill, a drain ordered by the autoscaler) that no probe should ever
reverse.  A replica receives traffic only when it is
:attr:`~ReplicaHealth.UP` *and* its breaker admits the query.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Callable, Deque, Optional

from ..core.sut import SystemUnderTest
from ..durability.breaker import BreakerPolicy, CircuitBreaker

#: Sliding latency-window size used for the per-replica p99 estimate the
#: weighted balancing policy ranks on.  Small on purpose: the estimate
#: must track a brownout within a few dozen queries, not average it away.
DEFAULT_LATENCY_WINDOW = 128


class ReplicaHealth(enum.Enum):
    """Administrative health of one replica.

    * **UP** - eligible for new traffic (subject to its breaker).
    * **DRAINING** - no new traffic; in-flight queries finish normally.
      The autoscaler's scale-down path parks a replica here until its
      outstanding count reaches zero.
    * **DOWN** - dead.  Killed replicas and fully drained replicas land
      here; only an explicit restore brings a replica back.
    """

    UP = "up"
    DRAINING = "draining"
    DOWN = "down"


class Replica:
    """Bookkeeping for one fleet member (no routing logic here)."""

    __slots__ = ("index", "sut", "breaker", "health", "outstanding",
                 "issued", "completed", "failed", "_latencies")

    def __init__(
        self,
        index: int,
        sut: SystemUnderTest,
        *,
        breaker_policy: Optional[BreakerPolicy] = None,
        clock: Callable[[], float],
        latency_window: int = DEFAULT_LATENCY_WINDOW,
    ) -> None:
        self.index = index
        self.sut = sut
        self.breaker = CircuitBreaker(breaker_policy, clock=clock)
        self.health = ReplicaHealth.UP
        self.outstanding = 0
        self.issued = 0
        self.completed = 0
        self.failed = 0
        self._latencies: Deque[float] = deque(maxlen=latency_window)

    @property
    def available(self) -> bool:
        """Eligible for new traffic (administratively, not breaker-wise)."""
        return self.health is ReplicaHealth.UP

    def observe_latency(self, latency: float) -> None:
        self._latencies.append(latency)

    def p99(self) -> float:
        """Sliding-window p99 latency estimate (0 with no observations).

        Nearest-rank over the window - cheap enough to recompute per
        routing decision at the window sizes involved, and deterministic
        (no interpolation mode to disagree on).
        """
        if not self._latencies:
            return 0.0
        ordered = sorted(self._latencies)
        rank = min(len(ordered) - 1, int(0.99 * len(ordered)))
        return ordered[rank]

    def reset_breaker(self, policy: Optional[BreakerPolicy],
                      clock: Callable[[], float]) -> None:
        """Fresh breaker (used by restore: a revived replica must not
        inherit the failure window that got its predecessor killed)."""
        self.breaker = CircuitBreaker(policy, clock=clock)

    def __repr__(self) -> str:
        return (f"Replica(index={self.index}, health={self.health.value}, "
                f"outstanding={self.outstanding}, "
                f"breaker={self.breaker.state.value})")
