"""A replicated serving fleet behind one SUT-shaped front door.

``ReplicaSet`` presents the :class:`~repro.core.sut.SystemUnderTest`
protocol to the LoadGen while fanning queries out across N backend
replicas.  Per query it asks the balancing policy
(:mod:`repro.fleet.balancer`) for a preference order over the
administratively-UP replicas, then walks that order until a replica's
:class:`~repro.durability.breaker.CircuitBreaker` admits the query - so
a replica that has been timing out is skipped in O(1) without the
policy having to know why.

Failure handling is reroute-first:

* an attempt that misses its ``attempt_timeout`` deadline, or answers
  with a flawed response set, is recorded against that replica's breaker
  and re-dispatched to a different replica (up to ``max_reroutes``
  extra attempts per query) before the query is failed;
* :meth:`ReplicaSet.kill_replica` (chaos drills, the benchmark's
  replica-kill study) marks the replica DOWN and *immediately* rescues
  its in-flight queries onto survivors - rerouted, not dropped, and the
  rescue does not consume the queries' own reroute budget;
* :meth:`ReplicaSet.eject_replica` quarantines a degraded-but-alive
  replica the same way (state EJECTED instead of DOWN, so the outlier
  detector's probe queries still reach its backend), and every rescue -
  kill, zone outage, or ejection - *warms the survivor's prefix cache*
  with the rescued session's prefix before re-issuing the turn;
* stragglers from superseded attempts are absorbed by the shared
  :class:`~repro.faults.filtering.CompletionFilter` idiom, so the
  referee sees exactly one terminal outcome per query.

Replicas live in **zones** (fault domains): ``zones=`` stripes or maps
each factory index to a zone label, :meth:`ReplicaSet.kill_zone` /
:meth:`ReplicaSet.restore_zone` fail and recover a whole domain at
once (every target is marked dead *before* any rescue dispatch, so a
rescued query cannot land on a replica about to die in the same
outage), and ``min_per_zone`` keeps the autoscaler's scale-down from
hollowing out a domain.  See ``docs/chaos.md`` for the correlated-
failure vocabulary built on these primitives.

The set also exposes the grow/shrink primitives the
:class:`~repro.fleet.autoscaler.Autoscaler` drives: ``scale_up`` revives
a draining or parked replica (or builds a fresh one via the factory) and
``scale_down`` drains the highest-indexed UP replica - no new traffic,
in-flight queries finish, then it parks DOWN.

Two feedback loops close through here:

* **routing reality** - after every clean completion the policy's
  :meth:`~repro.fleet.balancer.BalancerPolicy.notify_served` hook is
  called with the replica that *actually* answered (and
  ``notify_failed`` when nobody did), so stateful policies like session
  affinity pin to where the state really landed, not to their first
  preference;
* **per-replica state** - an optional ``cache_factory`` wraps every
  factory-built replica in its own state wrapper (canonically a
  :class:`~repro.sessions.cache.PrefixCacheSUT` via
  :func:`repro.sessions.cache.per_replica_cache_factory`), making the
  payoff of affinity measurable: each replica's cache trail is audited
  independently and exported as ``prefix_cache_*{replica=...}`` series.

Everything runs on the run's event loop with seeded policy RNGs, so a
(seed, policy, fault plan) triple reproduces the identical routing
trace.  With a ``registry`` the layer emits the ``fleet_*`` and ``lb_*``
metric families cataloged in ``docs/observability.md``; the design
rationale lives in ``docs/fleet.md``.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from ..core.events import EventHandle, EventLoop
from ..core.query import Query, StreamChunk
from ..core.sut import Responder, SutBase, SystemUnderTest
from ..durability.breaker import BreakerPolicy
from ..faults.filtering import CompletionFilter
from ..metrics import MetricsRegistry
from .balancer import BalancerPolicy, make_policy
from .replica import DEFAULT_LATENCY_WINDOW, Replica, ReplicaHealth

#: Domain-separation tag for the balancing policy's RNG stream (mixed
#: with the run seed), so routing draws can never collide with the fault
#: injector's or backoff-jitter's streams.
_BALANCER_TAG = 0xF1EE7


@dataclass
class FleetStats:
    """What the replica set did during one run."""

    routed_queries: int = 0
    fallbacks: int = 0
    reroutes: int = 0
    shed_queries: int = 0
    deadline_failures: int = 0
    flawed_attempts: int = 0
    stragglers_absorbed: int = 0
    kills: int = 0
    zone_kills: int = 0
    ejections: int = 0
    readmissions: int = 0
    rescued_queries: int = 0
    cache_warms: int = 0
    drained_replicas: int = 0

    def summary(self) -> str:
        return (
            f"routed={self.routed_queries} fallbacks={self.fallbacks} "
            f"reroutes={self.reroutes} shed={self.shed_queries} "
            f"deadlines={self.deadline_failures} kills={self.kills} "
            f"ejections={self.ejections} readmissions={self.readmissions} "
            f"rescued={self.rescued_queries} warms={self.cache_warms} "
            f"stragglers={self.stragglers_absorbed}"
        )


class _FleetInstruments:
    """Live ``fleet_*``/``lb_*`` metric families for one replica set."""

    __slots__ = ("routed", "fallbacks", "reroutes", "shed", "kills",
                 "stragglers", "drained", "cache_warms")

    def __init__(self, registry: MetricsRegistry, fleet) -> None:
        registry.gauge(
            "fleet_replicas",
            "Replicas that are administratively alive (not DOWN)",
            fn=lambda: float(sum(
                1 for r in fleet.replicas
                if r.health is not ReplicaHealth.DOWN)))
        registry.gauge(
            "fleet_replicas_available",
            "Replicas eligible for new traffic (UP)",
            fn=lambda: float(len(fleet.available_replicas)))
        registry.gauge(
            "fleet_replicas_ejected",
            "Replicas quarantined by outlier ejection",
            fn=lambda: float(sum(
                1 for r in fleet.replicas
                if r.health is ReplicaHealth.EJECTED)))
        registry.gauge(
            "fleet_outstanding_queries",
            "In-flight queries summed across all replicas",
            fn=lambda: float(fleet.total_outstanding))
        self.routed = registry.counter(
            "lb_routed_total",
            "Queries dispatched, by destination replica",
            labels=("replica",))
        self.fallbacks = registry.counter(
            "lb_fallbacks_total",
            "Dispatches that skipped breaker-rejecting higher choices")
        self.reroutes = registry.counter(
            "fleet_reroutes_total",
            "Attempts re-dispatched to a different replica")
        self.shed = registry.counter(
            "fleet_queries_shed_total",
            "Queries failed because no replica could take them")
        self.kills = registry.counter(
            "fleet_replica_kills_total",
            "Replicas administratively killed mid-run")
        self.stragglers = registry.counter(
            "fleet_stragglers_absorbed_total",
            "Late completions from superseded attempts, absorbed")
        self.drained = registry.counter(
            "fleet_replicas_drained_total",
            "Scale-down drains that completed (replica parked DOWN)")
        self.cache_warms = registry.counter(
            "fleet_cache_warms_total",
            "Rescued session prefixes admitted into survivor caches")


@dataclass
class _Routed:
    """Per-query in-flight state (current attempt only)."""

    query: Query
    replica: int = -1
    probe: bool = False
    reroutes: int = 0
    attempt_started: float = 0.0
    deadline_timer: Optional[EventHandle] = None

    def cancel_timer(self) -> None:
        if self.deadline_timer is not None:
            self.deadline_timer.cancel()
            self.deadline_timer = None


class ReplicaSet(SutBase):
    """N replicas behind a pluggable, breaker-aware load balancer."""

    def __init__(
        self,
        replica_factory: Callable[[int], SystemUnderTest],
        *,
        initial_replicas: int = 2,
        policy: Optional[object] = None,
        breaker_policy: Optional[BreakerPolicy] = None,
        attempt_timeout: float = 0.100,
        max_reroutes: int = 2,
        min_replicas: int = 1,
        max_replicas: int = 8,
        zones: Union[int, Sequence[str], Callable[[int], str]] = 1,
        min_per_zone: int = 0,
        latency_window: int = DEFAULT_LATENCY_WINDOW,
        seed: int = 0,
        name: Optional[str] = None,
        registry: Optional[MetricsRegistry] = None,
        cache_factory: Optional[
            Callable[[int, SystemUnderTest], SystemUnderTest]] = None,
    ) -> None:
        super().__init__(name or f"fleet[{initial_replicas}]")
        if min_replicas < 1:
            raise ValueError(
                f"min_replicas must be >= 1, got {min_replicas}")
        if not min_replicas <= initial_replicas <= max_replicas:
            raise ValueError(
                "initial_replicas must lie in [min_replicas, max_replicas]"
                f", got {initial_replicas} outside "
                f"[{min_replicas}, {max_replicas}]")
        if attempt_timeout <= 0:
            raise ValueError(
                f"attempt_timeout must be positive, got {attempt_timeout}")
        if max_reroutes < 0:
            raise ValueError(
                f"max_reroutes must be >= 0, got {max_reroutes}")
        if min_per_zone < 0:
            raise ValueError(
                f"min_per_zone must be >= 0, got {min_per_zone}")
        self._zone_fn = self._resolve_zones(zones)
        self.min_per_zone = min_per_zone
        self.replica_factory = replica_factory
        self.initial_replicas = initial_replicas
        self.policy: BalancerPolicy = make_policy(policy)
        self.breaker_policy = breaker_policy
        self.attempt_timeout = attempt_timeout
        self.max_reroutes = max_reroutes
        self.min_replicas = min_replicas
        self.max_replicas = max_replicas
        self.latency_window = latency_window
        self.seed = seed
        #: Per-replica state wrapper builder (``(index, inner) -> sut``);
        #: the canonical use is
        #: :func:`repro.sessions.cache.per_replica_cache_factory`, which
        #: gives every replica its **own** auditable
        #: :class:`~repro.sessions.cache.PrefixCacheSUT` - cache state
        #: lives on the replica, so the balancing policy's routing
        #: decisions are what make (or break) prefix locality.
        self.cache_factory = cache_factory
        self.stats = FleetStats()
        self.replicas: List[Replica] = []
        #: query id -> callback for in-flight health probes
        #: (:meth:`probe_replica`); probes bypass the balancer, the
        #: breakers, and the referee's per-query accounting entirely.
        self._probes: Dict[int, Callable] = {}
        #: replica index -> the cache wrapper built by ``cache_factory``
        #: (empty when no factory was given).  Survives kills and
        #: drains: a revived replica keeps its warm cache.
        self.caches: Dict[int, SystemUnderTest] = {}
        self._filter = CompletionFilter()
        #: Indices parked DOWN by a completed scale-down drain, in drain
        #: order - scale-up revives the most recently parked first.
        self._parked: List[int] = []
        self._m = (
            _FleetInstruments(registry, self) if registry is not None
            else None
        )

    @staticmethod
    def _resolve_zones(
        zones: Union[int, Sequence[str], Callable[[int], str]],
    ) -> Callable[[int], str]:
        """Normalize the ``zones`` argument to ``index -> zone label``.

        * an int N stripes replicas round-robin over ``z0..z{N-1}``;
        * a sequence of labels stripes over those labels;
        * a callable is used as-is.
        """
        if callable(zones):
            return zones
        if isinstance(zones, int):
            if zones < 1:
                raise ValueError(f"zones must be >= 1, got {zones}")
            return lambda index: f"z{index % zones}"
        labels = tuple(zones)
        if not labels:
            raise ValueError("zones sequence must not be empty")
        return lambda index: labels[index % len(labels)]

    # -- lifecycle --------------------------------------------------------------

    def start_run(self, loop: EventLoop, responder: Responder) -> None:
        super().start_run(loop, responder)
        self.stats = FleetStats()
        self._filter = CompletionFilter()
        self.replicas = []
        self.caches = {}
        self._parked = []
        self._probes = {}
        self.policy.start_run(np.random.default_rng(
            np.random.SeedSequence((self.seed, _BALANCER_TAG))))
        for _ in range(self.initial_replicas):
            self._add_replica()

    def _add_replica(self) -> Replica:
        index = len(self.replicas)
        sut = self.replica_factory(index)
        if self.cache_factory is not None:
            sut = self.cache_factory(index, sut)
            self.caches[index] = sut
        replica = Replica(
            index, sut,
            zone=self._zone_fn(index),
            breaker_policy=self.breaker_policy,
            clock=lambda: self.loop.now,
            latency_window=self.latency_window,
        )
        self.replicas.append(replica)
        sut.start_run(
            self.loop,
            lambda query, responses, i=index: self._on_completion(
                i, query, responses))
        return replica

    def flush(self) -> None:
        for replica in self.replicas:
            if replica.health is not ReplicaHealth.DOWN:
                replica.sut.flush()

    def close(self) -> None:
        """Release replica backends that own OS resources (worker pools,
        sockets).  Safe to call before ``start_run`` and more than once."""
        for replica in self.replicas:
            close = getattr(replica.sut, "close", None)
            if callable(close):
                close()

    # -- fleet views ------------------------------------------------------------

    @property
    def available_replicas(self) -> List[Replica]:
        """Replicas eligible for new traffic (UP), in index order."""
        return [r for r in self.replicas if r.available]

    @property
    def total_outstanding(self) -> int:
        return sum(r.outstanding for r in self.replicas)

    @property
    def zone_names(self) -> List[str]:
        """Zones present in the fleet, sorted for determinism."""
        return sorted({r.zone for r in self.replicas})

    def zone_replicas(self, zone: str) -> List[Replica]:
        """All replicas in ``zone`` (any health), in index order."""
        return [r for r in self.replicas if r.zone == zone]

    # -- routing ----------------------------------------------------------------

    def issue_query(self, query: Query) -> None:
        state = self._filter.admit(query, _Routed(query=query))
        if not self._dispatch(state, exclude=None):
            self._shed(state, "no replica available: every replica is "
                              "down, draining, or shedding load")

    def _dispatch(self, state: _Routed, exclude: Optional[int],
                  rescue: bool = False) -> bool:
        """Hand the query's next attempt to the best admitting replica.

        Walks the policy's ranking and takes the first replica whose
        breaker admits; returns False when nobody will (all rejecting,
        or no candidate besides ``exclude``).  A ``rescue`` dispatch
        (kill, zone outage, ejection) additionally warms the chosen
        survivor's prefix cache with the rescued session's prefix and
        tells the policy where the session migrated.
        """
        candidates = [
            r for r in self.available_replicas if r.index != exclude
        ]
        ranking = self.policy.rank_for(state.query, candidates)
        for position, replica in enumerate(ranking):
            verdict = replica.breaker.admit()
            if verdict == "reject":
                continue
            if position > 0:
                self.stats.fallbacks += 1
                if self._m:
                    self._m.fallbacks.inc()
            state.replica = replica.index
            state.probe = verdict == "probe"
            state.attempt_started = self.loop.now
            replica.outstanding += 1
            replica.issued += 1
            self.stats.routed_queries += 1
            if self._m:
                self._m.routed.labels(replica=replica.index).inc()
            state.deadline_timer = self.loop.schedule_after(
                self.attempt_timeout, lambda: self._deadline(state))
            if rescue:
                self._warm_rescued_session(state.query, replica.index)
                self.policy.notify_rescued(state.query, replica.index)
            # A fresh attempt streams from seq 0; forget any chunk
            # progress of the attempt this dispatch replaces so the
            # restart screens clean without double-counting.
            self._filter.restart_stream(state.query.id)
            replica.sut.issue_query(state.query)
            return True
        return False

    def _warm_rescued_session(self, query: Query, index: int) -> None:
        """Cross-replica cache admission: a rescued session turn already
        *has* its prefix (the dead replica computed it), so the rescue
        replica's cache is told to admit it rather than re-discover it
        as a miss."""
        turn = getattr(query, "session", None)
        if turn is None or turn.prefix_tokens <= 0:
            return
        admit = getattr(self.caches.get(index), "admit_session", None)
        if admit is None:
            return
        admit(turn.session_id, turn.prefix_tokens)
        self.stats.cache_warms += 1
        if self._m:
            self._m.cache_warms.inc()

    def _shed(self, state: _Routed, reason: str) -> None:
        self._filter.resolve(state.query.id)
        self.stats.shed_queries += 1
        if self._m:
            self._m.shed.inc()
        # No replica served it; stateful policies (session affinity)
        # drop their routing state - a failed turn aborts its session.
        self.policy.notify_failed(state.query)
        self.fail(state.query, reason)

    def _reroute_or_fail(self, state: _Routed, exclude: int,
                         reason: str) -> None:
        """After a lost attempt on replica ``exclude``: try elsewhere
        within the query's reroute budget, else fail it."""
        if state.reroutes < self.max_reroutes:
            state.reroutes += 1
            self.stats.reroutes += 1
            if self._m:
                self._m.reroutes.inc()
            if self._dispatch(state, exclude=exclude):
                return
        self._shed(state, reason)

    # -- timers -----------------------------------------------------------------

    def _deadline(self, state: _Routed) -> None:
        if self._filter.get(state.query.id) is not state:
            return  # resolved in the meantime
        state.deadline_timer = None
        index = state.replica
        replica = self.replicas[index]
        self._settle_attempt(replica, failed=True)
        replica.breaker.record_failure(probe=state.probe)
        self.stats.deadline_failures += 1
        self._reroute_or_fail(
            state, exclude=index,
            reason=(f"no response from replica {index} within "
                    f"{self.attempt_timeout:g}s"))

    # -- completions ------------------------------------------------------------

    def _on_chunk(self, source: int, query: Query,
                  chunk: StreamChunk) -> None:
        current = self._filter.get(query.id)
        if current is None or current.replica != source:
            # Chunk from a replica the query was rerouted away from (or
            # for a resolved query): a straggler, dropped before it can
            # touch the live attempt's stream progress.
            self.stats.stragglers_absorbed += 1
            if self._m:
                self._m.stragglers.inc()
            return
        screened = self._filter.screen_chunk(query, chunk)
        if screened.stale or screened.flaw is not None:
            self.stats.stragglers_absorbed += 1
            if self._m:
                self._m.stragglers.inc()
            return
        state: _Routed = screened.state
        # Streaming progress re-arms the attempt deadline: the replica
        # is alive, so the timeout meters inter-chunk gaps.
        if state.deadline_timer is not None:
            state.deadline_timer.cancel()
        state.deadline_timer = self.loop.schedule_after(
            self.attempt_timeout, lambda: self._deadline(state))
        self._responder(query, chunk)

    def _on_completion(self, source: int, query: Query, responses) -> None:
        if query.id in self._probes:
            if isinstance(responses, StreamChunk):
                return  # probes wait for their terminal outcome
            self._probes.pop(query.id)(query, responses)
            return
        if isinstance(responses, StreamChunk):
            self._on_chunk(source, query, responses)
            return
        screened = self._filter.screen(query, responses)
        if screened.stale or screened.state.replica != source:
            # Duplicate, post-resolution straggler, or an answer from a
            # replica the query was already rerouted away from (its
            # books were settled at reroute time).  Absorbed: the
            # referee sees one terminal outcome per query.
            self.stats.stragglers_absorbed += 1
            if self._m:
                self._m.stragglers.inc()
            return
        state: _Routed = screened.state
        replica = self.replicas[source]
        if screened.flaw is not None:
            state.cancel_timer()
            self._settle_attempt(replica, failed=True)
            replica.breaker.record_failure(probe=state.probe)
            self.stats.flawed_attempts += 1
            self._reroute_or_fail(state, exclude=source,
                                  reason=screened.flaw)
            return
        state.cancel_timer()
        self._filter.resolve(query.id)
        self._settle_attempt(replica, failed=False)
        replica.breaker.record_success(probe=state.probe)
        replica.observe_latency(self.loop.now - state.attempt_started)
        # Close the routing feedback loop: the policy learns which
        # replica *actually* served the query - through breaker
        # rejections, reroutes, and kill rescues - so its state (e.g.
        # session pins) tracks where the prefix really landed.
        self.policy.notify_served(query, source)
        self.complete(query, responses)

    def _settle_attempt(self, replica: Replica, *, failed: bool) -> None:
        replica.outstanding -= 1
        if failed:
            replica.failed += 1
        else:
            replica.completed += 1
        self._maybe_drained(replica)

    # -- health and scaling -----------------------------------------------------

    def _rescue_inflight(self, index: int, *, cause: str) -> int:
        """Re-dispatch every in-flight query of replica ``index`` onto
        survivors - rerouted, not dropped - without consuming the
        queries' own reroute budgets (the failure is not the query's
        fault).  Returns the number of rescued queries."""
        replica = self.replicas[index]
        rescued = 0
        for state in list(self._filter.states()):
            if state.replica != index:
                continue
            state.cancel_timer()
            replica.outstanding -= 1
            self.stats.reroutes += 1
            if self._m:
                self._m.reroutes.inc()
            if self._dispatch(state, exclude=index, rescue=True):
                rescued += 1
            else:
                self._shed(state, f"replica {index} {cause} and no "
                                  "surviving replica would admit the query")
        self.stats.rescued_queries += rescued
        return rescued

    def kill_replica(self, index: int) -> int:
        """Administratively kill replica ``index`` (chaos drill).

        Its in-flight queries are rescued onto surviving replicas
        immediately - rerouted, not dropped - and the rescue does not
        consume their own reroute budgets (the kill is not the query's
        fault).  Returns the number of rescued queries.
        """
        replica = self.replicas[index]
        if replica.health is ReplicaHealth.DOWN:
            return 0
        replica.health = ReplicaHealth.DOWN
        self.stats.kills += 1
        if self._m:
            self._m.kills.inc()
        return self._rescue_inflight(index, cause="killed")

    def kill_zone(self, zone: str) -> int:
        """Kill every alive replica in ``zone`` at once (zone outage).

        All targets are marked DOWN *before* any rescue dispatch, so a
        rescued query can never land on a replica that is about to die
        in the same outage.  Returns the total rescued queries.
        """
        targets = [r for r in self.replicas
                   if r.zone == zone and r.health is not ReplicaHealth.DOWN]
        if not targets:
            return 0
        for replica in targets:
            replica.health = ReplicaHealth.DOWN
            self.stats.kills += 1
            if self._m:
                self._m.kills.inc()
        self.stats.zone_kills += 1
        rescued = 0
        for replica in targets:
            rescued += self._rescue_inflight(
                replica.index, cause=f"killed with zone {zone!r}")
        return rescued

    def eject_replica(self, index: int) -> int:
        """Quarantine an UP replica (outlier ejection, gray failure).

        Like :meth:`kill_replica` - in-flight queries are rescued onto
        survivors at once - except the replica lands EJECTED, not DOWN:
        its backend stays reachable for the outlier detector's probe
        queries (:meth:`probe_replica`) so probation can re-admit it.
        Returns the number of rescued queries; 0 if it was not UP.
        """
        replica = self.replicas[index]
        if replica.health is not ReplicaHealth.UP:
            return 0
        replica.health = ReplicaHealth.EJECTED
        self.stats.ejections += 1
        return self._rescue_inflight(index, cause="ejected")

    def readmit_replica(self, index: int) -> None:
        """Return an EJECTED replica to service with a clean slate.

        Fresh breaker and an empty latency window: the observations
        that got it ejected describe the degradation, not the replica
        that probation just vouched for.
        """
        replica = self.replicas[index]
        if replica.health is not ReplicaHealth.EJECTED:
            return
        replica.health = ReplicaHealth.UP
        replica.reset_breaker(self.breaker_policy, lambda: self.loop.now)
        replica.clear_window()
        self.stats.readmissions += 1

    def probe_replica(self, index: int, query: Query,
                      on_result: Callable[[Query, object], None]) -> None:
        """Issue a health probe straight to replica ``index``.

        Probes bypass the balancer, the breakers, and the referee's
        per-query accounting: the terminal outcome (completion or
        failure) is handed to ``on_result`` and nothing else in the
        fleet notices.  Callers own timeout handling - a probe that
        never answers stays pending until :meth:`cancel_probe`.
        """
        self._probes[query.id] = on_result
        self.replicas[index].sut.issue_query(query)

    def cancel_probe(self, query_id: int) -> None:
        """Forget a pending probe (its answer, if any, is dropped)."""
        self._probes.pop(query_id, None)

    def restore_replica(self, index: int) -> None:
        """Bring a DOWN replica back UP with a fresh breaker."""
        replica = self.replicas[index]
        replica.health = ReplicaHealth.UP
        replica.reset_breaker(self.breaker_policy, lambda: self.loop.now)
        replica.clear_window()
        if index in self._parked:
            self._parked.remove(index)

    def restore_zone(self, zone: str) -> int:
        """Bring a zone's DOWN replicas back UP (outage recovery).

        Replicas parked by a completed scale-down drain stay parked -
        reviving those is the autoscaler's call, not the recovery's.
        Returns the number of replicas restored.
        """
        restored = 0
        for replica in self.replicas:
            if (replica.zone == zone
                    and replica.health is ReplicaHealth.DOWN
                    and replica.index not in self._parked):
                self.restore_replica(replica.index)
                restored += 1
        return restored

    def scale_up(self) -> bool:
        """Add one serving replica; False at the ``max_replicas`` cap.

        Preference order: un-drain a DRAINING replica (cheapest - it is
        still warm), revive the most recently parked one, else build a
        fresh replica through the factory.  Among candidates at the
        same tier the one from the zone with the fewest available
        replicas wins, so recovery refills the hollowed-out domain
        first (ties keep the pre-zone order: highest index).
        """
        if len(self.available_replicas) >= self.max_replicas:
            return False
        zone_avail = Counter(r.zone for r in self.available_replicas)
        draining = [r for r in self.replicas
                    if r.health is ReplicaHealth.DRAINING]
        if draining:
            victim = min(reversed(draining),
                         key=lambda r: zone_avail[r.zone])
            victim.health = ReplicaHealth.UP
            return True
        if self._parked:
            index = min(reversed(self._parked),
                        key=lambda i: zone_avail[self.replicas[i].zone])
            self.restore_replica(index)
            return True
        self._add_replica()
        return True

    def scale_down(self) -> bool:
        """Drain the highest-indexed drainable UP replica; False at the
        floor.

        The replica stops receiving new traffic at once; it parks DOWN
        when its last in-flight query resolves.  A replica whose zone
        would drop below ``min_per_zone`` available replicas is not
        drainable - the autoscaler can never hollow out a fault domain
        past the configured survivable minimum.
        """
        available = self.available_replicas
        if len(available) <= self.min_replicas:
            return False
        zone_avail = Counter(r.zone for r in available)
        for victim in reversed(available):
            if zone_avail[victim.zone] - 1 < self.min_per_zone:
                continue
            victim.health = ReplicaHealth.DRAINING
            self._maybe_drained(victim)
            return True
        return False

    def _maybe_drained(self, replica: Replica) -> None:
        if (replica.health is ReplicaHealth.DRAINING
                and replica.outstanding == 0):
            replica.health = ReplicaHealth.DOWN
            self._parked.append(replica.index)
            self.stats.drained_replicas += 1
            if self._m:
                self._m.drained.inc()
