"""A replicated serving fleet behind one SUT-shaped front door.

``ReplicaSet`` presents the :class:`~repro.core.sut.SystemUnderTest`
protocol to the LoadGen while fanning queries out across N backend
replicas.  Per query it asks the balancing policy
(:mod:`repro.fleet.balancer`) for a preference order over the
administratively-UP replicas, then walks that order until a replica's
:class:`~repro.durability.breaker.CircuitBreaker` admits the query - so
a replica that has been timing out is skipped in O(1) without the
policy having to know why.

Failure handling is reroute-first:

* an attempt that misses its ``attempt_timeout`` deadline, or answers
  with a flawed response set, is recorded against that replica's breaker
  and re-dispatched to a different replica (up to ``max_reroutes``
  extra attempts per query) before the query is failed;
* :meth:`ReplicaSet.kill_replica` (chaos drills, the benchmark's
  replica-kill study) marks the replica DOWN and *immediately* rescues
  its in-flight queries onto survivors - rerouted, not dropped, and the
  rescue does not consume the queries' own reroute budget;
* stragglers from superseded attempts are absorbed by the shared
  :class:`~repro.faults.filtering.CompletionFilter` idiom, so the
  referee sees exactly one terminal outcome per query.

The set also exposes the grow/shrink primitives the
:class:`~repro.fleet.autoscaler.Autoscaler` drives: ``scale_up`` revives
a draining or parked replica (or builds a fresh one via the factory) and
``scale_down`` drains the highest-indexed UP replica - no new traffic,
in-flight queries finish, then it parks DOWN.

Two feedback loops close through here:

* **routing reality** - after every clean completion the policy's
  :meth:`~repro.fleet.balancer.BalancerPolicy.notify_served` hook is
  called with the replica that *actually* answered (and
  ``notify_failed`` when nobody did), so stateful policies like session
  affinity pin to where the state really landed, not to their first
  preference;
* **per-replica state** - an optional ``cache_factory`` wraps every
  factory-built replica in its own state wrapper (canonically a
  :class:`~repro.sessions.cache.PrefixCacheSUT` via
  :func:`repro.sessions.cache.per_replica_cache_factory`), making the
  payoff of affinity measurable: each replica's cache trail is audited
  independently and exported as ``prefix_cache_*{replica=...}`` series.

Everything runs on the run's event loop with seeded policy RNGs, so a
(seed, policy, fault plan) triple reproduces the identical routing
trace.  With a ``registry`` the layer emits the ``fleet_*`` and ``lb_*``
metric families cataloged in ``docs/observability.md``; the design
rationale lives in ``docs/fleet.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from ..core.events import EventHandle, EventLoop
from ..core.query import Query, StreamChunk
from ..core.sut import Responder, SutBase, SystemUnderTest
from ..durability.breaker import BreakerPolicy
from ..faults.filtering import CompletionFilter
from ..metrics import MetricsRegistry
from .balancer import BalancerPolicy, make_policy
from .replica import DEFAULT_LATENCY_WINDOW, Replica, ReplicaHealth

#: Domain-separation tag for the balancing policy's RNG stream (mixed
#: with the run seed), so routing draws can never collide with the fault
#: injector's or backoff-jitter's streams.
_BALANCER_TAG = 0xF1EE7


@dataclass
class FleetStats:
    """What the replica set did during one run."""

    routed_queries: int = 0
    fallbacks: int = 0
    reroutes: int = 0
    shed_queries: int = 0
    deadline_failures: int = 0
    flawed_attempts: int = 0
    stragglers_absorbed: int = 0
    kills: int = 0
    rescued_queries: int = 0
    drained_replicas: int = 0

    def summary(self) -> str:
        return (
            f"routed={self.routed_queries} fallbacks={self.fallbacks} "
            f"reroutes={self.reroutes} shed={self.shed_queries} "
            f"deadlines={self.deadline_failures} kills={self.kills} "
            f"rescued={self.rescued_queries} "
            f"stragglers={self.stragglers_absorbed}"
        )


class _FleetInstruments:
    """Live ``fleet_*``/``lb_*`` metric families for one replica set."""

    __slots__ = ("routed", "fallbacks", "reroutes", "shed", "kills",
                 "stragglers", "drained")

    def __init__(self, registry: MetricsRegistry, fleet) -> None:
        registry.gauge(
            "fleet_replicas",
            "Replicas that are administratively alive (UP or draining)",
            fn=lambda: float(sum(
                1 for r in fleet.replicas
                if r.health is not ReplicaHealth.DOWN)))
        registry.gauge(
            "fleet_replicas_available",
            "Replicas eligible for new traffic (UP)",
            fn=lambda: float(len(fleet.available_replicas)))
        registry.gauge(
            "fleet_outstanding_queries",
            "In-flight queries summed across all replicas",
            fn=lambda: float(fleet.total_outstanding))
        self.routed = registry.counter(
            "lb_routed_total",
            "Queries dispatched, by destination replica",
            labels=("replica",))
        self.fallbacks = registry.counter(
            "lb_fallbacks_total",
            "Dispatches that skipped breaker-rejecting higher choices")
        self.reroutes = registry.counter(
            "fleet_reroutes_total",
            "Attempts re-dispatched to a different replica")
        self.shed = registry.counter(
            "fleet_queries_shed_total",
            "Queries failed because no replica could take them")
        self.kills = registry.counter(
            "fleet_replica_kills_total",
            "Replicas administratively killed mid-run")
        self.stragglers = registry.counter(
            "fleet_stragglers_absorbed_total",
            "Late completions from superseded attempts, absorbed")
        self.drained = registry.counter(
            "fleet_replicas_drained_total",
            "Scale-down drains that completed (replica parked DOWN)")


@dataclass
class _Routed:
    """Per-query in-flight state (current attempt only)."""

    query: Query
    replica: int = -1
    probe: bool = False
    reroutes: int = 0
    attempt_started: float = 0.0
    deadline_timer: Optional[EventHandle] = None

    def cancel_timer(self) -> None:
        if self.deadline_timer is not None:
            self.deadline_timer.cancel()
            self.deadline_timer = None


class ReplicaSet(SutBase):
    """N replicas behind a pluggable, breaker-aware load balancer."""

    def __init__(
        self,
        replica_factory: Callable[[int], SystemUnderTest],
        *,
        initial_replicas: int = 2,
        policy: Optional[object] = None,
        breaker_policy: Optional[BreakerPolicy] = None,
        attempt_timeout: float = 0.100,
        max_reroutes: int = 2,
        min_replicas: int = 1,
        max_replicas: int = 8,
        latency_window: int = DEFAULT_LATENCY_WINDOW,
        seed: int = 0,
        name: Optional[str] = None,
        registry: Optional[MetricsRegistry] = None,
        cache_factory: Optional[
            Callable[[int, SystemUnderTest], SystemUnderTest]] = None,
    ) -> None:
        super().__init__(name or f"fleet[{initial_replicas}]")
        if min_replicas < 1:
            raise ValueError(
                f"min_replicas must be >= 1, got {min_replicas}")
        if not min_replicas <= initial_replicas <= max_replicas:
            raise ValueError(
                "initial_replicas must lie in [min_replicas, max_replicas]"
                f", got {initial_replicas} outside "
                f"[{min_replicas}, {max_replicas}]")
        if attempt_timeout <= 0:
            raise ValueError(
                f"attempt_timeout must be positive, got {attempt_timeout}")
        if max_reroutes < 0:
            raise ValueError(
                f"max_reroutes must be >= 0, got {max_reroutes}")
        self.replica_factory = replica_factory
        self.initial_replicas = initial_replicas
        self.policy: BalancerPolicy = make_policy(policy)
        self.breaker_policy = breaker_policy
        self.attempt_timeout = attempt_timeout
        self.max_reroutes = max_reroutes
        self.min_replicas = min_replicas
        self.max_replicas = max_replicas
        self.latency_window = latency_window
        self.seed = seed
        #: Per-replica state wrapper builder (``(index, inner) -> sut``);
        #: the canonical use is
        #: :func:`repro.sessions.cache.per_replica_cache_factory`, which
        #: gives every replica its **own** auditable
        #: :class:`~repro.sessions.cache.PrefixCacheSUT` - cache state
        #: lives on the replica, so the balancing policy's routing
        #: decisions are what make (or break) prefix locality.
        self.cache_factory = cache_factory
        self.stats = FleetStats()
        self.replicas: List[Replica] = []
        #: replica index -> the cache wrapper built by ``cache_factory``
        #: (empty when no factory was given).  Survives kills and
        #: drains: a revived replica keeps its warm cache.
        self.caches: Dict[int, SystemUnderTest] = {}
        self._filter = CompletionFilter()
        #: Indices parked DOWN by a completed scale-down drain, in drain
        #: order - scale-up revives the most recently parked first.
        self._parked: List[int] = []
        self._m = (
            _FleetInstruments(registry, self) if registry is not None
            else None
        )

    # -- lifecycle --------------------------------------------------------------

    def start_run(self, loop: EventLoop, responder: Responder) -> None:
        super().start_run(loop, responder)
        self.stats = FleetStats()
        self._filter = CompletionFilter()
        self.replicas = []
        self.caches = {}
        self._parked = []
        self.policy.start_run(np.random.default_rng(
            np.random.SeedSequence((self.seed, _BALANCER_TAG))))
        for _ in range(self.initial_replicas):
            self._add_replica()

    def _add_replica(self) -> Replica:
        index = len(self.replicas)
        sut = self.replica_factory(index)
        if self.cache_factory is not None:
            sut = self.cache_factory(index, sut)
            self.caches[index] = sut
        replica = Replica(
            index, sut,
            breaker_policy=self.breaker_policy,
            clock=lambda: self.loop.now,
            latency_window=self.latency_window,
        )
        self.replicas.append(replica)
        sut.start_run(
            self.loop,
            lambda query, responses, i=index: self._on_completion(
                i, query, responses))
        return replica

    def flush(self) -> None:
        for replica in self.replicas:
            if replica.health is not ReplicaHealth.DOWN:
                replica.sut.flush()

    def close(self) -> None:
        """Release replica backends that own OS resources (worker pools,
        sockets).  Safe to call before ``start_run`` and more than once."""
        for replica in self.replicas:
            close = getattr(replica.sut, "close", None)
            if callable(close):
                close()

    # -- fleet views ------------------------------------------------------------

    @property
    def available_replicas(self) -> List[Replica]:
        """Replicas eligible for new traffic (UP), in index order."""
        return [r for r in self.replicas if r.available]

    @property
    def total_outstanding(self) -> int:
        return sum(r.outstanding for r in self.replicas)

    # -- routing ----------------------------------------------------------------

    def issue_query(self, query: Query) -> None:
        state = self._filter.admit(query, _Routed(query=query))
        if not self._dispatch(state, exclude=None):
            self._shed(state, "no replica available: every replica is "
                              "down, draining, or shedding load")

    def _dispatch(self, state: _Routed, exclude: Optional[int]) -> bool:
        """Hand the query's next attempt to the best admitting replica.

        Walks the policy's ranking and takes the first replica whose
        breaker admits; returns False when nobody will (all rejecting,
        or no candidate besides ``exclude``).
        """
        candidates = [
            r for r in self.available_replicas if r.index != exclude
        ]
        ranking = self.policy.rank_for(state.query, candidates)
        for position, replica in enumerate(ranking):
            verdict = replica.breaker.admit()
            if verdict == "reject":
                continue
            if position > 0:
                self.stats.fallbacks += 1
                if self._m:
                    self._m.fallbacks.inc()
            state.replica = replica.index
            state.probe = verdict == "probe"
            state.attempt_started = self.loop.now
            replica.outstanding += 1
            replica.issued += 1
            self.stats.routed_queries += 1
            if self._m:
                self._m.routed.labels(replica=replica.index).inc()
            state.deadline_timer = self.loop.schedule_after(
                self.attempt_timeout, lambda: self._deadline(state))
            # A fresh attempt streams from seq 0; forget any chunk
            # progress of the attempt this dispatch replaces so the
            # restart screens clean without double-counting.
            self._filter.restart_stream(state.query.id)
            replica.sut.issue_query(state.query)
            return True
        return False

    def _shed(self, state: _Routed, reason: str) -> None:
        self._filter.resolve(state.query.id)
        self.stats.shed_queries += 1
        if self._m:
            self._m.shed.inc()
        # No replica served it; stateful policies (session affinity)
        # drop their routing state - a failed turn aborts its session.
        self.policy.notify_failed(state.query)
        self.fail(state.query, reason)

    def _reroute_or_fail(self, state: _Routed, exclude: int,
                         reason: str) -> None:
        """After a lost attempt on replica ``exclude``: try elsewhere
        within the query's reroute budget, else fail it."""
        if state.reroutes < self.max_reroutes:
            state.reroutes += 1
            self.stats.reroutes += 1
            if self._m:
                self._m.reroutes.inc()
            if self._dispatch(state, exclude=exclude):
                return
        self._shed(state, reason)

    # -- timers -----------------------------------------------------------------

    def _deadline(self, state: _Routed) -> None:
        if self._filter.get(state.query.id) is not state:
            return  # resolved in the meantime
        state.deadline_timer = None
        index = state.replica
        replica = self.replicas[index]
        self._settle_attempt(replica, failed=True)
        replica.breaker.record_failure(probe=state.probe)
        self.stats.deadline_failures += 1
        self._reroute_or_fail(
            state, exclude=index,
            reason=(f"no response from replica {index} within "
                    f"{self.attempt_timeout:g}s"))

    # -- completions ------------------------------------------------------------

    def _on_chunk(self, source: int, query: Query,
                  chunk: StreamChunk) -> None:
        current = self._filter.get(query.id)
        if current is None or current.replica != source:
            # Chunk from a replica the query was rerouted away from (or
            # for a resolved query): a straggler, dropped before it can
            # touch the live attempt's stream progress.
            self.stats.stragglers_absorbed += 1
            if self._m:
                self._m.stragglers.inc()
            return
        screened = self._filter.screen_chunk(query, chunk)
        if screened.stale or screened.flaw is not None:
            self.stats.stragglers_absorbed += 1
            if self._m:
                self._m.stragglers.inc()
            return
        state: _Routed = screened.state
        # Streaming progress re-arms the attempt deadline: the replica
        # is alive, so the timeout meters inter-chunk gaps.
        if state.deadline_timer is not None:
            state.deadline_timer.cancel()
        state.deadline_timer = self.loop.schedule_after(
            self.attempt_timeout, lambda: self._deadline(state))
        self._responder(query, chunk)

    def _on_completion(self, source: int, query: Query, responses) -> None:
        if isinstance(responses, StreamChunk):
            self._on_chunk(source, query, responses)
            return
        screened = self._filter.screen(query, responses)
        if screened.stale or screened.state.replica != source:
            # Duplicate, post-resolution straggler, or an answer from a
            # replica the query was already rerouted away from (its
            # books were settled at reroute time).  Absorbed: the
            # referee sees one terminal outcome per query.
            self.stats.stragglers_absorbed += 1
            if self._m:
                self._m.stragglers.inc()
            return
        state: _Routed = screened.state
        replica = self.replicas[source]
        if screened.flaw is not None:
            state.cancel_timer()
            self._settle_attempt(replica, failed=True)
            replica.breaker.record_failure(probe=state.probe)
            self.stats.flawed_attempts += 1
            self._reroute_or_fail(state, exclude=source,
                                  reason=screened.flaw)
            return
        state.cancel_timer()
        self._filter.resolve(query.id)
        self._settle_attempt(replica, failed=False)
        replica.breaker.record_success(probe=state.probe)
        replica.observe_latency(self.loop.now - state.attempt_started)
        # Close the routing feedback loop: the policy learns which
        # replica *actually* served the query - through breaker
        # rejections, reroutes, and kill rescues - so its state (e.g.
        # session pins) tracks where the prefix really landed.
        self.policy.notify_served(query, source)
        self.complete(query, responses)

    def _settle_attempt(self, replica: Replica, *, failed: bool) -> None:
        replica.outstanding -= 1
        if failed:
            replica.failed += 1
        else:
            replica.completed += 1
        self._maybe_drained(replica)

    # -- health and scaling -----------------------------------------------------

    def kill_replica(self, index: int) -> int:
        """Administratively kill replica ``index`` (chaos drill).

        Its in-flight queries are rescued onto surviving replicas
        immediately - rerouted, not dropped - and the rescue does not
        consume their own reroute budgets (the kill is not the query's
        fault).  Returns the number of rescued queries.
        """
        replica = self.replicas[index]
        if replica.health is ReplicaHealth.DOWN:
            return 0
        replica.health = ReplicaHealth.DOWN
        self.stats.kills += 1
        if self._m:
            self._m.kills.inc()
        rescued = 0
        for state in list(self._filter.states()):
            if state.replica != index:
                continue
            state.cancel_timer()
            replica.outstanding -= 1
            self.stats.reroutes += 1
            if self._m:
                self._m.reroutes.inc()
            if self._dispatch(state, exclude=index):
                rescued += 1
            else:
                self._shed(state, f"replica {index} killed and no "
                                  "surviving replica would admit the query")
        self.stats.rescued_queries += rescued
        return rescued

    def restore_replica(self, index: int) -> None:
        """Bring a DOWN replica back UP with a fresh breaker."""
        replica = self.replicas[index]
        replica.health = ReplicaHealth.UP
        replica.reset_breaker(self.breaker_policy, lambda: self.loop.now)
        if index in self._parked:
            self._parked.remove(index)

    def scale_up(self) -> bool:
        """Add one serving replica; False at the ``max_replicas`` cap.

        Preference order: un-drain a DRAINING replica (cheapest - it is
        still warm), revive the most recently parked one, else build a
        fresh replica through the factory.
        """
        if len(self.available_replicas) >= self.max_replicas:
            return False
        draining = [r for r in self.replicas
                    if r.health is ReplicaHealth.DRAINING]
        if draining:
            draining[-1].health = ReplicaHealth.UP
            return True
        if self._parked:
            self.restore_replica(self._parked[-1])
            return True
        self._add_replica()
        return True

    def scale_down(self) -> bool:
        """Drain the highest-indexed UP replica; False at the floor.

        The replica stops receiving new traffic at once; it parks DOWN
        when its last in-flight query resolves.
        """
        available = self.available_replicas
        if len(available) <= self.min_replicas:
            return False
        victim = available[-1]
        victim.health = ReplicaHealth.DRAINING
        self._maybe_drained(victim)
        return True

    def _maybe_drained(self, replica: Replica) -> None:
        if (replica.health is ReplicaHealth.DRAINING
                and replica.outstanding == 0):
            replica.health = ReplicaHealth.DOWN
            self._parked.append(replica.index)
            self.stats.drained_replicas += 1
            if self._m:
                self._m.drained.inc()
