"""Gray-failure detection: deterministic outlier ejection for the fleet.

A replica can be sick without being dead: answering every query, keeping
its circuit breaker closed, and still running 10x slower than its peers
(thermal throttling, a noisy neighbor, a dying disk).  Nothing in the
breaker/deadline machinery fires - the stretched latency still beats the
attempt deadline - while the fleet's p99 quietly blows the SLO.  The
:class:`OutlierDetector` is the layer that *can* see this: a
:class:`~repro.core.loadgen.RunService` that ticks on the run's (virtual)
event loop, scores every serving replica's sliding latency window and
windowed failure rate against the fleet median, and quarantines the
outliers.

The state machine per replica (drawn in ``docs/chaos.md``)::

    UP --eject--> EJECTED (quarantine) --after ejection_duration-->
    probation (seeded probe queries) --all pass--> readmitted UP
                                     --any fail--> re-ejected (quarantine)

* **Eject** - a replica whose window p99 exceeds ``latency_multiplier``
  times the fleet median (or whose windowed failure rate exceeds
  ``failure_rate_threshold``), with at least ``min_observations`` of
  evidence, is handed to
  :meth:`~repro.fleet.replicaset.ReplicaSet.eject_replica`: its
  in-flight queries are rescued onto survivors (session prefixes warmed
  into the rescue caches) and it stops receiving traffic while its
  backend stays alive.  Ejection is *bounded*: at most
  ``max_ejection_fraction`` of the administratively-alive fleet may be
  in quarantine at once - with everyone degraded there is no healthy
  majority to prefer, and ejecting the whole fleet would be worse than
  the gray failure.
* **Probe** - after ``ejection_duration`` of quarantine the detector
  issues ``probe_count`` seeded probe queries straight to the ejected
  replica (:meth:`~repro.fleet.replicaset.ReplicaSet.probe_replica`,
  bypassing balancer, breakers, and referee).  All must answer cleanly
  within ``probe_timeout``.
* **Readmit / re-eject** - a clean probation re-admits the replica with
  a fresh breaker and an empty latency window; any failed or late probe
  restarts the quarantine clock.

Everything - tick times, scores, probe payloads (drawn from
``SeedSequence((seed, 0xE7EC7))``) - is a deterministic function of run
state at deterministic virtual times, so the full
:attr:`~OutlierDetector.trace` of :class:`EjectionEvent` entries is
bit-identical across same-seed runs; the chaos acceptance tests assert
exactly that.  With a ``registry`` the ``ejection_*`` metric families
light up (``docs/observability.md``).
"""

from __future__ import annotations

import itertools
import statistics
from collections import deque
from dataclasses import dataclass, field
from typing import (Callable, Deque, Dict, List, NamedTuple, Optional, Set,
                    Tuple)

import numpy as np

from ..core.events import EventHandle, EventLoop
from ..core.query import Query, QueryFailure, QuerySample
from ..metrics import MetricsRegistry
from .replica import ReplicaHealth
from .replicaset import ReplicaSet

#: Domain-separation tag for the detector's probe RNG stream, disjoint
#: from the balancer (0xF1EE7), session (0x5E55), and chaos (0xC4A05)
#: streams.
_PROBE_TAG = 0xE7EC7

#: Base for probe query ids - above the fault injector's phantom range
#: (2_000_000_000) so probe ids can never collide with anything the
#: LoadGen or the injector fabricates.
_PROBE_ID_BASE = 3_000_000_000


@dataclass(frozen=True)
class OutlierPolicy:
    """Tuning for :class:`OutlierDetector`."""

    #: Seconds of run time between scoring ticks.
    period: float = 0.020
    #: Eject when window p99 exceeds this multiple of the fleet median.
    latency_multiplier: float = 3.0
    #: Eject when the windowed failure rate exceeds this share.
    failure_rate_threshold: float = 0.5
    #: Minimum evidence (latency samples / windowed attempts) before a
    #: replica can be judged at all - cold replicas are never ejected.
    min_observations: int = 16
    #: Scoring ticks the failure-rate window spans.
    failure_window_ticks: int = 8
    #: Hard cap: quarantined share of the administratively-alive fleet.
    max_ejection_fraction: float = 0.34
    #: Quarantine time before probation probes are attempted.
    ejection_duration: float = 0.200
    #: Probe queries per probation round; all must pass to readmit.
    probe_count: int = 3
    #: Deadline for the whole probation round's probes to answer.
    probe_timeout: float = 0.050

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError(f"period must be positive, got {self.period}")
        if self.latency_multiplier <= 1.0:
            raise ValueError(
                "latency_multiplier must exceed 1, got "
                f"{self.latency_multiplier}")
        if not 0.0 < self.failure_rate_threshold <= 1.0:
            raise ValueError(
                "failure_rate_threshold must lie in (0, 1], got "
                f"{self.failure_rate_threshold}")
        if self.min_observations < 1:
            raise ValueError(
                f"min_observations must be >= 1, got {self.min_observations}")
        if self.failure_window_ticks < 1:
            raise ValueError(
                "failure_window_ticks must be >= 1, got "
                f"{self.failure_window_ticks}")
        if not 0.0 <= self.max_ejection_fraction <= 1.0:
            raise ValueError(
                "max_ejection_fraction must lie in [0, 1], got "
                f"{self.max_ejection_fraction}")
        if self.ejection_duration < 0:
            raise ValueError(
                f"ejection_duration must be >= 0, got "
                f"{self.ejection_duration}")
        if self.probe_count < 1:
            raise ValueError(
                f"probe_count must be >= 1, got {self.probe_count}")
        if self.probe_timeout <= 0:
            raise ValueError(
                f"probe_timeout must be positive, got {self.probe_timeout}")


class EjectionEvent(NamedTuple):
    """One detector state transition - the determinism witness.

    ``action`` is ``"eject"`` (``detail`` = p99 / fleet-median ratio, or
    the windowed failure rate for failure-triggered ejections),
    ``"probe"`` (``detail`` = probes issued), ``"readmit"`` (``detail``
    = seconds spent quarantined), or ``"re-eject"`` (``detail`` =
    probes still unanswered when probation failed).
    """

    time: float
    replica: int
    action: str
    detail: float


@dataclass
class _Probation:
    """One in-flight probation round for one ejected replica."""

    started: float
    pending: Set[int] = field(default_factory=set)
    timer: Optional[EventHandle] = None


class _DetectorInstruments:
    """Live ``ejection_*`` metric families."""

    __slots__ = ("ejections", "readmissions", "probes")

    def __init__(self, registry: MetricsRegistry, detector) -> None:
        self.ejections = registry.counter(
            "ejection_ejections_total",
            "Outlier ejections, first-time and probation failures alike",
            labels=("replica",))
        self.readmissions = registry.counter(
            "ejection_readmissions_total",
            "Quarantined replicas re-admitted after a clean probation",
            labels=("replica",))
        self.probes = registry.counter(
            "ejection_probes_total",
            "Probation probe queries issued to quarantined replicas")
        registry.gauge(
            "ejection_active",
            "Replicas currently quarantined by the outlier detector",
            fn=lambda: float(len(detector.quarantined)))


class OutlierDetector:
    """Eject gray-failing replicas; probe and readmit them when healed."""

    def __init__(
        self,
        replica_set: ReplicaSet,
        policy: Optional[OutlierPolicy] = None,
        *,
        seed: int = 0,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.replica_set = replica_set
        self.policy = policy if policy is not None else OutlierPolicy()
        self.seed = seed
        #: Every state transition, in tick order - bit-identical across
        #: same-seed runs (the chaos acceptance contract).
        self.trace: List[EjectionEvent] = []
        self._m = (
            _DetectorInstruments(registry, self) if registry is not None
            else None
        )
        self._loop: Optional[EventLoop] = None
        self._keep_going: Callable[[], bool] = lambda: False
        self._timer: Optional[EventHandle] = None
        self._rng = np.random.default_rng(
            np.random.SeedSequence((seed, _PROBE_TAG)))
        self._probe_ids = itertools.count(_PROBE_ID_BASE)
        #: replica index -> virtual time its (latest) quarantine began.
        self._quarantine: Dict[int, float] = {}
        self._probing: Dict[int, _Probation] = {}
        #: probe query id -> replica index it was sent to.
        self._probe_owner: Dict[int, int] = {}
        #: replica index -> (completed+failed, failed) seen last tick.
        self._counters_seen: Dict[int, Tuple[int, int]] = {}
        #: replica index -> per-tick (attempts, failures) deltas.
        self._fail_window: Dict[int, Deque[Tuple[int, int]]] = {}

    @property
    def quarantined(self) -> List[int]:
        """Replica indices currently in quarantine, sorted."""
        return sorted(self._quarantine)

    # -- RunService -------------------------------------------------------------

    def start(self, loop: EventLoop,
              keep_going: Callable[[], bool]) -> None:
        self._loop = loop
        self._keep_going = keep_going
        self.trace = []
        self._rng = np.random.default_rng(
            np.random.SeedSequence((self.seed, _PROBE_TAG)))
        self._probe_ids = itertools.count(_PROBE_ID_BASE)
        self._quarantine = {}
        self._probing = {}
        self._probe_owner = {}
        self._counters_seen = {}
        self._fail_window = {}
        self._timer = loop.schedule_after(self.policy.period, self._tick)

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        for probation in self._probing.values():
            if probation.timer is not None:
                probation.timer.cancel()
                probation.timer = None

    def _tick(self) -> None:
        self._timer = None
        loop = self._loop
        assert loop is not None
        self.evaluate(loop.now)
        if self._keep_going():
            self._timer = loop.schedule_after(self.policy.period, self._tick)

    # -- scoring ----------------------------------------------------------------

    def evaluate(self, now: float) -> None:
        """One scoring pass at virtual time ``now`` (a tick's body;
        public so benchmarks can meter its cost without the loop)."""
        self._forget_administratively_dead()
        self._advance_probation(now)
        fleet = self.replica_set
        candidates = self._score(fleet)
        if not candidates:
            return
        alive = sum(1 for r in fleet.replicas
                    if r.health is not ReplicaHealth.DOWN)
        allowed = int(self.policy.max_ejection_fraction * alive)
        for score, index in candidates:
            if len(self._quarantine) >= allowed:
                break
            fleet.eject_replica(index)
            self._quarantine[index] = now
            self._fail_window.pop(index, None)
            self._counters_seen.pop(index, None)
            self.trace.append(EjectionEvent(now, index, "eject", score))
            if self._m:
                self._m.ejections.labels(replica=index).inc()

    def _score(self, fleet: ReplicaSet) -> List[Tuple[float, int]]:
        """Rank serving replicas that look like outliers, worst first.

        Returns ``(score, index)`` pairs where the score is the p99 /
        fleet-median ratio (or the windowed failure rate scaled past the
        multiplier, so failure ejections rank with latency ejections).
        """
        serving = fleet.available_replicas
        flagged: List[Tuple[float, int]] = []
        judged = [r for r in serving
                  if r.latency_observations >= self.policy.min_observations]
        if len(judged) >= 2:
            p99s = {r.index: r.p99() for r in judged}
            median = statistics.median(p99s.values())
            if median > 0:
                for r in judged:
                    ratio = p99s[r.index] / median
                    if ratio > self.policy.latency_multiplier:
                        flagged.append((ratio, r.index))
        for r in serving:
            attempts, failures = self._windowed_failures(r)
            if attempts >= self.policy.min_observations:
                rate = failures / attempts
                if (rate > self.policy.failure_rate_threshold
                        and all(index != r.index for _, index in flagged)):
                    flagged.append((rate, r.index))
        # Worst outlier first; index breaks ties deterministically.
        flagged.sort(key=lambda pair: (-pair[0], pair[1]))
        return flagged

    def _windowed_failures(self, replica) -> Tuple[int, int]:
        """Advance the per-tick failure window; return windowed
        (attempts, failures)."""
        attempts_now = replica.completed + replica.failed
        failed_now = replica.failed
        seen_attempts, seen_failed = self._counters_seen.get(
            replica.index, (0, 0))
        self._counters_seen[replica.index] = (attempts_now, failed_now)
        window = self._fail_window.setdefault(
            replica.index,
            deque(maxlen=self.policy.failure_window_ticks))
        window.append(
            (attempts_now - seen_attempts, failed_now - seen_failed))
        attempts = sum(a for a, _ in window)
        failures = sum(f for _, f in window)
        return attempts, failures

    def _forget_administratively_dead(self) -> None:
        """A quarantined replica that went DOWN (zone kill, scale-down)
        leaves the detector's books - the administrative state wins."""
        fleet = self.replica_set
        for index in list(self._quarantine):
            if fleet.replicas[index].health is ReplicaHealth.EJECTED:
                continue
            self._quarantine.pop(index, None)
            self._cancel_probation(index)

    # -- probation --------------------------------------------------------------

    def _advance_probation(self, now: float) -> None:
        if self._loop is None:
            return
        for index in sorted(self._quarantine):
            if index in self._probing:
                continue
            if now - self._quarantine[index] < self.policy.ejection_duration:
                continue
            self._begin_probation(index, now)

    def _begin_probation(self, index: int, now: float) -> None:
        probation = _Probation(started=now)
        self._probing[index] = probation
        for _ in range(self.policy.probe_count):
            probe_id = next(self._probe_ids)
            sample_index = int(self._rng.integers(0, 1 << 20))
            query = Query(
                id=probe_id,
                samples=(QuerySample(id=probe_id, index=sample_index),),
                issue_time=now,
            )
            probation.pending.add(probe_id)
            self._probe_owner[probe_id] = index
            self.replica_set.probe_replica(index, query, self._on_probe)
            if self._m:
                self._m.probes.inc()
        probation.timer = self._loop.schedule_after(
            self.policy.probe_timeout,
            lambda: self._probation_expired(index))
        self.trace.append(EjectionEvent(
            now, index, "probe", float(self.policy.probe_count)))

    def _on_probe(self, query: Query, responses) -> None:
        index = self._probe_owner.pop(query.id, None)
        if index is None:
            return
        probation = self._probing.get(index)
        if probation is None or query.id not in probation.pending:
            return
        now = self._loop.now
        if isinstance(responses, QueryFailure):
            self._fail_probation(index, now)
            return
        probation.pending.discard(query.id)
        if not probation.pending:
            self._readmit(index, now)

    def _probation_expired(self, index: int) -> None:
        probation = self._probing.get(index)
        if probation is None:
            return
        probation.timer = None
        self._fail_probation(index, self._loop.now)

    def _fail_probation(self, index: int, now: float) -> None:
        probation = self._probing.get(index)
        unanswered = len(probation.pending) if probation else 0
        self._cancel_probation(index)
        # Restart the quarantine clock: the replica earned more bench time.
        self._quarantine[index] = now
        self.trace.append(EjectionEvent(
            now, index, "re-eject", float(unanswered)))
        if self._m:
            self._m.ejections.labels(replica=index).inc()

    def _readmit(self, index: int, now: float) -> None:
        quarantined_for = now - self._quarantine.get(index, now)
        self._cancel_probation(index)
        self._quarantine.pop(index, None)
        self.replica_set.readmit_replica(index)
        self.trace.append(EjectionEvent(
            now, index, "readmit", quarantined_for))
        if self._m:
            self._m.readmissions.labels(replica=index).inc()

    def _cancel_probation(self, index: int) -> None:
        probation = self._probing.pop(index, None)
        if probation is None:
            return
        if probation.timer is not None:
            probation.timer.cancel()
            probation.timer = None
        for probe_id in probation.pending:
            self._probe_owner.pop(probe_id, None)
            self.replica_set.cancel_probe(probe_id)
