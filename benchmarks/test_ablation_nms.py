"""Ablation: regular versus "fast" NMS accuracy (Section II-C).

The paper's motivating porting hazard: converting SSD-MobileNet-v1 from
TensorFlow (regular NMS) to TensorFlow Lite (fast NMS) drops accuracy
from 23.1 to 22.3 mAP - a small but real regression caused purely by the
post-processing operator.  This ablation isolates the effect: scenes of
closely spaced objects whose detector output contains suppression
chains, scored with both algorithms.
"""

import numpy as np
import pytest

from repro.accuracy.map import mean_average_precision
from repro.datasets.coco import GroundTruthObject
from repro.models.nms import Detection, multiclass_nms

RNG = np.random.default_rng(20)

#: Object size and spacing: chosen so a bridge box midway between two
#: primaries overlaps each at IoU ~0.54 (> the 0.5 NMS threshold) while
#: the primaries overlap each other at only ~0.25 (< threshold).
SIZE = 10.0
SPACING = 6.0


def chain_scene(num_objects, noise=0.0):
    """Ground truth plus raw detector output forming suppression chains.

    Each object gets a well-placed primary box; between consecutive
    objects sits a spurious "bridge" box overlapping both (IoU > 0.5
    with each), scored between the two primaries.  Greedy NMS discards
    the bridge once the left primary wins; fast NMS lets the discarded
    bridge still kill the right primary.
    """
    truths = []
    boxes = []
    scores = []
    for i in range(num_objects):
        x = i * SPACING
        truths.append(GroundTruthObject(
            box=(0.0, x, SIZE, x + SIZE), class_id=1))
        jitter = RNG.uniform(-noise, noise, size=4)
        boxes.append(np.array([0.0, x, SIZE, x + SIZE]) + jitter)
        scores.append(0.90 - 0.10 * i)
        if i + 1 < num_objects:
            bridge_x = x + SPACING / 2.0
            boxes.append(np.array([0.0, bridge_x, SIZE, bridge_x + SIZE]))
            scores.append(0.85 - 0.10 * i)
    return truths, np.array(boxes), np.array(scores)


def run_nms(boxes, scores, algorithm):
    class_scores = np.zeros((len(boxes), 2))
    class_scores[:, 1] = scores
    return multiclass_nms(boxes, class_scores, score_threshold=0.05,
                          iou_threshold=0.5, algorithm=algorithm)


@pytest.fixture(scope="module")
def corpus():
    truths_all, regular_all, fast_all = [], [], []
    for _scene in range(40):
        n = int(RNG.integers(2, 5))
        truths, boxes, scores = chain_scene(n, noise=0.3)
        truths_all.append(truths)
        regular_all.append(run_nms(boxes, scores, "regular"))
        fast_all.append(run_nms(boxes, scores, "fast"))
    return truths_all, regular_all, fast_all


def test_ablation_regular_nms_near_perfect(benchmark, corpus):
    truths, regular, _fast = corpus
    score = benchmark(mean_average_precision, regular, truths,
                      iou_thresholds=(0.5,))
    assert score > 0.95


def test_ablation_fast_nms_loses_accuracy(benchmark, corpus):
    truths, regular, fast = corpus
    fast_map = benchmark(mean_average_precision, fast, truths,
                         iou_thresholds=(0.5,))
    regular_map = mean_average_precision(regular, truths,
                                         iou_thresholds=(0.5,))
    print(f"\n  regular NMS mAP@0.5: {regular_map:.4f}")
    print(f"  fast    NMS mAP@0.5: {fast_map:.4f}")
    # The paper's 23.1 -> 22.3 is a ~3.5% relative drop; chains here are
    # denser so the isolated effect is larger, but strictly one-sided.
    assert fast_map < regular_map
    assert fast_map < 0.97 * regular_map


def test_ablation_fast_nms_is_cheaper(benchmark, corpus):
    """The reason mobile runtimes use it: one matrix op, no loop."""
    import time

    boxes_sets = []
    for _ in range(20):
        _t, boxes, scores = chain_scene(4, noise=0.3)
        boxes_sets.append((boxes, scores))

    def run_all(algorithm):
        for boxes, scores in boxes_sets:
            run_nms(boxes, scores, algorithm)

    benchmark(run_all, "fast")
    # No timing assertion (python constants dominate at this scale);
    # correctness of both paths is asserted above.
