"""Shared fixtures for the table/figure reproduction benchmarks.

The Section VI figures all derive from one fleet sweep (166 tuned
submissions); it is computed once per session and shared.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

# Several benchmarks reuse fixtures from tests/conftest.py; make the
# repository root importable regardless of how pytest was invoked
# (``pytest benchmarks/`` does not add the rootdir to sys.path).
_ROOT = str(Path(__file__).resolve().parent.parent)
if _ROOT not in sys.path:
    sys.path.insert(0, _ROOT)

from repro.datasets import SyntheticCoco, SyntheticImageNet, SyntheticWmt
from repro.harness.experiments import run_fleet


@pytest.fixture(scope="session")
def fleet_records():
    """The full closed-division result corpus (one sweep per session)."""
    return run_fleet()


@pytest.fixture(scope="session")
def imagenet():
    return SyntheticImageNet(size=400)


@pytest.fixture(scope="session")
def coco():
    return SyntheticCoco(size=160)


@pytest.fixture(scope="session")
def wmt():
    return SyntheticWmt(size=240)
