"""Extension: burst mode (paper Section I, planned scenarios).

Quantifies what the new scenario would measure: at an equal *average*
sample rate, bursty arrivals are strictly harder to serve under a QoS
bound than the server scenario's smooth Poisson stream, and the burst
size itself imposes a latency floor.
"""

import pytest

from repro.core import Task
from repro.core.experimental import BurstSettings, find_max_burst_rate
from repro.harness.tuning import QUICK_SCALE, find_max_server_qps
from repro.sut.device import DeviceModel, ProcessorType
from repro.sut.simulated import SimulatedSUT, WorkloadProfile


class _QSL:
    name = "burst"
    total_sample_count = 8192
    performance_sample_count = 1024

    def load_samples(self, indices):
        pass

    def unload_samples(self, indices):
        pass

    def get_sample(self, index):
        return None


DEVICE = DeviceModel(
    name="burst-gpu", processor=ProcessorType.GPU, peak_gops=40_000.0,
    base_utilization=0.06, saturation_gops=150.0, overhead=0.5e-3,
    max_batch=64,
)
TASK = Task.IMAGE_CLASSIFICATION_HEAVY
WORKLOAD = WorkloadProfile(8.2)


def burst_settings(size):
    return BurstSettings(task=TASK, burst_size=size, bursts_per_second=10.0,
                         min_query_count=1_000, min_duration=1.5)


@pytest.fixture(scope="module")
def capacities():
    smooth = find_max_server_qps(
        lambda: SimulatedSUT(DEVICE, WORKLOAD), _QSL(), TASK, QUICK_SCALE)
    bursts = {
        size: find_max_burst_rate(
            lambda: SimulatedSUT(DEVICE, WORKLOAD), _QSL(),
            burst_settings(size))
        for size in (4, 16, 64)
    }
    return smooth.value, bursts


def test_burst_traffic_is_harder_than_poisson(benchmark, capacities):
    smooth, bursts = benchmark.pedantic(lambda: capacities,
                                        rounds=1, iterations=1)
    print(f"\n  smooth Poisson capacity : {smooth:8.0f} qps")
    for size, rate in sorted(bursts.items()):
        shown = f"{rate:8.0f}" if rate else "  (none)"
        print(f"  burst size {size:3d}        : {shown} qps")
    for rate in bursts.values():
        assert rate is None or rate < smooth


def test_larger_bursts_hurt_more(benchmark, capacities):
    _smooth, bursts = benchmark.pedantic(lambda: capacities,
                                         rounds=1, iterations=1)
    assert bursts[4] is not None and bursts[16] is not None
    assert bursts[16] < bursts[4]


def test_burst_size_is_a_latency_floor(benchmark, capacities):
    """A 64-query burst needs >= its own full service time per query;
    on this device that exceeds the 15 ms ResNet bound at ANY rate."""
    _smooth, bursts = benchmark.pedantic(lambda: capacities,
                                         rounds=1, iterations=1)
    floor = DEVICE.service_time(8.2, 64)
    assert floor > 0.013          # within spitting distance of the bound
    assert bursts[64] is None
