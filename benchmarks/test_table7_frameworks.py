"""Table VII: framework versus hardware architecture."""

import pytest

from repro.harness.tables import format_framework_matrix
from repro.sut.device import ProcessorType
from repro.sut.fleet import TABLE_VII, build_fleet, framework_matrix


def test_table7_exact_reproduction(benchmark):
    matrix = benchmark(lambda: framework_matrix(build_fleet()))
    print("\n" + format_framework_matrix(matrix))
    assert matrix == TABLE_VII


def test_table7_cpu_has_most_framework_diversity(benchmark):
    """'CPUs have the most framework diversity.'"""
    matrix = benchmark(lambda: framework_matrix(build_fleet()))
    per_proc = {proc: 0 for proc in ProcessorType}
    for procs in matrix.values():
        for proc in procs:
            per_proc[proc] += 1
    assert per_proc[ProcessorType.CPU] == max(per_proc.values())


def test_table7_tensorflow_has_most_architectural_variety(benchmark):
    """'TensorFlow has the most architectural variety.'"""
    matrix = benchmark(lambda: framework_matrix(build_fleet()))
    widths = {fw: len(procs) for fw, procs in matrix.items()}
    assert widths["TensorFlow"] == max(widths.values())
    assert widths["TensorFlow"] == 3


def test_table7_twelve_frameworks(benchmark):
    matrix = benchmark(lambda: framework_matrix(build_fleet()))
    assert len(matrix) == 12


def test_table7_specialist_runtimes_are_single_architecture(benchmark):
    matrix = benchmark(lambda: framework_matrix(build_fleet()))
    assert matrix["TensorRT"] == frozenset({ProcessorType.GPU})
    assert matrix["SNPE"] == frozenset({ProcessorType.DSP})
    assert matrix["OpenVINO"] == frozenset({ProcessorType.CPU})
    assert matrix["Hailo SDK"] == frozenset({ProcessorType.ASIC})
