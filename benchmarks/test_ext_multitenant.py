"""Extension: multitenancy mode (paper Section IV-B, future work).

"A multitenancy mode where the SUT must continuously serve multiple
models while maintaining QoS constraints."  The bench quantifies the
co-location cost: each tenant's comfortable standalone rate versus the
highest joint rates at which BOTH tenants stay valid.
"""

import pytest

from repro.core import Scenario, Task, TestSettings
from repro.harness.multitenant import (
    TenantSpec,
    all_tenants_valid,
    run_multitenant,
)
from repro.sut.device import ComputeMotif, DeviceModel, ProcessorType
from repro.sut.fleet import task_workload

#: Two engines: co-located serving without a second execution stream
#: suffers head-of-line blocking behind the tenant with long dispatches
#: (a finding in its own right - see the single-engine test below).
DEVICE = DeviceModel(
    name="mt-gpu", processor=ProcessorType.GPU, peak_gops=40_000.0,
    base_utilization=0.06, saturation_gops=150.0, overhead=0.5e-3,
    max_batch=64, engines=2,
    structure_efficiency={ComputeMotif.RNN: 0.3,
                          ComputeMotif.DEPTHWISE_CNN: 0.35},
)


def tenant(name, task, qps, seed=0):
    return TenantSpec(
        name=name, workload=task_workload(task),
        settings=TestSettings(scenario=Scenario.SERVER, task=task,
                              server_target_qps=qps, min_query_count=1_000,
                              min_duration=1.5, seed=seed),
    )


def joint_valid(resnet_qps, gnmt_qps):
    results = run_multitenant(DEVICE, [
        tenant("resnet", Task.IMAGE_CLASSIFICATION_HEAVY, resnet_qps),
        tenant("gnmt", Task.MACHINE_TRANSLATION, gnmt_qps, seed=9),
    ])
    return all_tenants_valid(results), results


def test_ext_multitenant_low_rates_coexist(benchmark):
    ok, results = benchmark.pedantic(lambda: joint_valid(500.0, 100.0),
                                     rounds=1, iterations=1)
    assert ok, {n: r.validity.reasons for n, r in results.items()}


def test_ext_multitenant_colocation_tax(benchmark):
    """ResNet alone sustains 6k qps on this device; alongside a GNMT
    tenant at 1.2k qps (which eats ~1/3 of effective FLOPs and injects
    long mixed-cost dispatches) the same rate no longer qualifies."""
    def measure():
        alone = run_multitenant(DEVICE, [
            tenant("resnet", Task.IMAGE_CLASSIFICATION_HEAVY, 6_000.0)])
        together_ok, _ = joint_valid(6_000.0, 1_200.0)
        return alone["resnet"].valid, together_ok

    alone_ok, together_ok = benchmark.pedantic(measure, rounds=1,
                                               iterations=1)
    print(f"\n  resnet@6000 alone: {'VALID' if alone_ok else 'INVALID'}; "
          f"with gnmt@1200: {'VALID' if together_ok else 'INVALID'}")
    assert alone_ok
    assert not together_ok


def test_ext_multitenant_single_engine_head_of_line(benchmark):
    """With a single execution stream, even a light GNMT tenant's long
    dispatches block ResNet past its 15 ms bound - a co-location hazard
    a multitenancy benchmark would surface."""
    from dataclasses import replace

    single = replace(DEVICE, name="mt-gpu-1e", engines=1)

    def measure():
        results = run_multitenant(single, [
            tenant("resnet", Task.IMAGE_CLASSIFICATION_HEAVY, 500.0),
            tenant("gnmt", Task.MACHINE_TRANSLATION, 100.0, seed=9),
        ])
        return results["resnet"].valid

    resnet_ok = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert not resnet_ok


def test_ext_multitenant_dispatches_never_mix_models(benchmark):
    from repro.harness.multitenant import _SharedEnginePool
    from repro.core.events import EventLoop, VirtualClock

    def trace_run():
        results = run_multitenant(DEVICE, [
            tenant("resnet", Task.IMAGE_CLASSIFICATION_HEAVY, 800.0),
            tenant("mobilenet", Task.IMAGE_CLASSIFICATION_LIGHT, 800.0,
                   seed=3),
        ])
        return results

    results = benchmark.pedantic(trace_run, rounds=1, iterations=1)
    # Both tenants fully served under their own rules.
    for name, result in results.items():
        assert result.log.outstanding == 0
        assert result.metrics.query_count >= 1_000
