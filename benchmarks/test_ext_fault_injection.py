"""Extension: fault-injection degradation study.

The referee-hardening counterpart of the paper's audit story (Section V):
instead of trusting submitters, the LoadGen is driven against SUTs that
misbehave at a controlled, seeded rate, and we measure

* hang-safety - every (fault class x scenario) run terminates within the
  watchdog bound and yields the correct INVALID verdict;
* graceful degradation - as the fault rate rises, the fraction of
  anomalous queries tracks it, and the verdict flips from VALID to
  INVALID exactly when the first fault lands;
* recoverability - wrapping the same flaky SUT in ``ResilientSUT`` turns
  transient-only fault runs VALID again, at a measurable retry-latency
  overhead;
* determinism - a (seed, FaultPlan) pair reproduces the identical fault
  trace, query log, and verdict.
"""

import pytest

from repro.core import Scenario, TestSettings, run_benchmark
from repro.faults import (
    FaultPlan,
    FaultType,
    FaultySUT,
    ResilientSUT,
    RetryPolicy,
)

from tests.conftest import EchoQSL, FixedLatencySUT

WATCHDOG = 60.0
SERVICE_TIME = 0.005
FAULT_RATES = (0.0, 0.02, 0.10, 0.25)


def settings_for(scenario, queries=120):
    common = dict(min_duration=0.0, watchdog_timeout=WATCHDOG)
    if scenario is Scenario.SINGLE_STREAM:
        return TestSettings(scenario=scenario, min_query_count=queries,
                            **common)
    if scenario is Scenario.SERVER:
        return TestSettings(scenario=scenario, server_target_qps=150.0,
                            server_latency_bound=0.05,
                            min_query_count=queries, **common)
    if scenario is Scenario.MULTI_STREAM:
        return TestSettings(scenario=scenario, multistream_interval=0.02,
                            multistream_samples_per_query=2,
                            min_query_count=queries, **common)
    return TestSettings(scenario=scenario, offline_sample_count=queries,
                        **common)


def run_faulty(scenario, plan, queries=120):
    sut = FaultySUT(FixedLatencySUT(SERVICE_TIME), plan)
    result = run_benchmark(
        sut, EchoQSL(total=512), settings_for(scenario, queries))
    return result, sut


@pytest.fixture(scope="module")
def degradation_sweep():
    """verdict + anomaly counts over fault rate x scenario."""
    grid = {}
    for scenario in Scenario:
        for rate in FAULT_RATES:
            plan = FaultPlan(
                rates={FaultType.DUPLICATE: rate / 2,
                       FaultType.MISSIZED: rate / 2},
                seed=31 + int(rate * 1000),
            )
            result, sut = run_faulty(scenario, plan)
            injected = sum(sut.injector.injected.values())
            grid[scenario, rate] = (result, injected)
    return grid


class TestDegradationSweep:
    def test_every_run_terminates(self, benchmark, degradation_sweep):
        grid = benchmark.pedantic(lambda: degradation_sweep,
                                  rounds=1, iterations=1)
        print("\n  scenario        rate   injected  anomalies  verdict")
        for (scenario, rate), (result, injected) in sorted(
                grid.items(), key=lambda kv: (kv[0][0].value, kv[0][1])):
            print(f"  {scenario.value:14s} {rate:5.0%} {injected:9d} "
                  f"{result.log.anomaly_count:10d}  "
                  f"{'VALID' if result.valid else 'INVALID'}")
        for (scenario, rate), (result, _) in grid.items():
            assert result is not None
            assert result.stats.watchdog_time <= WATCHDOG

    def test_verdict_flips_exactly_when_faults_land(self, degradation_sweep):
        for (scenario, rate), (result, injected) in degradation_sweep.items():
            if injected == 0:
                assert result.valid, (
                    scenario, rate, result.validity.reasons)
            else:
                assert not result.valid, (scenario, rate)

    def test_anomalies_track_injections(self, degradation_sweep):
        for (_, _), (result, injected) in degradation_sweep.items():
            # Each duplicate or missized fault leaves exactly one trace.
            assert result.log.anomaly_count == injected


class TestHangSafetyMatrix:
    """Full 100%-rate matrix, same contract as the tier-1 chaos smoke
    but at benchmark scale (more queries per run)."""

    EXPECTED = {
        FaultType.DROP: "never completed",
        FaultType.DUPLICATE: "duplicate completions",
        FaultType.UNSOLICITED: "unsolicited responses",
        FaultType.MISSIZED: "malformed responses",
        FaultType.CORRUPT: "malformed responses",
        FaultType.DELAY: "watchdog fired",
        FaultType.STALL: "never completed",
    }

    @pytest.mark.parametrize("fault", list(FaultType), ids=lambda f: f.value)
    def test_total_rate_is_hang_safe(self, fault):
        kwargs = {"delay_scale": 1e6} if fault is FaultType.DELAY else {}
        for scenario in Scenario:
            result, _ = run_faulty(
                scenario, FaultPlan.single(fault, 1.0, **kwargs), queries=24)
            assert not result.valid
            assert any(self.EXPECTED[fault] in r
                       for r in result.validity.reasons), (
                scenario, result.validity.reasons)


class TestResilienceRecovery:
    @pytest.fixture(scope="class")
    def recovery_runs(self):
        """Same transient-only flaky backend, bare vs wrapped."""
        plan = FaultPlan.transient(0.025, seed=77)   # 5% total, recoverable
        policy = RetryPolicy(max_attempts=4, attempt_timeout=0.150,
                             backoff_base=0.002)
        settings = settings_for(Scenario.SINGLE_STREAM, queries=200)

        baseline = run_benchmark(
            FixedLatencySUT(SERVICE_TIME), EchoQSL(total=512), settings)
        bare, _ = run_faulty(Scenario.SINGLE_STREAM, plan, queries=200)
        wrapped_sut = ResilientSUT(
            FaultySUT(FixedLatencySUT(SERVICE_TIME), plan), policy)
        wrapped = run_benchmark(wrapped_sut, EchoQSL(total=512), settings)
        return baseline, bare, wrapped, wrapped_sut

    def test_transient_faults_recovered_to_valid(
            self, benchmark, recovery_runs):
        baseline, bare, wrapped, sut = benchmark.pedantic(
            lambda: recovery_runs, rounds=1, iterations=1)

        def mean(result):
            latencies = result.log.latencies()
            return sum(latencies) / len(latencies)

        print(f"\n  bare flaky SUT   : "
              f"{'VALID' if bare.valid else 'INVALID'} "
              f"({'; '.join(bare.validity.reasons) or 'clean'})")
        print(f"  wrapped in retry : "
              f"{'VALID' if wrapped.valid else 'INVALID'}  "
              f"{sut.stats.summary()}")
        print(f"  p90 latency      : baseline {baseline.primary_metric*1e3:.2f} ms, "
              f"wrapped {wrapped.primary_metric*1e3:.2f} ms")
        print(f"  mean latency     : baseline {mean(baseline)*1e3:.3f} ms, "
              f"wrapped {mean(wrapped)*1e3:.3f} ms "
              f"(retry overhead {(mean(wrapped)-mean(baseline))*1e3:+.3f} ms)")
        assert not bare.valid          # the raw flaky SUT fails the run
        assert wrapped.valid, wrapped.validity.reasons
        assert sut.stats.recovered_queries > 0
        assert sut.stats.gave_up_queries == 0

    def test_retry_overhead_is_bounded(self, recovery_runs):
        baseline, _bare, wrapped, sut = recovery_runs
        # Overhead is bounded by (timeout + backoff) per retry, amortized
        # over all queries; with a 5% fault rate it stays small.
        per_query_bound = (sut.policy.attempt_timeout
                          + sut.policy.backoff(sut.policy.max_attempts - 1))
        mean_baseline = (sum(baseline.log.latencies())
                         / len(baseline.log.latencies()))
        mean_wrapped = (sum(wrapped.log.latencies())
                        / len(wrapped.log.latencies()))
        mean_overhead = mean_wrapped - mean_baseline
        assert 0.0 <= mean_overhead < 0.15 * per_query_bound


class TestDeterminism:
    def test_same_seed_same_everything(self, benchmark):
        plan = FaultPlan.uniform(0.06, seed=123)

        def one(scenario):
            result, sut = run_faulty(scenario, plan, queries=80)
            return (sut.injector.trace, result.log.to_jsonl(),
                    result.valid, tuple(result.validity.reasons))

        def both():
            return {s: (one(s), one(s)) for s in Scenario}

        runs = benchmark.pedantic(both, rounds=1, iterations=1)
        for scenario, (first, second) in runs.items():
            assert first == second, f"nondeterminism in {scenario.value}"

    def test_different_seed_different_trace(self):
        a, sut_a = run_faulty(
            Scenario.SERVER, FaultPlan.uniform(0.06, seed=1), queries=80)
        b, sut_b = run_faulty(
            Scenario.SERVER, FaultPlan.uniform(0.06, seed=2), queries=80)
        assert sut_a.injector.trace != sut_b.injector.trace
