"""Extension: scaling study for the process-parallel SUT backend.

The ISSUE 4 acceptance bar is twofold: the Offline scenario must show
**>= 1.5x** throughput at 4 workers versus 1 while accuracy mode
returns **bit-identical** results at every worker count, and the
shared-memory transport's advantage over pickling must be quantified.

A one-core CI box cannot demonstrate real multiprocessing speedup, so
the study is layered the same way the paper separates modeled from
measured performance (Section VII-D):

* the **throughput assertion** runs on the virtual clock with the
  per-shard service model (``service_time_fn``): the pool really forks,
  really shards, and really computes the classifier forward pass in
  worker processes, while the *reported duration* is the modeled
  ``max(service(shard))`` - deterministic on any machine;
* a **wall-clock study** of the same configuration runs only where
  ``os.sched_getaffinity`` grants >= 4 cores, as a measured check that
  the model is honest;
* the **transport comparison** times shm vs pickle dispatch of
  realistic image batches and reports bytes moved both ways.
"""

import os
import time

import numpy as np
import pytest

from repro.core import Scenario, TestMode, TestSettings, run_benchmark
from repro.datasets import SyntheticImageNet
from repro.datasets.qsl import DatasetQSL
from repro.models.runtime import build_glyph_classifier
from repro.parallel import BatchingPolicy, ParallelSUT, WorkerPool, shard_evenly

WORKER_COUNTS = (1, 2, 4)
SAMPLES = 192
#: Modeled per-sample service time (a light classifier forward pass on
#: the paper's edge targets sits in this range).
PER_SAMPLE_SECONDS = 250e-6

DATASET = SyntheticImageNet(size=SAMPLES, num_classes=8, seed=907)
MODEL = build_glyph_classifier(DATASET, "light")


def classifier_factory():
    """Worker-side predictor: the light glyph classifier, batch argmax.

    The model is built once in the parent and inherited by fork; each
    worker therefore runs the identical network, which is what makes
    the cross-worker-count determinism assertion meaningful.
    """
    def predict(samples):
        return MODEL.predict(np.stack(samples))
    return predict


def run_offline(workers, mode, clock=None, **sut_kwargs):
    qsl = DatasetQSL(DATASET)
    settings = TestSettings(
        scenario=Scenario.OFFLINE,
        mode=mode,
        offline_sample_count=SAMPLES,
        min_duration=0.0,
        min_query_count=1,
    )
    sut = ParallelSUT(
        classifier_factory, qsl, workers=workers, seed=31,
        policy=BatchingPolicy(max_batch_size=SAMPLES, max_wait=0.0),
        **sut_kwargs)
    try:
        result = run_benchmark(sut, qsl, settings, clock=clock)
    finally:
        sut.close()
    assert result.valid, result.validity
    return result


def predictions_of(result):
    """``(dataset index, top-1 class)`` per response, in log order."""
    out = []
    for record in result.log.completed_records():
        index_of = {s.id: s.index for s in record.query.samples}
        out.extend(
            (index_of[resp.sample_id], int(resp.data))
            for resp in record.responses
        )
    return out


class TestOfflineThroughputScaling:
    def test_four_workers_beat_one_by_1p5x(self):
        """The acceptance criterion, on the modeled (virtual-time) path."""
        throughput = {}
        for workers in WORKER_COUNTS:
            result = run_offline(
                workers, TestMode.PERFORMANCE,
                service_time_fn=lambda n: PER_SAMPLE_SECONDS * n)
            throughput[workers] = result.metrics.throughput
        print("\nmodeled Offline throughput (samples/s):")
        for workers in WORKER_COUNTS:
            speedup = throughput[workers] / throughput[1]
            print(f"  {workers} workers: {throughput[workers]:10.0f}"
                  f"  ({speedup:.2f}x)")
        assert throughput[4] >= 1.5 * throughput[1]
        # The per-shard model actually divides the work: 2x and 4x are
        # near-linear, not merely above the 1.5x floor.
        assert throughput[2] == pytest.approx(2 * throughput[1], rel=0.05)
        assert throughput[4] == pytest.approx(4 * throughput[1], rel=0.05)


class TestAccuracyIdentity:
    def test_identical_predictions_at_every_worker_count(self):
        """Accuracy mode returns the same answers at 1, 2 and 4 workers."""
        baseline = predictions_of(run_offline(1, TestMode.ACCURACY))
        assert len(baseline) == SAMPLES
        for workers in WORKER_COUNTS[1:]:
            assert predictions_of(run_offline(workers, TestMode.ACCURACY)) \
                == baseline
        # And they are the classifier's answers, not garbage that merely
        # repeats: top-1 accuracy on the matched-filter task is high.
        correct = sum(
            1 for index, label in baseline
            if label == DATASET.get_label(index)
        )
        assert correct / SAMPLES > 0.5


class TestTransportComparison:
    """Quantify shm vs pickle for the same dispatch stream."""

    BATCHES = 8
    BATCH = 32

    def _batches(self):
        rng = np.random.default_rng(5)
        return [
            [rng.standard_normal((32, 32, 1)).astype(np.float32)
             for _ in range(self.BATCH)]
            for _ in range(self.BATCHES)
        ]

    def _time_transport(self, transport):
        batches = self._batches()

        def doubler_factory():
            def predict(samples):
                return np.stack(samples) * 2.0
            return predict

        with WorkerPool(doubler_factory, workers=2, seed=3,
                        transport=transport) as pool:
            pool.run_shards(shard_evenly(batches[0], 2))  # warm arenas
            started = time.perf_counter()
            outcomes = []
            for batch in batches:
                outcomes.extend(pool.run_shards(shard_evenly(batch, 2)))
            elapsed = time.perf_counter() - started
            stats = pool.stats
        outputs = [o for outcome in outcomes for o in outcome.outputs]
        return elapsed / self.BATCHES, stats, outputs

    def test_shm_and_pickle_agree_and_bytes_are_accounted(self):
        shm_time, shm_stats, shm_out = self._time_transport("shm")
        pkl_time, pkl_stats, pkl_out = self._time_transport("pickle")

        # Identical numerics either way: transport is invisible to the
        # model.
        assert len(shm_out) == len(pkl_out) == self.BATCHES * self.BATCH
        for a, b in zip(shm_out, pkl_out):
            np.testing.assert_array_equal(a, b)

        # The shm path really used shared memory; the pickle path never
        # did.  Bytes moved are accounted on both (4 KiB per image,
        # 64 B-aligned, both directions).
        assert shm_stats.shm_dispatches > 0
        assert shm_stats.pickle_dispatches == 0
        assert pkl_stats.shm_dispatches == 0
        assert pkl_stats.pickle_dispatches > 0
        # Stats include the warm-up dispatch (hence BATCHES + 1).
        per_image = 32 * 32 * 1 * 4
        expected_in = (self.BATCHES + 1) * self.BATCH * per_image
        assert shm_stats.bytes_in == expected_in
        assert shm_stats.bytes_out >= expected_in  # stacked replies
        assert pkl_stats.bytes_in > 0

        mb = expected_in / 1e6
        print(f"\ntransport comparison ({self.BATCH} x 4 KiB images/batch,"
              f" {mb:.1f} MB total in):")
        print(f"  shm:    {shm_time * 1e3:7.2f} ms/batch")
        print(f"  pickle: {pkl_time * 1e3:7.2f} ms/batch"
              f"  ({pkl_time / shm_time:.2f}x the shm cost)")


@pytest.mark.skipif(
    len(os.sched_getaffinity(0)) < 4,
    reason="wall-clock scaling needs >= 4 usable cores",
)
class TestWallClockScaling:
    def test_measured_speedup_backs_the_model(self):
        """Where cores exist, the measured curve must echo the model."""
        from repro.core.events import WallClock

        elapsed = {}
        for workers in (1, 4):
            best = float("inf")
            for _ in range(3):
                started = time.perf_counter()
                run_offline(workers, TestMode.PERFORMANCE,
                            clock=WallClock())
                best = min(best, time.perf_counter() - started)
            elapsed[workers] = best
        print(f"\nwall-clock: 1w {elapsed[1]:.3f}s, 4w {elapsed[4]:.3f}s "
              f"({elapsed[1] / elapsed[4]:.2f}x)")
        assert elapsed[1] / elapsed[4] > 1.3
