"""Figure 7: results per processor architecture.

"The MLPerf Inference submissions covered most hardware categories" -
CPUs, GPUs, DSPs, FPGAs, and ASICs all appear, with GPUs contributing
the most results and DSPs/FPGAs the fewest.
"""

import pytest

from repro.core import Task
from repro.harness.experiments import results_per_processor
from repro.sut.device import ProcessorType


def test_fig7_every_architecture_represented(benchmark, fleet_records):
    per_proc = benchmark(results_per_processor, fleet_records)
    print()
    for proc in ProcessorType:
        total = sum(per_proc.get(proc, {}).values())
        print(f"  {proc.value:5s} {total:3d} {'#' * total}")
    assert set(per_proc) == set(ProcessorType)


def test_fig7_gpu_contributes_most(benchmark, fleet_records):
    per_proc = benchmark(results_per_processor, fleet_records)
    totals = {proc: sum(tasks.values()) for proc, tasks in per_proc.items()}
    assert totals[ProcessorType.GPU] == max(totals.values())


def test_fig7_dsp_and_fpga_smallest(benchmark, fleet_records):
    per_proc = benchmark(results_per_processor, fleet_records)
    totals = {proc: sum(tasks.values()) for proc, tasks in per_proc.items()}
    smallest_two = sorted(totals, key=totals.get)[:2]
    assert set(smallest_two) == {ProcessorType.DSP, ProcessorType.FPGA}


def test_fig7_dsps_focus_on_mobile_models(benchmark, fleet_records):
    """DSPs (mobile SoCs) submit the light vision models, not GNMT or
    the heavy detector."""
    per_proc = benchmark(results_per_processor, fleet_records)
    dsp = per_proc[ProcessorType.DSP]
    assert dsp[Task.IMAGE_CLASSIFICATION_LIGHT] > 0
    assert dsp[Task.MACHINE_TRANSLATION] == 0
    assert dsp[Task.OBJECT_DETECTION_HEAVY] == 0


def test_fig7_gnmt_served_by_datacenter_silicon(benchmark, fleet_records):
    per_proc = benchmark(results_per_processor, fleet_records)
    gnmt_procs = {
        proc for proc, tasks in per_proc.items()
        if tasks[Task.MACHINE_TRANSLATION] > 0
    }
    assert gnmt_procs <= {ProcessorType.CPU, ProcessorType.GPU,
                          ProcessorType.ASIC}
    assert len(gnmt_procs) == 3
