"""Section III-A's model-selection studies, made reproducible.

Two selection decisions the paper records:

* "We specifically selected ResNet-50 **v1.5** to ensure useful
  comparisons and compatibility across major frameworks" - v1.5 moves
  the downsampling stride to the 3x3 convolution, costing ~6% more
  operations than v1 with identical parameters.
* "We evaluated both MobileNet-v1 and MobileNet-v2 ... selecting the
  former because of its wider adoption" - v2 is the cheaper, newer
  candidate that lost on ecosystem maturity, not on numbers.
"""

import pytest

from repro.models.arch.mobilenet import mobilenet_v1
from repro.models.arch.mobilenet_v2 import mobilenet_v2
from repro.models.arch.resnet import build_resnet

IMAGE = (224, 224, 3)


def test_selection_resnet_v15_versus_v1(benchmark):
    def characterize():
        v1 = build_resnet(50, version="v1")
        v15 = build_resnet(50, version="v1.5")
        return {
            "v1_gops": 2 * v1.macs(IMAGE) / 1e9,
            "v15_gops": 2 * v15.macs(IMAGE) / 1e9,
            "v1_params": v1.param_count(IMAGE),
            "v15_params": v15.param_count(IMAGE),
        }

    stats = benchmark(characterize)
    print(f"\n  v1:   {stats['v1_gops']:.2f} GOPs")
    print(f"  v1.5: {stats['v15_gops']:.2f} GOPs")
    # Same parameters, v1.5 ~5-7% more compute.
    assert stats["v1_params"] == stats["v15_params"]
    assert 1.03 < stats["v15_gops"] / stats["v1_gops"] < 1.10
    # And v1.5 is the Table I entry (8.2 GOPs).
    assert stats["v15_gops"] == pytest.approx(8.2, rel=0.01)


def test_selection_mobilenet_v1_versus_v2(benchmark):
    def characterize():
        v1 = mobilenet_v1()
        v2 = mobilenet_v2()
        return {
            "v1_params": v1.param_count(IMAGE),
            "v2_params": v2.param_count(IMAGE),
            "v1_gops": 2 * v1.macs(IMAGE) / 1e9,
            "v2_gops": 2 * v2.macs(IMAGE) / 1e9,
        }

    stats = benchmark(characterize)
    print(f"\n  v1: {stats['v1_params'] / 1e6:.2f} M params, "
          f"{stats['v1_gops']:.3f} GOPs")
    print(f"  v2: {stats['v2_params'] / 1e6:.2f} M params, "
          f"{stats['v2_gops']:.3f} GOPs")
    # Canonical figures for both candidates.
    assert stats["v1_params"] == 4_231_976
    assert stats["v2_params"] == 3_504_872
    assert stats["v1_gops"] == pytest.approx(1.138, rel=0.005)
    assert stats["v2_gops"] == pytest.approx(0.60, rel=0.02)
    # v2 is roughly half the compute - the paper's choice of v1 was
    # about adoption, not efficiency.
    assert stats["v2_gops"] < 0.6 * stats["v1_gops"]


def test_selection_both_mobilenets_run(benchmark, imagenet):
    """Both candidates execute under the same numpy kernels (the
    framework-portability property Section II-C worries about)."""
    import numpy as np

    def forward_both():
        from repro.models.arch.mobilenet import build_mobilenet_v1
        from repro.models.arch.mobilenet_v2 import build_mobilenet_v2

        rng = np.random.default_rng(0)
        x = rng.normal(size=(1, 32, 32, 3)).astype(np.float32)
        outputs = []
        for build in (build_mobilenet_v1, build_mobilenet_v2):
            net = build(num_classes=10, width_multiplier=0.25)
            net.initialize((32, 32, 3), np.random.default_rng(1))
            outputs.append(net.forward(x))
        return outputs

    v1_out, v2_out = benchmark.pedantic(forward_both, rounds=1, iterations=1)
    assert v1_out.shape == (1, 10)
    assert v2_out.shape == (1, 10)
