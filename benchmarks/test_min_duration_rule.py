"""Section III-D: why every benchmark must run for at least 60 seconds.

"The minimum run time ensures we measure the equilibrium behavior of
power-management systems and systems that support dynamic voltage and
frequency scaling (DVFS), particularly for the single-stream scenario
with few queries."  A DVFS-boosting phone SoC is measured at several
run lengths: short runs flatter it by up to the boost factor; by 60
seconds the measurement has converged to the sustained equilibrium.
"""

import pytest

from repro.core import Scenario, TestSettings, run_benchmark
from repro.sut.device import DeviceModel, ProcessorType
from repro.sut.simulated import SimulatedSUT, WorkloadProfile

from tests.conftest import EchoQSL

PHONE = DeviceModel(
    name="boosting-phone", processor=ProcessorType.DSP, peak_gops=60.0,
    base_utilization=0.6, saturation_gops=3.0, overhead=1e-3, max_batch=4,
    cold_boost=1.6, thermal_time_constant=12.0,
)
WORKLOAD = WorkloadProfile(1.138)


def p90_at_duration(duration):
    settings = TestSettings(scenario=Scenario.SINGLE_STREAM,
                            min_query_count=64, min_duration=duration)
    result = run_benchmark(SimulatedSUT(PHONE, WORKLOAD), EchoQSL(),
                           settings)
    return result.primary_metric


@pytest.fixture(scope="module")
def sweep():
    return {d: p90_at_duration(d) for d in (0.5, 2.0, 10.0, 60.0, 120.0)}


def test_short_runs_overstate_performance(benchmark, sweep):
    latencies = benchmark.pedantic(lambda: sweep, rounds=1, iterations=1)
    print()
    for duration, p90 in sorted(latencies.items()):
        print(f"  {duration:6.1f} s run -> p90 {p90 * 1e3:6.2f} ms")
    assert latencies[0.5] < latencies[10.0] < latencies[60.0]
    # The half-second run flatters the device by >20%.
    assert latencies[0.5] < 0.8 * latencies[60.0]


def test_60s_measurement_is_at_equilibrium(benchmark, sweep):
    latencies = benchmark.pedantic(lambda: sweep, rounds=1, iterations=1)
    equilibrium = PHONE.service_time(1.138, 1)
    assert latencies[60.0] == pytest.approx(equilibrium, rel=0.05)
    # Doubling the run length changes nothing: equilibrium reached.
    assert latencies[120.0] == pytest.approx(latencies[60.0], rel=0.02)


def test_paper_rule_runs_long_enough(benchmark):
    """The actual v0.5 rule (60 s) exceeds ~4 thermal time constants of
    an aggressive mobile SoC, so the boost contribution to the p90 is
    marginal by design."""
    residual = benchmark(
        lambda: PHONE.speed_multiplier(60.0) - 1.0)
    assert residual < 0.01
