"""Table II: the four scenarios, their query generation and metrics.

One simulated system is evaluated under all four scenarios; the metric
of each matches Table II's definition, and the scenario semantics
produce the expected orderings (offline throughput >= server capacity,
single-stream latency ~= one-sample service time).
"""

import pytest

from repro.core import Scenario, Task
from repro.harness.tuning import (
    QUICK_SCALE,
    find_max_multistream_n,
    find_max_server_qps,
    measure_offline,
    measure_single_stream,
)
from repro.sut.device import DeviceModel, ProcessorType
from repro.sut.simulated import SimulatedSUT, WorkloadProfile


class _QSL:
    name = "bench"
    total_sample_count = 4096
    performance_sample_count = 1024

    def load_samples(self, indices):
        pass

    def unload_samples(self, indices):
        pass

    def get_sample(self, index):
        return None


DEVICE = DeviceModel(
    name="bench-accelerator", processor=ProcessorType.GPU,
    peak_gops=40_000.0, base_utilization=0.1, saturation_gops=150.0,
    overhead=0.5e-3, max_batch=64,
)
TASK = Task.IMAGE_CLASSIFICATION_HEAVY


def make_sut():
    return SimulatedSUT(DEVICE, WorkloadProfile(8.2))


@pytest.fixture(scope="module")
def scenario_results():
    qsl = _QSL()
    return {
        Scenario.SINGLE_STREAM: measure_single_stream(
            make_sut, qsl, TASK, QUICK_SCALE),
        Scenario.OFFLINE: measure_offline(make_sut, qsl, TASK, QUICK_SCALE),
        Scenario.SERVER: find_max_server_qps(make_sut, qsl, TASK, QUICK_SCALE),
        Scenario.MULTI_STREAM: find_max_multistream_n(
            make_sut, qsl, TASK, QUICK_SCALE),
    }


def test_single_stream_metric_is_latency(benchmark, scenario_results):
    result = benchmark.pedantic(
        lambda: scenario_results[Scenario.SINGLE_STREAM],
        rounds=1, iterations=1)
    assert result.valid
    assert result.primary_metric == pytest.approx(
        DEVICE.service_time(8.2, 1), rel=0.01)


def test_offline_metric_is_throughput(benchmark, scenario_results):
    result = benchmark.pedantic(
        lambda: scenario_results[Scenario.OFFLINE], rounds=1, iterations=1)
    assert result.valid
    assert result.primary_metric == pytest.approx(
        DEVICE.best_offline_throughput(8.2), rel=0.1)


def test_server_capacity_below_offline(benchmark, scenario_results):
    tuned = benchmark.pedantic(
        lambda: scenario_results[Scenario.SERVER], rounds=1, iterations=1)
    offline = scenario_results[Scenario.OFFLINE].primary_metric
    assert tuned is not None
    assert 0 < tuned.value <= offline * 1.02


def test_multistream_streams_fit_the_interval(benchmark, scenario_results):
    tuned = benchmark.pedantic(
        lambda: scenario_results[Scenario.MULTI_STREAM],
        rounds=1, iterations=1)
    assert tuned is not None
    n = int(tuned.value)
    assert n >= 1
    # The winning N's service time fits the 50 ms arrival interval.
    assert DEVICE.service_time(8.2, min(n, DEVICE.max_batch)) <= 0.050


def test_scenario_run_throughput_benchmark(benchmark):
    """Wall-clock cost of one quick single-stream run (LoadGen overhead)."""
    qsl = _QSL()
    result = benchmark(
        lambda: measure_single_stream(make_sut, qsl, TASK, QUICK_SCALE))
    assert result.valid
