"""Section VII-D: modeled versus measured performance.

"SSD-ResNet-34 requires 175x more operations per image [than
SSD-MobileNet-v1], but the actual throughput is only 50-60x less.  This
consistent 3x difference between the operation count and the observed
performance shows how network structure can affect performance."
"""

import statistics

import pytest

from repro.core import Scenario, Task
from repro.models.arch.ssd import build_ssd_mobilenet_v1, build_ssd_resnet34


def offline_pairs(records):
    """Systems with offline results for both detectors."""
    light = {
        r.system: r.metric for r in records
        if r.task is Task.OBJECT_DETECTION_LIGHT
        and r.scenario is Scenario.OFFLINE
    }
    heavy = {
        r.system: r.metric for r in records
        if r.task is Task.OBJECT_DETECTION_HEAVY
        and r.scenario is Scenario.OFFLINE
    }
    return {
        system: light[system] / heavy[system]
        for system in light if system in heavy
    }


def test_sec7d_ops_ratio_is_175x(benchmark):
    def ratio():
        heavy = build_ssd_resnet34().macs((1200, 1200, 3))
        light = build_ssd_mobilenet_v1().macs((300, 300, 3))
        return heavy / light

    ops_ratio = benchmark(ratio)
    assert ops_ratio == pytest.approx(175.0, rel=0.06)


def test_sec7d_measured_ratio_is_much_smaller(benchmark, fleet_records):
    ratios = benchmark(offline_pairs, fleet_records)
    print()
    for system, ratio in sorted(ratios.items()):
        print(f"  {system:18s} {ratio:6.1f}x")
    assert len(ratios) >= 6
    median = statistics.median(ratios.values())
    # Paper: 50-60x measured against 175x modeled.
    assert 40 <= median <= 70
    assert all(25 <= r <= 90 for r in ratios.values())


def test_sec7d_the_consistent_3x_gap(benchmark, fleet_records):
    """Operation counts overestimate the throughput gap ~3x: big dense
    convolutions use hardware far better than depthwise stacks."""
    heavy = build_ssd_resnet34().macs((1200, 1200, 3))
    light = build_ssd_mobilenet_v1().macs((300, 300, 3))
    ops_ratio = heavy / light

    ratios = offline_pairs(fleet_records)
    gaps = benchmark(
        lambda: [ops_ratio / measured for measured in ratios.values()])
    median_gap = statistics.median(gaps)
    assert 2.0 <= median_gap <= 4.5
