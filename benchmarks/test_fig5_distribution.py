"""Figure 5: closed-division results per model (19/37/54/29/27)."""

import pytest

from repro.core import Task
from repro.harness.experiments import results_per_task
from repro.sut.fleet import FIGURE_5


def test_fig5_distribution(benchmark, fleet_records):
    counts = benchmark(results_per_task, fleet_records)
    print()
    for task in Task:
        bar = "#" * counts[task]
        print(f"{task.value:20s} {counts[task]:3d} {bar}")
    # Exact reproduction of the published counts.
    assert counts == FIGURE_5


def test_fig5_total_is_166(benchmark, fleet_records):
    total = benchmark(lambda: sum(results_per_task(fleet_records).values()))
    assert total == 166


def test_fig5_resnet_most_popular_with_small_spread(benchmark, fleet_records):
    """ResNet-50 v1.5 is the most popular model, but under three times
    as popular as GNMT, the least popular - the paper's evidence that
    the workload selection was representative."""
    counts = benchmark(results_per_task, fleet_records)
    ordered = sorted(counts.values())
    assert counts[Task.IMAGE_CLASSIFICATION_HEAVY] == max(counts.values())
    assert counts[Task.MACHINE_TRANSLATION] == min(counts.values())
    assert max(counts.values()) / min(counts.values()) < 3.0


def test_fig5_detection_models_equally_supported(benchmark, fleet_records):
    """'about the same number of submissions for both SSD-MobileNet-v1
    and SSD-ResNet-34'."""
    counts = benchmark(results_per_task, fleet_records)
    light = counts[Task.OBJECT_DETECTION_LIGHT]
    heavy = counts[Task.OBJECT_DETECTION_HEAVY]
    assert abs(light - heavy) <= 3
