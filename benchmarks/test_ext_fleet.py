"""Extension: replicated serving fleet — capacity search under faults.

The study behind ``docs/fleet.md``: a load-balanced replica fleet is
driven through the three claims the fleet layer makes:

* capacity search — the binary SLO sweep lands within one resolution
  step of an exhaustive step-scan ground truth on a modeled
  serial-queue SUT, in a fraction of the probes;
* replica kill — killing 1 of 4 replicas mid-Server-run stays VALID
  with zero lost queries (in-flight work is rescued onto survivors)
  and a bounded p99 inflation over the undisturbed baseline;
* determinism — the autoscaler's full decision trace and the run
  fingerprint are bit-identical across same-seed runs, including under
  a flash-crowd burst plan.
"""

import pytest

from repro.core import Scenario, TestSettings, run_benchmark
from repro.durability import run_fingerprint
from repro.faults import BurstPlan
from repro.fleet import (
    Autoscaler,
    AutoscalerPolicy,
    ReplicaSet,
    SweepConfig,
    SweepHarness,
)

from tests.conftest import EchoQSL, FixedLatencySUT
from tests.fleet.test_sweep import SerialQueueSUT

SERVICE_TIME = 0.030
QUERIES = 400

SETTINGS = TestSettings(
    scenario=Scenario.SERVER, server_target_qps=200.0,
    server_latency_bound=0.2, min_query_count=QUERIES,
    min_duration=0.0, watchdog_timeout=120.0, seed=23)


def fleet_of(n, **kwargs):
    kwargs.setdefault("attempt_timeout", 0.5)
    return ReplicaSet(lambda i: FixedLatencySUT(SERVICE_TIME),
                      initial_replicas=n, **kwargs)


class _KillAt:
    """RunService that kills one replica at a scheduled run time."""

    def __init__(self, fleet, index, at):
        self.fleet, self.index, self.at = fleet, index, at
        self.rescued = None

    def start(self, loop, keep_going):
        def _kill():
            self.rescued = self.fleet.kill_replica(self.index)
        loop.schedule_after(self.at, _kill)

    def stop(self):
        pass


class TestCapacitySweep:
    """Binary search vs. exhaustive scan on a known-capacity SUT."""

    def test_binary_sweep_matches_step_scan_ground_truth(
            self, benchmark, tmp_path):
        settings = TestSettings(
            scenario=Scenario.SERVER, server_target_qps=1.0,
            server_latency_bound=0.05, min_query_count=200,
            min_duration=0.0, watchdog_timeout=600.0, seed=23)
        resolution = 5.0

        def make_harness(mode):
            return SweepHarness(
                lambda: SerialQueueSUT(0.010), EchoQSL(), settings,
                SweepConfig(qps_low=10.0, qps_high=160.0,
                            resolution=resolution, mode=mode))

        def study():
            truth = make_harness("step").run()
            binary = make_harness("binary").run()
            return truth, binary

        truth, binary = benchmark.pedantic(study, rounds=1, iterations=1)
        print(f"\n  step-scan ground truth: {truth.summary()}")
        print(f"  binary search:          {binary.summary()}")
        assert truth.max_qps is not None
        assert binary.max_qps is not None
        # The acceptance bar: within one resolution step of the truth.
        assert abs(binary.max_qps - truth.max_qps) <= resolution
        # And materially cheaper than the scan that proves it right.
        assert len(binary.probes) < len(truth.probes)
        report = binary.write(tmp_path / "BENCH_fleet.json")
        assert report.exists()


class TestReplicaKill:
    """Losing 1 of 4 replicas mid-run degrades, never drops."""

    def test_kill_one_of_four_valid_zero_lost_bounded_p99(
            self, benchmark):
        def baseline_run():
            fleet = fleet_of(4, seed=23)
            return run_benchmark(fleet, EchoQSL(), SETTINGS), fleet

        def kill_run():
            fleet = fleet_of(4, seed=23)
            killer = _KillAt(fleet, 1, at=0.9)
            result = run_benchmark(fleet, EchoQSL(), SETTINGS,
                                   services=[killer])
            return result, fleet, killer

        (base, _), (hit, fleet, killer) = benchmark.pedantic(
            lambda: (baseline_run(), kill_run()),
            rounds=1, iterations=1)

        print(f"\n  baseline: p99={base.metrics.latency_p99 * 1e3:.1f}ms "
              f"valid={base.valid}")
        print(f"  1-of-4 killed: p99={hit.metrics.latency_p99 * 1e3:.1f}ms "
              f"valid={hit.valid} rescued={killer.rescued} "
              f"{fleet.stats.summary()}")

        assert base.valid and hit.valid
        # Zero lost queries: everything completed, nothing failed.
        assert not hit.log.failed_records()
        assert len(hit.log.completed_records()) == QUERIES
        assert killer.rescued is not None and killer.rescued > 0
        assert fleet.stats.shed_queries == 0
        # Graceful degradation: p99 may inflate (3 survivors carry the
        # load) but stays inside the SLO bound, not a cliff.
        assert hit.metrics.latency_p99 <= SETTINGS.server_latency_bound
        assert hit.metrics.latency_p99 <= 4 * base.metrics.latency_p99

    def test_slow_replica_brownout_is_routed_around(self):
        from repro.faults import BrownoutSUT

        def factory(index):
            backend = FixedLatencySUT(SERVICE_TIME)
            if index == 0:
                return BrownoutSUT(backend, 0.5, 1.0,
                                   extra_latency=0.150)
            return backend

        fleet = ReplicaSet(factory, initial_replicas=4,
                           policy="weighted-p99", attempt_timeout=0.5,
                           seed=23)
        result = run_benchmark(fleet, EchoQSL(), SETTINGS)
        assert result.valid
        assert not result.log.failed_records()
        # The weighted policy starves the browned-out replica.
        browned = fleet.replicas[0].issued
        healthy = [r.issued for r in fleet.replicas[1:]]
        assert browned < min(healthy)


class TestDeterminism:
    """Same seed, same everything — even under a flash crowd."""

    def test_autoscaler_trace_bit_identical_under_flash_crowd(
            self, benchmark):
        plan = BurstPlan.flash_crowd(0.8, 0.6, multiplier=3.0)
        settings = SETTINGS.with_overrides(
            server_rate_bursts=plan.as_settings())

        def one_run():
            fleet = fleet_of(2, max_replicas=8, seed=23)
            scaler = Autoscaler(fleet, AutoscalerPolicy(
                period=0.050, high_watermark=3.0, low_watermark=0.5,
                cooldown=0.150))
            result = run_benchmark(fleet, EchoQSL(), settings,
                                   services=[scaler])
            return result, scaler

        (res_a, sc_a), (res_b, sc_b) = benchmark.pedantic(
            lambda: (one_run(), one_run()), rounds=1, iterations=1)

        ups = sum(1 for d in sc_a.trace if d.action == "up")
        downs = sum(1 for d in sc_a.trace if d.action == "down")
        print(f"\n  trace: {len(sc_a.trace)} ticks, "
              f"{ups} up, {downs} down; valid={res_a.valid}")

        assert sc_a.trace == sc_b.trace
        assert run_fingerprint(res_a) == run_fingerprint(res_b)
        # The burst actually forced scaling decisions worth comparing.
        assert ups > 0
