"""Ablation: the batching design choices behind the Figure 6 behaviour.

Section VI-B attributes server-scenario throughput differences to
"hardware architecture optimized for low batch size or more-effective
dynamic batching in the inference engine".  These ablations isolate both
knobs on one device model.
"""

import pytest

from repro.core import Task
from repro.harness.tuning import (
    QUICK_SCALE,
    find_max_server_qps,
    measure_offline,
)
from repro.sut.device import DeviceModel, ProcessorType
from repro.sut.simulated import SimulatedSUT, WorkloadProfile


class _QSL:
    name = "ablation"
    total_sample_count = 4096
    performance_sample_count = 1024

    def load_samples(self, indices):
        pass

    def unload_samples(self, indices):
        pass

    def get_sample(self, index):
        return None


def make_device(max_batch=64):
    return DeviceModel(
        name="ablation-gpu", processor=ProcessorType.GPU,
        peak_gops=40_000.0, base_utilization=0.06, saturation_gops=150.0,
        overhead=0.5e-3, max_batch=max_batch,
    )


TASK = Task.IMAGE_CLASSIFICATION_HEAVY
WORKLOAD = WorkloadProfile(8.2)


def test_ablation_batching_lifts_offline_throughput(benchmark):
    """Offline throughput collapses when the engine cannot batch."""
    def measure(max_batch):
        device = make_device(max_batch)
        result = measure_offline(
            lambda: SimulatedSUT(device, WORKLOAD), _QSL(), TASK, QUICK_SCALE)
        return result.primary_metric

    batched = benchmark.pedantic(lambda: measure(64), rounds=1, iterations=1)
    unbatched = measure(1)
    print(f"\n  offline: batch=64 {batched:.0f}/s, batch=1 {unbatched:.0f}/s")
    assert batched > 2.5 * unbatched


def test_ablation_batch_window_versus_latency_bound(benchmark):
    """A hold-off window longer than the latency budget destroys server
    capacity; a modest window is roughly free."""
    device = make_device()

    def capacity(window):
        tuned = find_max_server_qps(
            lambda: SimulatedSUT(device, WORKLOAD, batch_window=window),
            _QSL(), TASK, QUICK_SCALE)
        return tuned.value if tuned else 0.0

    modest = benchmark.pedantic(lambda: capacity(1e-3),
                                rounds=1, iterations=1)
    none = capacity(0.0)
    oversized = capacity(0.014)   # ~the whole 15 ms ResNet budget
    print(f"\n  server capacity: window=0 {none:.0f}, "
          f"1 ms {modest:.0f}, 14 ms {oversized:.0f} qps")
    assert oversized < 0.5 * max(none, modest)
    assert modest > 0.5 * none


def test_ablation_low_batch_hardware_degrades_less(benchmark):
    """A device efficient at batch 1 (CPU-like) loses less server
    throughput than a batch-hungry accelerator - one of the two
    explanations the paper offers for Figure 6's spread."""
    batch_hungry = DeviceModel(
        name="hungry", processor=ProcessorType.GPU, peak_gops=40_000.0,
        base_utilization=0.03, saturation_gops=400.0, overhead=0.5e-3,
        max_batch=64,
    )
    batch_agnostic = DeviceModel(
        name="agnostic", processor=ProcessorType.CPU, peak_gops=2_000.0,
        base_utilization=0.9, saturation_gops=10.0, overhead=0.2e-3,
        max_batch=8,
    )

    def ratio(device):
        offline = measure_offline(
            lambda: SimulatedSUT(device, WORKLOAD), _QSL(), TASK, QUICK_SCALE
        ).primary_metric
        tuned = find_max_server_qps(
            lambda: SimulatedSUT(device, WORKLOAD), _QSL(), TASK, QUICK_SCALE)
        return (tuned.value if tuned else 0.0) / offline

    hungry_ratio = benchmark.pedantic(lambda: ratio(batch_hungry),
                                      rounds=1, iterations=1)
    agnostic_ratio = ratio(batch_agnostic)
    print(f"\n  server/offline: batch-hungry {hungry_ratio:.2f}, "
          f"batch-agnostic {agnostic_ratio:.2f}")
    assert agnostic_ratio > hungry_ratio
