"""Section VI-E: the open division encourages pushing system limits.

The paper's open-division highlights, regenerated:

* "4-bit quantization to boost performance" - an INT4 submission that
  fails the closed division's quality gate clears the open division
  (with documented deviations), trading accuracy for speed;
* "exploration of various models (instead of the reference model) to
  perform the task" - submitting the light model where the closed
  division requires the heavy one;
* "high throughput under latency bounds tighter than what the
  closed-division rules stipulate" - a valid run against a self-imposed
  bound well under Table III's.
"""

import pytest

from repro.accuracy import check_accuracy
from repro.core import Scenario, Task, TestMode, TestSettings, run_benchmark
from repro.datasets import DatasetQSL, SyntheticImageNet
from repro.models.quantization import NumericFormat, QuantizationSpec
from repro.models.registry import model_info
from repro.models.runtime import build_glyph_classifier, evaluate_classifier
from repro.submission import (
    BenchmarkResult,
    Category,
    Division,
    Submission,
    SystemDescription,
    check_submission,
)
from repro.sut import ClassifierSUT
from repro.sut.device import DeviceModel, ProcessorType
from repro.sut.simulated import SimulatedSUT, WorkloadProfile


@pytest.fixture(scope="module")
def setup():
    dataset = SyntheticImageNet(size=300)
    qsl = DatasetQSL(dataset)
    heavy = build_glyph_classifier(dataset, "heavy")
    reference = evaluate_classifier(heavy, dataset)
    return dataset, qsl, heavy, reference


def build_entry(dataset, qsl, model, target, service_seconds):
    def sut():
        return ClassifierSUT(model, qsl,
                             service_time_fn=lambda n: service_seconds * n)

    perf = run_benchmark(sut(), qsl, TestSettings(
        scenario=Scenario.SINGLE_STREAM,
        task=Task.IMAGE_CLASSIFICATION_HEAVY,
        min_query_count=128, min_duration=0.5))
    acc_run = run_benchmark(sut(), qsl, TestSettings(
        scenario=Scenario.SINGLE_STREAM, mode=TestMode.ACCURACY))
    accuracy = check_accuracy(acc_run, dataset, "classification", target)
    return BenchmarkResult(
        task=Task.IMAGE_CLASSIFICATION_HEAVY,
        scenario=Scenario.SINGLE_STREAM,
        performance=perf, accuracy=accuracy)


def wrap(entry, division, numerics=(NumericFormat.FP32,), deviations=None):
    return Submission(
        system=SystemDescription(
            name="open-rig", submitter="bench", processor="CPU",
            accelerator_count=0, host_cpu_count=4, software_stack="numpy",
            memory_gb=16.0, numerics=numerics),
        division=division, category=Category.AVAILABLE,
        results=[entry], open_deviations=deviations)


def test_sec6e_int4_fails_closed_passes_open(benchmark, setup):
    dataset, qsl, heavy, reference = setup
    target = model_info(Task.IMAGE_CLASSIFICATION_HEAVY)\
        .quality_target_factor * reference
    # Aggressive INT4 with added per-channel scale mismatch: fast format,
    # visible accuracy loss on the heavy model too.
    quant = heavy.quantized(
        QuantizationSpec(NumericFormat.INT4, clip_percentile=90.0))

    def build():
        entry = build_entry(dataset, qsl, quant, target,
                            service_seconds=0.0005)
        closed = check_submission(wrap(entry, Division.CLOSED,
                                       numerics=(NumericFormat.INT4,)))
        open_division = check_submission(wrap(
            entry, Division.OPEN, numerics=(NumericFormat.INT4,),
            deviations="INT4 weights, aggressive 90th-percentile clipping"))
        return entry, closed, open_division

    entry, closed, open_division = benchmark.pedantic(build, rounds=1,
                                                      iterations=1)
    print(f"\n  INT4 accuracy {entry.accuracy.value:.1f}% vs "
          f"closed target {entry.accuracy.target:.1f}%")
    assert not entry.accuracy.passed
    assert not closed.passed
    assert open_division.passed


def test_sec6e_model_exploration(benchmark, setup):
    """Submit the cheap model where closed rules require the heavy one:
    faster, less accurate, open-division-only."""
    dataset, qsl, heavy, reference = setup
    target = model_info(Task.IMAGE_CLASSIFICATION_HEAVY)\
        .quality_target_factor * reference
    light = build_glyph_classifier(dataset, "light")

    def build():
        # The light model is ~16x cheaper: reflect that in service time.
        entry = build_entry(dataset, qsl, light, target,
                            service_seconds=0.0002)
        return entry, check_submission(wrap(
            entry, Division.OPEN,
            deviations="replaced reference model with a separable variant"))

    entry, report = benchmark.pedantic(build, rounds=1, iterations=1)
    assert not entry.accuracy.passed      # below the heavy target
    assert report.passed                  # but legal in the open division
    assert entry.performance.primary_metric < 0.001


def test_sec6e_tighter_latency_bound(benchmark):
    """A submitter demonstrating QoS far beyond Table III: the ResNet
    server bound is 15 ms; this run is validated against 5 ms."""
    device = DeviceModel(
        name="tight", processor=ProcessorType.GPU, peak_gops=150_000.0,
        base_utilization=0.05, saturation_gops=120.0, overhead=0.4e-3,
        max_batch=128)

    class _QSL:
        name = "tight"
        total_sample_count = 4096
        performance_sample_count = 1024

        def load_samples(self, indices):
            pass

        def unload_samples(self, indices):
            pass

        def get_sample(self, index):
            return None

    def run():
        settings = TestSettings(
            scenario=Scenario.SERVER, task=Task.IMAGE_CLASSIFICATION_HEAVY,
            server_target_qps=5_000.0,
            server_latency_bound=0.005,        # self-imposed, 3x tighter
            min_query_count=2_000, min_duration=1.5)
        return run_benchmark(SimulatedSUT(device, WorkloadProfile(8.2)),
                             _QSL(), settings)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\n  5000 qps under a 5 ms bound: "
          f"{'VALID' if result.valid else 'INVALID'} "
          f"(p99 {result.metrics.latency_p99 * 1e3:.2f} ms)")
    assert result.valid
    assert result.metrics.latency_p99 < 0.005
