"""Extension: chaos drills — gray failure and zone outage (docs/chaos.md).

The study behind the resilience tier's two headline claims:

* gray failure — a replica that silently turns 10x slower (alive,
  answering, just wrong) drags an unprotected fleet's p99 over the SLO
  and the run is INVALID; with the outlier detector on, the replica is
  ejected on windowed-latency evidence, its in-flight queries are
  rescued, and the same run stays VALID — zero lost queries either way;
* zone outage — a deployment that ignores fault domains loses every
  replica (and every in-flight query) when its one domain dies, while
  the same fleet striped across two zones under the zone-spread policy
  keeps half its capacity and finishes VALID with zero failures; within
  a shared topology, zone-spread's alternating fallback order also
  burns fewer attempts inside a browned-out zone than round-robin.

Every run is virtual-clock deterministic: the numbers printed here are
reproducible bit-for-bit, chaos windows included.
"""

from collections import Counter

import pytest

from repro.core import Scenario, TestSettings, run_benchmark
from repro.faults import (
    ChaosEvent,
    ChaosOrchestrator,
    ChaosSchedule,
    DegradedSUT,
)
from repro.fleet import OutlierDetector, OutlierPolicy, ReplicaSet

from tests.conftest import EchoQSL, FixedLatencySUT

SERVICE_TIME = 0.020
QUERIES = 2000

SETTINGS = TestSettings(
    scenario=Scenario.SERVER, server_target_qps=200.0,
    server_latency_bound=0.1, min_query_count=QUERIES,
    min_duration=0.0, watchdog_timeout=300.0, seed=23)

#: One silent brownout: replica 1 turns 10x slower at t=2s and stays
#: sick for 7s — alive and answering, so nothing but its latency
#: series gives it away.
GRAY_SCHEDULE = ChaosSchedule((
    ChaosEvent(2.0, 7.0, "gray-failure", "replica:1", 10.0),
))

DETECTOR_POLICY = OutlierPolicy(
    period=0.010, min_observations=8,
    ejection_duration=0.2, probe_timeout=0.05)


def gray_failure_run(protected):
    orchestrator = ChaosOrchestrator(GRAY_SCHEDULE)
    fleet = ReplicaSet(
        orchestrator.wrap_factory(
            lambda i: FixedLatencySUT(latency=SERVICE_TIME)),
        initial_replicas=4, attempt_timeout=0.5, seed=23)
    orchestrator.bind(fleet)
    services = [orchestrator]
    detector = None
    if protected:
        detector = OutlierDetector(fleet, DETECTOR_POLICY, seed=23)
        services.append(detector)
    result = run_benchmark(fleet, EchoQSL(), SETTINGS, services=services)
    return fleet, detector, result


class TestGrayFailure:
    """A 10x slow replica: SLO blown without the detector, kept with it."""

    def test_detector_turns_an_invalid_run_valid(self, benchmark):
        (unfleet, _, unprotected), (fleet, detector, protected) = \
            benchmark.pedantic(
                lambda: (gray_failure_run(False), gray_failure_run(True)),
                rounds=1, iterations=1)

        trail = Counter(e.action for e in detector.trace)
        print(f"\n  unprotected: p99="
              f"{unprotected.metrics.latency_p99 * 1e3:.0f}ms "
              f"valid={unprotected.valid}")
        print(f"  protected:   p99="
              f"{protected.metrics.latency_p99 * 1e3:.0f}ms "
              f"valid={protected.valid} trail={dict(trail)}")
        print(f"  {fleet.stats.summary()}")

        # The headline: same chaos, same seed - only the detector
        # separates an SLO breach from a VALID run.
        assert not unprotected.valid
        assert unprotected.metrics.latency_p99 \
            > SETTINGS.server_latency_bound
        assert protected.valid
        assert protected.metrics.latency_p99 \
            <= SETTINGS.server_latency_bound

        # Zero lost queries in BOTH runs: gray failure degrades, the
        # referee never drops or double-counts.
        for result in (unprotected, protected):
            assert not result.log.failed_records()
            records = result.log.completed_records()
            assert len(records) == QUERIES
            assert len({r.query.id for r in records}) == len(records)

        # The ejection did real work: in-flight queries were rescued
        # off the sick replica, probation re-ejected it while the
        # brownout held, and recovery earned readmission - the fleet
        # ends the run at full strength.
        assert fleet.stats.ejections >= 1
        assert fleet.stats.rescued_queries > 0
        assert trail["re-eject"] > 0
        assert fleet.stats.readmissions >= 1
        assert detector.quarantined == []


class _KillZone:
    """RunService that takes a whole fault domain down mid-run."""

    def __init__(self, fleet, zone, at):
        self.fleet, self.zone, self.at = fleet, zone, at
        self.rescued = None

    def start(self, loop, keep_going):
        def _fire():
            self.rescued = self.fleet.kill_zone(self.zone)
        loop.schedule_after(self.at, _fire)

    def stop(self):
        pass


ZONE_SETTINGS = TestSettings(
    scenario=Scenario.SERVER, server_target_qps=150.0,
    server_latency_bound=0.25, min_query_count=600,
    min_duration=0.0, watchdog_timeout=120.0, seed=5)


class TestZoneOutage:
    """Fault-domain awareness is the difference between half and nothing."""

    def test_zone_striped_fleet_survives_what_kills_the_oblivious_one(
            self, benchmark):
        def outage_run(zones, policy):
            fleet = ReplicaSet(
                lambda i: FixedLatencySUT(latency=0.030),
                initial_replicas=6, attempt_timeout=0.1,
                zones=zones, policy=policy, seed=5)
            killer = _KillZone(fleet, "z0", at=1.5)
            result = run_benchmark(fleet, EchoQSL(), ZONE_SETTINGS,
                                   services=[killer])
            return fleet, result

        (oblivious_fleet, oblivious), (striped_fleet, striped) = \
            benchmark.pedantic(
                lambda: (outage_run(1, "round-robin"),
                         outage_run(2, "zone-spread")),
                rounds=1, iterations=1)

        print(f"\n  one-domain round-robin: valid={oblivious.valid} "
              f"completed={len(oblivious.log.completed_records())} "
              f"failed={len(oblivious.log.failed_records())} "
              f"survivors={len(oblivious_fleet.available_replicas)}")
        print(f"  two-zone zone-spread:   valid={striped.valid} "
              f"completed={len(striped.log.completed_records())} "
              f"failed={len(striped.log.failed_records())} "
              f"survivors={len(striped_fleet.available_replicas)}")

        # Everything in one domain: the outage is total.  No replica
        # survives, every query from the kill onward is shed.
        assert not oblivious.valid
        assert len(oblivious_fleet.available_replicas) == 0
        assert len(oblivious.log.failed_records()) > 0
        # Striped across two domains under zone-spread: half the
        # capacity survives and absorbs everything - the rescued
        # in-flight queries included - with zero failures.
        assert striped.valid
        assert len(striped_fleet.available_replicas) == 3
        assert not striped.log.failed_records()
        assert len(striped.log.completed_records()) == 600
        assert striped_fleet.stats.rescued_queries > 0
        # The referee's ledger balances in both worlds: completed plus
        # failed covers every issued query exactly once.
        for result in (oblivious, striped):
            ids = [r.query.id for r in result.log.completed_records()]
            ids += [r.query.id for r in result.log.failed_records()]
            assert len(set(ids)) == len(ids) == 600

    def test_zone_spread_burns_fewer_attempts_in_a_sick_zone(self):
        # Same topology, same zone-wide brownout, only the policy
        # differs: zone-spread's alternating fallback order retries a
        # failed attempt in the *other* zone, round-robin's rotation
        # re-enters the sick one.  Summed over six seeds the spread
        # policy wastes measurably fewer attempt deadlines.
        def brownout_run(policy, seed):
            valves = {}

            def factory(index):
                valve = DegradedSUT(FixedLatencySUT(latency=0.030))
                valves[index] = valve
                return valve

            fleet = ReplicaSet(
                factory, initial_replicas=6,
                zones=lambda i: f"z{i // 3}",
                policy=policy, attempt_timeout=0.1, seed=seed)

            class _Brownout:
                def start(self, loop, keep_going):
                    for index in (0, 1, 2):
                        loop.schedule_after(
                            1.0, lambda i=index: valves[i].degrade(6.0))
                        loop.schedule_after(2.5, valves[index].restore)

                def stop(self):
                    pass

            run_benchmark(fleet, EchoQSL(),
                          ZONE_SETTINGS.with_overrides(seed=seed),
                          services=[_Brownout()])
            return fleet.stats.deadline_failures

        seeds = range(6)
        round_robin = sum(brownout_run("round-robin", s) for s in seeds)
        spread = sum(brownout_run("zone-spread", s) for s in seeds)
        print(f"\n  deadline failures over {len(list(seeds))} seeds: "
              f"round-robin={round_robin} zone-spread={spread}")
        assert spread < round_robin
