"""One paper-exact run: full Table IV/V statistics, no scaling.

Every other benchmark uses scaled-down probe runs for wall-clock sanity;
this one executes a server run with the complete v0.5 rules - 270,336
queries (the 99th-percentile/99%-confidence requirement), the 60-second
minimum duration, and the 15 ms ResNet QoS bound - to demonstrate the
implementation handles the real statistical weight.
"""

import pytest

from repro.core import Scenario, Task, TestSettings, run_benchmark
from repro.harness.tuning import FULL_SCALE
from repro.sut.device import DeviceModel, ProcessorType
from repro.sut.simulated import SimulatedSUT, WorkloadProfile


class _QSL:
    name = "full-scale"
    total_sample_count = 8192
    performance_sample_count = 1024

    def load_samples(self, indices):
        pass

    def unload_samples(self, indices):
        pass

    def get_sample(self, index):
        return None


DEVICE = DeviceModel(
    name="full-scale-gpu", processor=ProcessorType.GPU,
    peak_gops=150_000.0, base_utilization=0.05, saturation_gops=120.0,
    overhead=0.4e-3, max_batch=128,
)


def test_full_scale_server_run(benchmark):
    settings = FULL_SCALE.apply(TestSettings(
        scenario=Scenario.SERVER, task=Task.IMAGE_CLASSIFICATION_HEAVY,
        server_target_qps=6_000.0,
    ))
    assert settings.resolved_min_query_count == 270_336
    assert settings.resolved_min_duration == 60.0

    def run():
        sut = SimulatedSUT(DEVICE, WorkloadProfile(8.2), batch_window=1e-3)
        return run_benchmark(sut, _QSL(), settings)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + result.summary())
    assert result.valid, result.validity.reasons
    assert result.metrics.query_count >= 270_336
    assert result.metrics.duration >= 60.0
    # The QoS bound held at the 99th percentile across the full corpus.
    assert result.validity.details["violation_fraction"] <= 0.01


def test_full_scale_single_stream_run(benchmark):
    settings = FULL_SCALE.apply(TestSettings(
        scenario=Scenario.SINGLE_STREAM,
        task=Task.IMAGE_CLASSIFICATION_HEAVY,
    ))
    assert settings.resolved_min_query_count == 1_024

    def run():
        sut = SimulatedSUT(DEVICE, WorkloadProfile(8.2))
        return run_benchmark(sut, _QSL(), settings)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.valid
    # 60 s at ~1.5 ms per query: tens of thousands of queries.
    assert result.metrics.query_count > 10_000
