"""Extension: Network-division overhead and QoS-degradation study.

The real MLPerf Network division asks one question the in-process
benchmark cannot: what does the serving boundary itself cost?  This
study answers it two ways with the same echo backend:

* **Per-query network overhead** - the same Server-scenario run measured
  in-process (wall clock, no wire) and through the full
  ``InferenceServer``/``NetworkSUT`` TCP path on loopback.  The latency
  difference is the serving stack: protocol encode/decode, kernel
  sockets, the server's admission queue and worker handoff.  It must be
  measurable (the wire is not free) yet small against the backend's own
  service time (the stack is not the bottleneck).

* **QoS degradation versus channel latency** - the deterministic twin:
  a virtual-time ``SimulatedChannelSUT`` sweep over one-way latencies.
  Tail latency must grow by exactly the added round trip, and the
  Server-scenario verdict must flip from VALID to INVALID where the
  wire eats the latency bound - the cliff a Network-division submitter
  walks toward as they move the SUT farther from the LoadGen.
"""

import pytest

from repro.core import Scenario, TestSettings, run_benchmark
from repro.core.events import WallClock
from repro.harness.netbench import (
    SyntheticQSL,
    latency_overhead,
    run_over_localhost,
    run_over_simulated_channel,
)
from repro.network import ChannelModel
from repro.sut.echo import EchoSUT

pytestmark = pytest.mark.socket(timeout=120.0)

BACKEND_LATENCY = 0.002
LATENCY_BOUND = 0.015           # the paper's ResNet-50 server bound
SWEEP_ONE_WAY_MS = (0.1, 1.0, 3.0, 6.0, 12.0)


def server_settings(queries=150, bound=0.1):
    return TestSettings(
        scenario=Scenario.SERVER,
        server_target_qps=200.0,
        server_latency_bound=bound,
        min_query_count=queries,
        min_duration=0.0,
        watchdog_timeout=60.0,
    )


@pytest.fixture(scope="module")
def overhead_measurement():
    """One in-process and one networked run of the same workload."""
    settings = server_settings()
    qsl = SyntheticQSL()
    baseline = run_benchmark(
        EchoSUT(latency=BACKEND_LATENCY), qsl, settings, clock=WallClock())
    networked = run_over_localhost(
        lambda: EchoSUT(latency=BACKEND_LATENCY), qsl, settings,
        query_timeout=5.0)
    return baseline, networked


class TestPerQueryOverhead:
    def test_both_runs_valid(self, overhead_measurement):
        baseline, networked = overhead_measurement
        assert baseline.valid, baseline.validity.reasons
        assert networked.valid, networked.result.validity.reasons

    def test_overhead_is_positive_and_bounded(self, overhead_measurement):
        baseline, networked = overhead_measurement
        overhead = latency_overhead(networked, baseline)
        # The wire must cost something...
        assert overhead["wire_share_s"] > 0
        # ...but on loopback it stays well under the 2 ms backend
        # service time: the serving stack is overhead, not bottleneck.
        assert overhead["mean_overhead_s"] < BACKEND_LATENCY

    def test_transport_accounting_is_consistent(self, overhead_measurement):
        _, networked = overhead_measurement
        for timing in networked.transport.values():
            assert timing.round_trip > 0
            assert 0 <= timing.server_time <= timing.round_trip + 1e-6
            assert timing.network_time == pytest.approx(
                timing.round_trip - timing.server_time, abs=1e-9)

    def test_server_saw_every_query(self, overhead_measurement):
        _, networked = overhead_measurement
        assert (networked.server_stats["completed"]
                >= networked.result.metrics.query_count)


@pytest.fixture(scope="module")
def latency_sweep():
    """Virtual-time QoS sweep: one run per one-way channel latency."""
    results = {}
    for one_way_ms in SWEEP_ONE_WAY_MS:
        model = ChannelModel(latency=one_way_ms * 1e-3, seed=71)
        results[one_way_ms] = run_over_simulated_channel(
            EchoSUT(latency=BACKEND_LATENCY), SyntheticQSL(),
            server_settings(bound=LATENCY_BOUND), model)
    return results


class TestQosDegradation:
    def test_latency_grows_with_the_channel(self, latency_sweep):
        means = [latency_sweep[ms].result.metrics.latency_mean
                 for ms in SWEEP_ONE_WAY_MS]
        assert all(b > a for a, b in zip(means, means[1:]))

    def test_added_latency_is_the_round_trip(self, latency_sweep):
        """Each extra millisecond of one-way latency costs exactly two
        on the measured query latency (deterministic channel, no jitter,
        no queueing at these rates)."""
        fast = latency_sweep[SWEEP_ONE_WAY_MS[0]].result.metrics
        slow = latency_sweep[SWEEP_ONE_WAY_MS[-1]].result.metrics
        added_one_way = (SWEEP_ONE_WAY_MS[-1] - SWEEP_ONE_WAY_MS[0]) * 1e-3
        assert (slow.latency_mean - fast.latency_mean
                == pytest.approx(2 * added_one_way, rel=0.02))

    def test_verdict_flips_exactly_at_the_budget_cliff(self, latency_sweep):
        """VALID while 2 * one_way + backend fits the bound, INVALID
        beyond - and the transition is monotone (no flapping)."""
        verdicts = [latency_sweep[ms].valid for ms in SWEEP_ONE_WAY_MS]
        assert verdicts[0] is True
        assert verdicts[-1] is False
        assert verdicts == sorted(verdicts, reverse=True)
        for one_way_ms, valid in zip(SWEEP_ONE_WAY_MS, verdicts):
            fits = 2 * one_way_ms * 1e-3 + BACKEND_LATENCY < LATENCY_BOUND
            if fits and one_way_ms <= 3.0:
                assert valid, f"{one_way_ms} ms should fit the budget"
            if not fits:
                assert not valid, f"{one_way_ms} ms cannot fit the budget"

    def test_sweep_is_deterministic(self):
        model = ChannelModel(latency=0.003, jitter=0.0005, seed=71)
        a = run_over_simulated_channel(
            EchoSUT(latency=BACKEND_LATENCY), SyntheticQSL(),
            server_settings(queries=80, bound=LATENCY_BOUND), model)
        b = run_over_simulated_channel(
            EchoSUT(latency=BACKEND_LATENCY), SyntheticQSL(),
            server_settings(queries=80, bound=LATENCY_BOUND), model)
        assert (a.result.metrics.latency_p99
                == b.result.metrics.latency_p99)
        assert a.channel_stats == b.channel_stats
