"""Section III-B / IV-A: quality targets under quantization.

The paper's experience: ~1% relative accuracy at INT8 is "easily
achievable without retraining" for the heavy models; the mobile networks
initially lost unacceptable accuracy (prompting the widened 2% window,
provided prequantized INT8 weights - i.e. per-channel treatment - and a
calibration data set).  These benchmarks regenerate that ladder on the
runnable models.
"""

import pytest

from repro.core import Task
from repro.models.quantization import NumericFormat, QuantizationSpec
from repro.models.registry import model_info
from repro.models.runtime import (
    build_cipher_translator,
    build_glyph_classifier,
    evaluate_classifier,
    evaluate_translator,
)


@pytest.fixture(scope="module")
def heavy_fp32(imagenet):
    model = build_glyph_classifier(imagenet, "heavy")
    return model, evaluate_classifier(model, imagenet)


@pytest.fixture(scope="module")
def light_fp32(imagenet):
    model = build_glyph_classifier(imagenet, "light")
    return model, evaluate_classifier(model, imagenet)


def test_sec3b_heavy_int8_meets_99_percent(benchmark, imagenet, heavy_fp32):
    model, fp32 = heavy_fp32
    target = model_info(Task.IMAGE_CLASSIFICATION_HEAVY).quality_target_factor

    def quantize_and_eval():
        q = model.quantized(QuantizationSpec(NumericFormat.INT8))
        return evaluate_classifier(q, imagenet)

    acc = benchmark(quantize_and_eval)
    print(f"\n  heavy: fp32={fp32:.1f}% int8={acc:.1f}% "
          f"target={target * fp32:.1f}%")
    assert acc >= target * fp32


def test_sec3b_light_per_tensor_int8_fails(benchmark, imagenet, light_fp32):
    """The original mobile-model problem: naive INT8 loses far more than
    the quality window allows."""
    model, fp32 = light_fp32
    target = model_info(Task.IMAGE_CLASSIFICATION_LIGHT).quality_target_factor

    def quantize_and_eval():
        q = model.quantized(
            QuantizationSpec(NumericFormat.INT8, per_channel=False))
        return evaluate_classifier(q, imagenet)

    acc = benchmark(quantize_and_eval)
    print(f"\n  light/per-tensor: fp32={fp32:.1f}% int8={acc:.1f}% "
          f"target={target * fp32:.1f}%")
    assert acc < target * fp32


def test_sec3b_light_per_channel_int8_recovers(benchmark, imagenet,
                                               light_fp32):
    """The fix MLPerf shipped: quantization-friendly weights (modelled
    here as per-channel ranges) bring the model back inside the widened
    2% window."""
    model, fp32 = light_fp32
    target = model_info(Task.IMAGE_CLASSIFICATION_LIGHT).quality_target_factor

    def quantize_and_eval():
        q = model.quantized(
            QuantizationSpec(NumericFormat.INT8, per_channel=True))
        return evaluate_classifier(q, imagenet)

    acc = benchmark(quantize_and_eval)
    assert acc >= target * fp32


def test_sec3b_format_ladder_monotone(benchmark, imagenet, heavy_fp32):
    """Coarser formats never help: FP16/BF16 ~ FP32 >= INT8 >> INT4-pt."""
    model, fp32 = heavy_fp32

    def ladder():
        out = {}
        for fmt in (NumericFormat.FP16, NumericFormat.BF16,
                    NumericFormat.INT8, NumericFormat.INT4):
            q = model.quantized(QuantizationSpec(fmt))
            out[fmt] = evaluate_classifier(q, imagenet)
        return out

    accs = benchmark.pedantic(ladder, rounds=1, iterations=1)
    assert accs[NumericFormat.FP16] == pytest.approx(fp32, abs=0.5)
    assert accs[NumericFormat.BF16] >= 0.98 * fp32
    assert accs[NumericFormat.INT8] >= 0.98 * fp32


def test_sec3b_gnmt_int8_within_1_percent(benchmark, wmt):
    model = build_cipher_translator(wmt)
    fp32 = evaluate_translator(model, wmt)

    def quantize_and_eval():
        q = model.quantized(QuantizationSpec(NumericFormat.INT8))
        return evaluate_translator(q, wmt)

    bleu = benchmark(quantize_and_eval)
    assert bleu >= 0.99 * fp32


def test_sec3b_calibration_set_flow(benchmark, imagenet, light_fp32):
    """Ranges may be chosen on the fixed calibration set only."""
    from repro.models.quantization import calibrate_clip_percentile

    model, fp32 = light_fp32
    calibration = imagenet.calibration_indices

    def calibrated_accuracy():
        spec, _cal_quality = calibrate_clip_percentile(
            lambda s: evaluate_classifier(model.quantized(s), imagenet,
                                          indices=calibration),
            NumericFormat.INT8, per_channel=True,
            candidates=(100.0, 99.9, 99.0),
        )
        return evaluate_classifier(model.quantized(spec), imagenet)

    acc = benchmark.pedantic(calibrated_accuracy, rounds=1, iterations=1)
    assert acc >= 0.95 * fp32
