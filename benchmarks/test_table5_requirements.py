"""Table V: query counts and samples per query for each task."""

import pytest

from repro.core import (
    OFFLINE_MIN_SAMPLES,
    SINGLE_STREAM_MIN_QUERIES,
    Scenario,
    Task,
    TestSettings,
)
from repro.harness.tables import format_table_v


@pytest.mark.parametrize("task", list(Task))
def test_table5_row(benchmark, task):
    def resolve():
        out = {}
        for scenario in Scenario:
            settings = TestSettings(scenario=scenario, task=task)
            out[scenario] = settings.resolved_min_query_count
        return out

    counts = benchmark(resolve)
    assert counts[Scenario.SINGLE_STREAM] == 1_024
    expected = 90_112 if task is Task.MACHINE_TRANSLATION else 270_336
    assert counts[Scenario.MULTI_STREAM] == expected
    assert counts[Scenario.SERVER] == expected
    assert counts[Scenario.OFFLINE] == 1


def test_offline_single_query_size(benchmark):
    settings = benchmark(
        lambda: TestSettings(scenario=Scenario.OFFLINE,
                             task=Task.IMAGE_CLASSIFICATION_HEAVY))
    assert settings.resolved_offline_samples == OFFLINE_MIN_SAMPLES == 24_576


def test_multistream_samples_scale_with_n(benchmark):
    """A multistream run with N streams processes N x queries samples."""
    settings = benchmark(
        lambda: TestSettings(scenario=Scenario.MULTI_STREAM,
                             task=Task.IMAGE_CLASSIFICATION_HEAVY,
                             multistream_samples_per_query=8))
    total_samples = settings.resolved_min_query_count * 8
    assert total_samples == 8 * 270_336


def test_table5_renders(benchmark):
    table = benchmark(format_table_v)
    print("\n" + table)
    assert "1K / 1" in table
    assert "270K / N" in table
    assert "90K / N" in table
    assert "1 / 24K" in table
