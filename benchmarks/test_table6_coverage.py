"""Table VI: coverage of models and scenarios (measured, not planned)."""

import pytest

from repro.core import Scenario, Task
from repro.harness.experiments import result_matrix
from repro.harness.tables import format_coverage_matrix
from repro.sut.fleet import TABLE_VI


def test_table6_exact_reproduction(benchmark, fleet_records):
    matrix = benchmark(result_matrix, fleet_records)
    print("\n" + format_coverage_matrix(matrix))
    for task in Task:
        for scenario in Scenario:
            assert matrix[task][scenario] == TABLE_VI[task][scenario], \
                (task.value, scenario.short_name)


def test_table6_scenario_totals(benchmark, fleet_records):
    matrix = benchmark(result_matrix, fleet_records)
    totals = {
        scenario: sum(matrix[task][scenario] for task in Task)
        for scenario in Scenario
    }
    assert totals[Scenario.SINGLE_STREAM] == 51
    assert totals[Scenario.MULTI_STREAM] == 15
    assert totals[Scenario.SERVER] == 33
    assert totals[Scenario.OFFLINE] == 67


def test_table6_gnmt_multistream_empty(benchmark, fleet_records):
    """'GNMT garnered no multistream submissions ... the only model and
    scenario combination with no submissions.'"""
    matrix = benchmark(result_matrix, fleet_records)
    empty_cells = [
        (task, scenario)
        for task in Task for scenario in Scenario
        if matrix[task][scenario] == 0
    ]
    assert empty_cells == [(Task.MACHINE_TRANSLATION, Scenario.MULTI_STREAM)]


def test_table6_offline_and_single_stream_dominate(benchmark, fleet_records):
    """'the single-stream and offline scenarios are the most widely
    used'; server and multistream are harder and rarer."""
    matrix = benchmark(result_matrix, fleet_records)
    totals = {
        scenario: sum(matrix[task][scenario] for task in Task)
        for scenario in Scenario
    }
    assert totals[Scenario.OFFLINE] > totals[Scenario.SERVER]
    assert totals[Scenario.SINGLE_STREAM] > totals[Scenario.SERVER]
    assert totals[Scenario.MULTI_STREAM] == min(totals.values())
