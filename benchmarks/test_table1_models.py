"""Table I: reference-model parameters, GOPs, and quality targets.

Regenerates every row of the paper's Table I from the architecture
definitions and asserts the published characteristics.
"""

import pytest

from repro.core import Task
from repro.harness.tables import format_table_i
from repro.models.registry import all_models, model_info

#: (parameters, GOPs/input) straight from the paper.
TABLE_I = {
    Task.IMAGE_CLASSIFICATION_HEAVY: (25.6e6, 8.2),
    Task.IMAGE_CLASSIFICATION_LIGHT: (4.2e6, 1.138),
    Task.OBJECT_DETECTION_HEAVY: (36.3e6, 433.0),
    Task.OBJECT_DETECTION_LIGHT: (6.91e6, 2.47),
    Task.MACHINE_TRANSLATION: (210e6, None),
}


@pytest.mark.parametrize("task", list(Task))
def test_table1_row(benchmark, task):
    info = model_info(task)
    params_expected, gops_expected = TABLE_I[task]

    def build_and_count():
        arch = info.build_arch()
        if task is Task.MACHINE_TRANSLATION:
            return arch.param_count(), None
        params = arch.param_count(info.input_shape)
        gops = 2 * arch.macs(info.input_shape) / 1e9
        return params, gops

    params, gops = benchmark(build_and_count)
    assert params == pytest.approx(params_expected, rel=0.11)
    if gops_expected is not None:
        assert gops == pytest.approx(gops_expected, rel=0.05)


def test_table1_quality_targets(benchmark):
    rows = benchmark(lambda: list(all_models()))
    targets = {r.task: (r.quality_target_factor, r.fp32_quality) for r in rows}
    assert targets[Task.IMAGE_CLASSIFICATION_HEAVY] == (0.99, 76.456)
    assert targets[Task.IMAGE_CLASSIFICATION_LIGHT] == (0.98, 71.676)
    assert targets[Task.OBJECT_DETECTION_HEAVY] == (0.99, 0.20)
    assert targets[Task.OBJECT_DETECTION_LIGHT] == (0.99, 0.22)
    assert targets[Task.MACHINE_TRANSLATION] == (0.99, 23.9)


def test_table1_renders(benchmark):
    table = benchmark(format_table_i)
    print("\n" + table)
    for name in ("ResNet-50 v1.5", "MobileNet-v1 224", "SSD-ResNet-34",
                 "SSD-MobileNet-v1", "GNMT"):
        assert name in table
