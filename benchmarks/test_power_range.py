"""Section I: the fleet's power and efficiency spread.

"The systems that incorporate existing models span at least three
orders of magnitude in power consumption and five orders of magnitude
in performance."  The device power model makes both spans measurable,
plus the energy-efficiency consequences (batching amortizes not just
time but joules).
"""

import pytest

from repro.sut.device import ComputeMotif
from repro.sut.fleet import build_fleet


@pytest.fixture(scope="module")
def fleet():
    return build_fleet()


def test_power_spans_three_orders_of_magnitude(benchmark, fleet):
    watts = benchmark(lambda: sorted(s.device.peak_watts for s in fleet))
    span = watts[-1] / watts[0]
    print(f"\n  peak power: {watts[0]:.1f} W .. {watts[-1]:.0f} W "
          f"({span:.0f}x)")
    assert span >= 500            # ~3 orders of magnitude


def test_performance_spans_more_than_power(benchmark, fleet):
    """Performance spread exceeds power spread: efficiency differs."""
    def spans():
        watts = [s.device.peak_watts for s in fleet]
        perf = [s.device.peak_gops for s in fleet]
        return max(perf) / min(perf), max(watts) / min(watts)

    perf_span, power_span = benchmark(spans)
    assert perf_span > power_span


def test_datacenter_parts_are_more_efficient_at_scale(benchmark, fleet):
    """Joules per ResNet inference at each device's best batch: big
    accelerators beat small CPUs on efficiency despite drawing far more
    power - throughput amortizes the draw."""
    def efficiency(name):
        device = next(s.device for s in fleet if s.name == name)
        return device.energy_per_sample(8.2, device.max_batch)

    iot = benchmark.pedantic(lambda: efficiency("iot-cpu"),
                             rounds=1, iterations=1)
    dc = efficiency("dc-gpu-a")
    print(f"\n  J/inference: iot-cpu {iot:.3f}, dc-gpu-a {dc:.5f}")
    assert dc < iot


def test_batching_amortizes_energy(benchmark, fleet):
    device = next(s.device for s in fleet if s.name == "dc-gpu-a").\
        __class__
    gpu = next(s.device for s in fleet if s.name == "dc-gpu-a")
    costs = benchmark(lambda: [
        gpu.energy_per_sample(8.2, b) for b in (1, 8, 64, 128)
    ])
    assert costs == sorted(costs, reverse=True)
