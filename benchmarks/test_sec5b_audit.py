"""Section V-B / VII-E: the validation suite during result review.

"We found about 40 issues in the approximately 180 results from the
closed division ... Thanks to the LoadGen's accuracy checkers and
submission-checker scripts, we identified many issues automatically."
This bench runs a small review round with injected rule violations and
verifies the tooling catches every one while clearing the honest
majority.
"""

import pytest

from repro.accuracy.checker import AccuracyReport
from repro.audit import run_accuracy_verification, run_caching_detection
from repro.core import Scenario, Task, TestSettings, run_benchmark
from repro.datasets import DatasetQSL, SyntheticImageNet
from repro.models.quantization import NumericFormat
from repro.models.runtime import build_glyph_classifier
from repro.submission import (
    BenchmarkResult,
    Category,
    Division,
    Submission,
    SystemDescription,
    review_round,
)
from repro.sut.backend import ClassifierSUT

from tests.conftest import EchoQSL, FixedLatencySUT


def make_entry(latency, accuracy_value, target=70.0, retrained=False):
    settings = TestSettings(
        scenario=Scenario.SERVER, task=Task.MACHINE_TRANSLATION,
        server_target_qps=100.0, min_query_count=128, min_duration=0.5,
    )
    performance = run_benchmark(FixedLatencySUT(latency), EchoQSL(), settings)
    accuracy = AccuracyReport(
        metric_name="SacreBLEU", value=accuracy_value, target=target,
        passed=accuracy_value >= target, sample_count=128,
    )
    return BenchmarkResult(
        task=Task.MACHINE_TRANSLATION, scenario=Scenario.SERVER,
        performance=performance, accuracy=accuracy, retrained=retrained,
    )


def make_submission(entry, name):
    return Submission(
        system=SystemDescription(
            name=name, submitter="bench", processor="CPU",
            accelerator_count=0, host_cpu_count=2, software_stack="numpy",
            memory_gb=8.0, numerics=(NumericFormat.FP32,),
        ),
        division=Division.CLOSED, category=Category.AVAILABLE,
        results=[entry],
    )


def test_sec5b_review_round_catches_injected_issues(benchmark):
    """9 honest + 3 rule-breaking submissions: all three violation
    classes surface, nothing honest is rejected."""
    def build_round():
        submissions = [
            make_submission(make_entry(0.002, 75.0), f"honest-{i}")
            for i in range(9)
        ]
        submissions.append(make_submission(
            make_entry(0.3, 75.0), "latency-violator"))
        submissions.append(make_submission(
            make_entry(0.002, 50.0), "quality-misser"))
        submissions.append(make_submission(
            make_entry(0.002, 75.0, retrained=True), "retrainer"))
        return review_round(submissions)

    summary = benchmark.pedantic(build_round, rounds=1, iterations=1)
    print("\n  " + summary.summary())
    print(f"  issue codes: {summary.issue_codes()}")
    assert summary.total_results == 12
    assert summary.cleared_results == 9
    codes = summary.issue_codes()
    assert codes.get("invalid-run", 0) >= 1
    assert codes.get("quality-target") == 1
    assert codes.get("retraining") == 1


@pytest.fixture(scope="module")
def audit_setup():
    dataset = SyntheticImageNet(size=200)
    qsl = DatasetQSL(dataset)
    model = build_glyph_classifier(dataset, "heavy")

    def factory():
        return ClassifierSUT(model, qsl, service_time_fn=lambda n: 0.002 * n)

    settings = TestSettings(scenario=Scenario.SINGLE_STREAM,
                            min_query_count=128, min_duration=0.3)
    return factory, qsl, settings


def test_sec5b_accuracy_verification_cost(benchmark, audit_setup):
    factory, qsl, settings = audit_setup
    report = benchmark.pedantic(
        lambda: run_accuracy_verification(factory, qsl, settings),
        rounds=1, iterations=1)
    assert report.passed


def test_sec5b_caching_detection_cost(benchmark, audit_setup):
    factory, qsl, settings = audit_setup
    report = benchmark.pedantic(
        lambda: run_caching_detection(factory, qsl, settings),
        rounds=1, iterations=1)
    assert report.passed
