"""Figure 6: server-to-offline throughput degradation.

The paper's quantified observations (Section VI-B):

* every system delivers LESS throughput under the server scenario;
* NMT loses 39-55% across all systems with NMT results - the worst;
* ResNet-50 v1.5 losses range from ~3% to ~35% (avg ~20%), with some
  "system B"-like submitters losing ~50% or more;
* MobileNet-v1's average loss is the smallest of the three;
* a latency-unconstrained comparison says little about the constrained
  one (the spread within each model is wide).
"""

import statistics

import pytest

from repro.core import Task
from repro.harness.experiments import server_offline_ratios


@pytest.fixture(scope="module")
def ratios(fleet_records):
    return server_offline_ratios(fleet_records)


def per_task(ratios, task):
    return [by_task[task] for by_task in ratios.values() if task in by_task]


def test_fig6_no_system_beats_offline(benchmark, ratios):
    all_ratios = benchmark(
        lambda: [r for by_task in ratios.values() for r in by_task.values()])
    print()
    for system, by_task in sorted(ratios.items()):
        row = ", ".join(f"{t.value}={r:.2f}" for t, r in by_task.items())
        print(f"  {system:18s} {row}")
    assert all(r <= 1.02 for r in all_ratios)
    assert len(all_ratios) >= 20


def test_fig6_nmt_degrades_39_to_55_percent(benchmark, ratios):
    nmt = benchmark(per_task, ratios, Task.MACHINE_TRANSLATION)
    assert len(nmt) >= 5
    assert all(0.30 <= r <= 0.70 for r in nmt)
    assert 0.40 <= statistics.mean(nmt) <= 0.60


def test_fig6_resnet_spread_includes_mild_and_severe(benchmark, ratios):
    resnet = benchmark(per_task, ratios, Task.IMAGE_CLASSIFICATION_HEAVY)
    assert len(resnet) >= 8
    assert max(resnet) >= 0.90      # some systems lose only ~3-10%
    assert min(resnet) <= 0.65      # some lose 35%+ ("system B" ~50%)
    assert 0.70 <= statistics.mean(resnet) <= 0.95


def test_fig6_mobilenet_loses_least(benchmark, ratios):
    mobilenet = benchmark(per_task, ratios, Task.IMAGE_CLASSIFICATION_LIGHT)
    assert max(mobilenet) >= 0.90   # best systems lose <10%
    nmt_mean = statistics.mean(per_task(ratios, Task.MACHINE_TRANSLATION))
    assert statistics.mean(mobilenet) > nmt_mean


def test_fig6_nmt_is_the_worst_model(benchmark, ratios):
    means = benchmark(lambda: {
        task: statistics.mean(per_task(ratios, task))
        for task in (Task.MACHINE_TRANSLATION,
                     Task.IMAGE_CLASSIFICATION_HEAVY,
                     Task.IMAGE_CLASSIFICATION_LIGHT,
                     Task.OBJECT_DETECTION_HEAVY)
    })
    nmt = means.pop(Task.MACHINE_TRANSLATION)
    assert all(nmt < other for other in means.values())


def test_fig6_extrapolation_is_poor(benchmark, ratios):
    """'the impact of latency constraints on different models
    extrapolates poorly': within-model spread is large."""
    def spreads():
        out = {}
        for task in (Task.IMAGE_CLASSIFICATION_HEAVY,
                     Task.OBJECT_DETECTION_LIGHT):
            values = per_task(ratios, task)
            out[task] = max(values) - min(values)
        return out

    deltas = benchmark(spreads)
    assert all(delta > 0.3 for delta in deltas.values())
