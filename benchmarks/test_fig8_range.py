"""Figure 8: relative performance per model and scenario.

Published observations: four orders of magnitude separate the smallest
and largest systems overall; popular combos like ResNet-50 (SS/offline)
spread by 100x or more within one chart; GNMT server "exhibits much less
performance variation"; GNMT-multistream has no bar at all.
"""

import pytest

from repro.core import Scenario, Task
from repro.harness.experiments import relative_performance


@pytest.fixture(scope="module")
def rel(fleet_records):
    return relative_performance(fleet_records)


def test_fig8_all_19_combos_present(benchmark, rel):
    groups = benchmark(lambda: set(rel))
    expected = {
        (task, scenario) for task in Task for scenario in Scenario
    } - {(Task.MACHINE_TRANSLATION, Scenario.MULTI_STREAM)}
    assert groups == expected


def test_fig8_four_orders_of_magnitude_overall(benchmark, fleet_records):
    """Cheapest-to-fastest spread across the whole corpus ~10^4."""
    def overall_spread():
        # Compare offline throughputs of the extremes on a common task.
        offline = {
            r.system: r.metric for r in fleet_records
            if r.task is Task.IMAGE_CLASSIFICATION_LIGHT
            and r.scenario is Scenario.OFFLINE
        }
        ss = {
            r.system: 1.0 / r.metric for r in fleet_records
            if r.task is Task.IMAGE_CLASSIFICATION_LIGHT
            and r.scenario is Scenario.SINGLE_STREAM
        }
        values = list(offline.values()) + list(ss.values())
        return max(values) / min(values)

    spread = benchmark(overall_spread)
    print(f"\n  overall mobilenet performance spread: {spread:.0f}x")
    assert spread > 1e3


def test_fig8_popular_combos_spread_100x(benchmark, rel):
    spreads = benchmark(lambda: {
        key: max(values.values()) for key, values in rel.items()
    })
    print()
    for (task, scenario), spread in sorted(
            spreads.items(), key=lambda kv: (kv[0][0].value, kv[0][1].value)):
        print(f"  {task.value:20s} {scenario.short_name:3s} {spread:9.1f}x")
    assert spreads[(Task.IMAGE_CLASSIFICATION_HEAVY,
                    Scenario.SINGLE_STREAM)] > 100
    assert spreads[(Task.IMAGE_CLASSIFICATION_HEAVY,
                    Scenario.OFFLINE)] > 100
    assert spreads[(Task.OBJECT_DETECTION_LIGHT, Scenario.OFFLINE)] > 100


def test_fig8_gnmt_server_varies_least_among_server_groups(benchmark, rel):
    def server_spreads():
        return {
            task: max(rel[(task, Scenario.SERVER)].values())
            for task in Task
        }

    spreads = benchmark(server_spreads)
    # GNMT server variation is much smaller than the vision extremes.
    assert spreads[Task.MACHINE_TRANSLATION] < \
        0.5 * max(spreads.values())


def test_fig8_normalization_floor_is_one(benchmark, rel):
    minima = benchmark(lambda: [min(v.values()) for v in rel.values()])
    assert all(m == pytest.approx(1.0) for m in minima)
