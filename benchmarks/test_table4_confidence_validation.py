"""Empirical (Monte Carlo) validation of the Table IV statistics.

The paper sizes runs so that, with 99% confidence, the measured
tail-latency percentile is within ``margin`` of the truth.  Here we
*test* that design: draw many synthetic runs from a known latency
distribution, measure the empirical percentile at the prescribed query
count, and check the miss rate against the confidence target - then
show that a 10x smaller run does not deliver the same guarantee.
"""

import numpy as np
import pytest

from repro.core.stats import (
    margin_for_tail_latency,
    queries_for_confidence,
    required_queries,
)

RNG = np.random.default_rng(4242)

#: The underlying "true" latency distribution (lognormal: heavy tail).
MU, SIGMA = -4.0, 0.35


def true_quantile(p):
    from math import exp, sqrt
    from repro.core.stats import inverse_normal_cdf
    return exp(MU + SIGMA * inverse_normal_cdf(p))


def miss_rate(tail, num_queries, trials=3_000):
    """Fraction of runs whose bound-violation fraction is off by more
    than the margin.

    Checking a latency bound at percentile ``p`` is a binomial
    proportion test: the fraction of queries over the true p-quantile
    should be (1 - p) +/- margin.
    """
    margin = margin_for_tail_latency(tail)
    threshold = true_quantile(tail)
    # Violations per run ~ Binomial(num_queries, 1 - tail).
    violations = RNG.binomial(num_queries, 1.0 - tail, size=trials)
    fraction = violations / num_queries
    return float(np.mean(np.abs(fraction - (1.0 - tail)) > margin))


@pytest.mark.parametrize("tail", [0.90, 0.95, 0.99])
def test_prescribed_counts_deliver_99_percent_confidence(benchmark, tail):
    count = queries_for_confidence(tail)
    rate = benchmark.pedantic(lambda: miss_rate(tail, count),
                              rounds=1, iterations=1)
    print(f"\n  p{tail * 100:.0f}: {count:,} queries -> "
          f"miss rate {rate:.3%} (budget 1%)")
    # 99% confidence -> miss rate ~1%; allow Monte Carlo noise.
    assert rate <= 0.02


@pytest.mark.parametrize("tail", [0.99])
def test_ten_times_fewer_queries_break_the_guarantee(benchmark, tail):
    count = queries_for_confidence(tail) // 10
    rate = benchmark.pedantic(lambda: miss_rate(tail, count),
                              rounds=1, iterations=1)
    print(f"\n  p99 with only {count:,} queries -> miss rate {rate:.1%}")
    assert rate > 0.05


def test_rounding_up_never_hurts(benchmark):
    """The 2^13 round-up only adds queries, so confidence only grows."""
    def compare():
        exact = miss_rate(0.99, queries_for_confidence(0.99))
        rounded = miss_rate(0.99, required_queries(0.99))
        return exact, rounded

    exact, rounded = benchmark.pedantic(compare, rounds=1, iterations=1)
    assert rounded <= exact + 0.01


def test_single_stream_count_suits_its_loose_percentile(benchmark):
    """1,024 single-stream queries are statistically fine for a p90
    *report* (no bound check): the empirical p90 lands within ~1.5% of
    truth almost always."""
    def p90_error():
        samples = RNG.lognormal(MU, SIGMA, size=(2_000, 1_024))
        empirical = np.percentile(samples, 90.0, axis=1)
        return float(np.mean(np.abs(empirical / true_quantile(0.90) - 1.0)))

    mean_error = benchmark.pedantic(p90_error, rounds=1, iterations=1)
    print(f"\n  mean |p90 error| with 1,024 queries: {mean_error:.2%}")
    assert mean_error < 0.02
