"""Extension: cost and fidelity of the live telemetry subsystem.

The ISSUE's acceptance bar for ``repro.metrics`` is that observing the
benchmark must not perturb it: instrumenting the LoadGen issue path has
to cost **under 5%** of the bare per-query processing time.  Measuring
that as a difference of two full-run wall times is hopeless on a shared
machine - the difference of two ~100 ms numbers with percent-level
scheduler noise swamps a 5% effect - so the budget is checked the
robust way:

* the **numerator** (what instrumentation adds per query: the exact
  counter/histogram operations the scenario driver performs) is timed
  in isolation, where it is deterministic to nanoseconds;
* the **denominator** (the bare per-query issue-path cost) comes from a
  min-of-N uninstrumented run, where noise only perturbs the *ratio*
  proportionally (5% noise on a 4% quantity is 0.2 pp);
* a full instrumented run still executes end to end as a coarse
  guardrail against wiring regressions the microbenchmark cannot see.

The same structure bounds the snapshot sampler (captures per run x
cost per capture), and the subsystem's fidelity claim is pinned: live
histogram percentiles must agree with the exact post-hoc
``ScenarioMetrics`` within the documented reconstruction bound.
"""

import time

import pytest

from repro.core import Scenario, TestSettings, run_benchmark
from repro.harness.netbench import SyntheticQSL
from repro.metrics import Histogram, MetricsRegistry, capture
from repro.metrics.primitives import DEFAULT_GROWTH
from repro.sut.echo import EchoSUT

#: Queries per timed run: large enough that per-query processing
#: dominates fixed setup.
QUERIES = 4000
REPEATS = 5
OVERHEAD_BUDGET = 0.05
SNAPSHOT_PERIOD = 0.010


def settings():
    return TestSettings(
        scenario=Scenario.SERVER,
        server_target_qps=20_000.0,
        server_latency_bound=0.1,
        min_query_count=QUERIES,
        min_duration=0.0,
        watchdog_timeout=600.0,
    )


def timed_run(registry=None, snapshot_period=None):
    started = time.perf_counter()
    result = run_benchmark(
        EchoSUT(latency=0.001), SyntheticQSL(), settings(),
        registry=registry, snapshot_period=snapshot_period,
    )
    elapsed = time.perf_counter() - started
    assert result.valid
    return elapsed, result


@pytest.fixture(scope="module")
def bare_per_query():
    """Bare issue-path cost per query, min-of-N (seconds)."""
    timed_run()  # warm-up
    best = min(timed_run()[0] for _ in range(REPEATS))
    per_query = best / QUERIES
    print(f"\nbare: {best * 1e3:.1f} ms = {per_query * 1e6:.2f} us/query")
    return per_query


def instrumented_ops_per_query():
    """Time exactly what ``_DriverInstruments`` adds per query.

    Issue side: two counter increments (queries, samples).  Completion
    side: one counter increment plus one latency observation.  The
    ``is not None`` guard the driver takes is included.
    """
    registry = MetricsRegistry()
    issued = registry.counter("q_total", labels=("s",)).labels(s="x")
    samples = registry.counter("s_total", labels=("s",)).labels(s="x")
    completed = registry.counter("c_total", labels=("s",)).labels(s="x")
    latency = registry.histogram("l_seconds", labels=("s",)).labels(s="x")
    metrics = issued  # any non-None sentinel for the guard
    n = 50_000
    best = float("inf")
    for _ in range(3):
        started = time.perf_counter()
        for i in range(n):
            if metrics is not None:
                issued.inc()
                samples.inc(1)
            if metrics is not None:
                completed.inc()
                latency.observe(0.001 + i * 1e-9)
        best = min(best, time.perf_counter() - started)
    return best / n


class TestIssuePathOverhead:
    def test_instrumentation_cost_under_budget(self, bare_per_query):
        added = instrumented_ops_per_query()
        overhead = added / bare_per_query
        print(f"instrumentation: {added * 1e9:.0f} ns/query "
              f"= {overhead:.2%} of the issue path")
        assert overhead < OVERHEAD_BUDGET, (
            f"instrumentation costs {overhead:.1%} of the issue path "
            f"(budget {OVERHEAD_BUDGET:.0%})"
        )

    def test_snapshot_sampling_cost_under_budget(self, bare_per_query):
        registry = MetricsRegistry()
        _, result = timed_run(registry, SNAPSHOT_PERIOD)
        snaps = result.snapshots
        assert snaps is not None and len(snaps) >= 10
        best = float("inf")
        for _ in range(3):
            started = time.perf_counter()
            for _ in range(100):
                capture(registry, 0.0)
            best = min(best, (time.perf_counter() - started) / 100)
        total_cost = best * len(snaps)
        run_time = bare_per_query * QUERIES
        overhead = total_cost / run_time
        print(f"\ncapture: {best * 1e6:.0f} us x {len(snaps)} snapshots "
              f"= {overhead:.2%} of the run")
        assert overhead < OVERHEAD_BUDGET

    def test_end_to_end_guardrail(self, bare_per_query):
        """Coarse full-system check: an instrumented + sampled run must
        not blow past the budget by more than wall-clock noise allows
        (the precise budget is asserted microbenchmark-side above)."""
        best = min(
            timed_run(MetricsRegistry(), SNAPSHOT_PERIOD)[0]
            for _ in range(REPEATS)
        )
        bare = bare_per_query * QUERIES
        ratio = best / bare - 1.0
        print(f"\nend-to-end instrumented+sampled: {ratio:+.2%}")
        # 3x the budget: wide enough for scheduler noise, tight enough
        # to catch an accidental O(n) on the hot path.
        assert ratio < 3 * OVERHEAD_BUDGET


class TestPrimitiveCost:
    def test_histogram_observe_is_sub_microsecond_scale(self):
        """A guardrail, not a race: one observe() must cost O(1) and
        stay far below any per-query latency we simulate (10 us here,
        an order above typical measured cost)."""
        h = Histogram()
        n = 200_000
        values = [0.001 + 1e-9 * i for i in range(n)]
        best = float("inf")
        for _ in range(3):
            started = time.perf_counter()
            for v in values:
                h.observe(v)
            best = min(best, time.perf_counter() - started)
        per_observe = best / n
        print(f"\nobserve: {per_observe * 1e9:.0f} ns")
        assert per_observe < 10e-6


class TestLiveFidelity:
    def test_live_percentiles_track_post_hoc_metrics(self):
        registry = MetricsRegistry()
        _, result = timed_run(registry)
        hist = registry.get("loadgen_query_latency_seconds").labels(
            scenario="server")
        assert hist.count == result.metrics.query_count
        bound = DEFAULT_GROWTH - 1.0
        assert hist.percentile(0.90) == pytest.approx(
            result.metrics.latency_p90, rel=bound)
        assert hist.percentile(0.99) == pytest.approx(
            result.metrics.latency_p99, rel=bound)
        assert hist.mean == pytest.approx(result.metrics.latency_mean,
                                          rel=1e-9)
