"""Extension: durability chaos soak — crash, resume, self-heal.

The study behind ``docs/durability.md``: a journaled LoadGen run is
interrupted every way a production harness actually dies, and every
interruption must either resume to a result fingerprint-identical to an
uninterrupted golden run or fail loudly with a classified reason:

* interruption matrix — the journal is cut at seven byte offsets (clean
  and torn frame boundaries) and each stub resumes exactly, under every
  fsync policy;
* chaos soak — forked children SIGKILL themselves mid-run at several
  journal depths; runs over fault-injected "dropped connection"
  backends (terminal failures included) resume exactly; a simulated
  network run replays without the network; a crash-prone parallel pool
  self-heals under journaling; corrupted journals are rejected with
  classified errors;
* breaker outage study — the same scheduled backend outage is served
  unprotected, breaker-only, breaker+standby, and breaker+standby+hedge,
  showing load shedding, recovery transitions, and the verdict flip;
* journaling overhead — an Offline run pays < 5% wall clock for the
  write-ahead journal.
"""

import gc
import multiprocessing
import os
import signal
import statistics
import time

import pytest

from repro.core import Scenario, TestMode, TestSettings, run_benchmark
from repro.durability import (
    BreakerPolicy,
    JournalError,
    JournalWriter,
    ResumeError,
    RunJournal,
    SelfHealingSUT,
    read_frames,
    read_run_journal,
    resume_run,
    run_fingerprint,
)
from repro.faults import FaultPlan, FaultType, FaultySUT, ResilientSUT
from repro.faults.resilient import RetryPolicy
from repro.faults.sut import OutageSUT
from repro.metrics import MetricsRegistry
from repro.network.simulated import ChannelModel, SimulatedChannelSUT
from repro.parallel import BatchingPolicy, ParallelSUT
from repro.sut.echo import EchoSUT

from tests.conftest import EchoQSL, FixedLatencySUT
from tests.parallel.test_parallel_sut import ArrayQSL, affine_factory

SERVICE_TIME = 0.004
QUERIES = 200

SETTINGS = TestSettings(
    scenario=Scenario.SERVER, server_target_qps=250.0,
    server_latency_bound=0.05, min_query_count=QUERIES,
    min_duration=0.0, watchdog_timeout=60.0, seed=23)


def golden_sut():
    return FixedLatencySUT(SERVICE_TIME)


@pytest.fixture(scope="module")
def golden(tmp_path_factory):
    """One journaled reference run: (fingerprint, raw journal bytes)."""
    path = tmp_path_factory.mktemp("durability") / "golden.rjnl"
    result = run_benchmark(golden_sut(), EchoQSL(total=512), SETTINGS,
                           journal=RunJournal(path))
    return run_fingerprint(result), path.read_bytes()


class TestInterruptionMatrix:
    """Cut the journal anywhere; the resumed run is byte-identical."""

    FRACTIONS = (0.08, 0.2, 0.35, 0.5, 0.65, 0.8, 0.95)

    def test_seven_interruption_points_resume_exactly(
            self, benchmark, golden, tmp_path):
        reference, blob = golden

        def soak():
            rows = []
            for i, fraction in enumerate(self.FRACTIONS):
                path = tmp_path / f"cut{i}.rjnl"
                # The +i%4 stray bytes land many cuts mid-frame, so the
                # torn-tail path is exercised alongside clean cuts.
                path.write_bytes(blob[:int(len(blob) * fraction) + i % 4])
                records, truncated, _ = read_frames(path)
                registry = MetricsRegistry()
                resumed = resume_run(str(path), golden_sut(),
                                     EchoQSL(total=512), registry=registry)
                rows.append((
                    fraction, len(records), truncated,
                    registry.get(
                        "durability_replayed_completions_total").value,
                    registry.get(
                        "durability_recomputed_queries_total").value,
                    run_fingerprint(resumed) == reference,
                ))
            return rows

        rows = benchmark.pedantic(soak, rounds=1, iterations=1)
        print("\n  cut    records  torn  replayed  recomputed  exact")
        for fraction, records, torn, replayed, recomputed, exact in rows:
            print(f"  {fraction:4.0%} {records:9d} {str(torn):>5s} "
                  f"{replayed:9.0f} {recomputed:11.0f}  {exact}")
        for fraction, _, _, replayed, recomputed, exact in rows:
            assert exact, f"resume diverged at cut {fraction:.0%}"
            assert replayed + recomputed == QUERIES
        # The matrix spans the whole run: early cuts mostly recompute,
        # late cuts mostly replay.
        assert rows[0][3] < rows[-1][3]

    @pytest.mark.parametrize("fsync", ["always", "interval", "never"])
    def test_every_fsync_policy_survives_interruption(
            self, golden, tmp_path, fsync):
        reference, _ = golden
        path = tmp_path / f"{fsync}.rjnl"
        run_benchmark(golden_sut(), EchoQSL(total=512), SETTINGS,
                      journal=RunJournal(path, fsync=fsync))
        size = os.path.getsize(path)
        with open(path, "r+b") as f:
            f.truncate(size // 2)
        resumed = resume_run(str(path), golden_sut(), EchoQSL(total=512))
        assert run_fingerprint(resumed) == reference


def _journal_and_die(path, kill_after):
    """Child body: journal the module's reference run, then SIGKILL
    ourselves after ``kill_after`` journal appends -- no cleanup, no
    atexit, exactly what a machine crash leaves behind."""

    def kill_switch(record_count):
        if record_count >= kill_after:
            os.kill(os.getpid(), signal.SIGKILL)

    run_benchmark(golden_sut(), EchoQSL(total=512), SETTINGS,
                  journal=RunJournal(path, on_append=kill_switch))
    os._exit(42)  # unreachable when the kill switch fires


def dropped_connection_sut():
    """A backend whose connection drops 25% of attempts; two attempts
    per query, so some queries fail *terminally* -- the journal must
    replay recorded failures, not only completions."""
    plan = FaultPlan.single(FaultType.DROP, 0.25, seed=11)
    return ResilientSUT(
        FaultySUT(golden_sut(), plan),
        RetryPolicy(max_attempts=2, attempt_timeout=0.03,
                    backoff_base=0.001),
        seed=6)


class TestChaosSoak:
    @pytest.mark.parametrize("kill_after", [30, 150, 320],
                             ids=["early", "mid", "late"])
    def test_sigkilled_children_resume_to_golden(
            self, golden, tmp_path, kill_after):
        reference, _ = golden
        path = str(tmp_path / f"kill{kill_after}.rjnl")
        ctx = multiprocessing.get_context("fork")
        child = ctx.Process(target=_journal_and_die, args=(path, kill_after))
        child.start()
        child.join(timeout=60.0)
        assert child.exitcode == -signal.SIGKILL

        state = read_run_journal(path)
        assert not state.ended
        resumed = resume_run(path, golden_sut(), EchoQSL(total=512))
        assert run_fingerprint(resumed) == reference
        assert read_run_journal(path).ended

    def test_dropped_connections_resume_exactly_failures_included(
            self, tmp_path):
        reference = run_fingerprint(
            run_benchmark(dropped_connection_sut(), EchoQSL(total=512),
                          SETTINGS))
        path = tmp_path / "drops.rjnl"
        run_benchmark(dropped_connection_sut(), EchoQSL(total=512),
                      SETTINGS, journal=RunJournal(path))
        records, _, _ = read_frames(path)
        failed = sum(1 for kind, _ in records if kind == "failed")
        assert failed > 0, "the drop plan produced no terminal failures"

        blob = path.read_bytes()
        for fraction in (0.25, 0.6, 0.9):
            cut = tmp_path / f"drops{int(fraction * 100)}.rjnl"
            cut.write_bytes(blob[:int(len(blob) * fraction)])
            resumed = resume_run(str(cut), dropped_connection_sut(),
                                 EchoQSL(total=512))
            assert run_fingerprint(resumed) == reference, fraction

    def test_simulated_network_run_replays_without_the_network(
            self, tmp_path):
        """Crash-during-sealing on a simulated-WAN run: every query has
        a terminal record, so the resume is pure replay and never has to
        bring the (gone) network back up."""
        model = ChannelModel(latency=0.002, jitter=0.001, seed=3)
        sut = SimulatedChannelSUT(golden_sut(), model)
        path = tmp_path / "wan.rjnl"
        result = run_benchmark(sut, EchoQSL(total=512), SETTINGS,
                               journal=RunJournal(path))
        records, _, _ = read_frames(path)
        assert records[-1][0] == "end"
        cut = tmp_path / "wan-cut.rjnl"
        with JournalWriter(cut) as w:
            for kind, fields in records[:-1]:
                w.append(kind, fields)
        offline_backend = FixedLatencySUT(SERVICE_TIME)
        resumed = resume_run(str(cut), offline_backend, EchoQSL(total=512))
        assert run_fingerprint(resumed) == run_fingerprint(result)
        assert offline_backend.issued == 0

    def test_worker_kills_mid_run_self_heal_under_journaling(
            self, tmp_path):
        """Faults x parallel x durability: a crash plan kills workers
        mid-run; the pool respawns them, retries paper over the failed
        batches, the journal seals -- and a truncated copy resumes to
        the same accuracy outputs with a fresh pool."""
        qsl = ArrayQSL(32)
        settings = TestSettings(
            scenario=Scenario.SINGLE_STREAM, mode=TestMode.ACCURACY,
            min_duration=0.0, min_query_count=1, seed=23)

        def stack():
            inner = ParallelSUT(
                affine_factory, qsl, workers=2, seed=9,
                policy=BatchingPolicy(max_batch_size=8, max_wait=0.001),
                crash_plan=FaultPlan.single(FaultType.STALL, 0.5, seed=21))
            return inner, ResilientSUT(
                inner, RetryPolicy(max_attempts=8, backoff_base=0.001))

        def outputs(result):
            return sorted(
                (resp.sample_id, float(resp.data))
                for record in result.log.completed_records()
                for resp in record.responses)

        path = tmp_path / "parallel.rjnl"
        inner, sut = stack()
        try:
            result = run_benchmark(sut, qsl, settings,
                                   journal=RunJournal(path))
        finally:
            inner.close()
        assert result.valid, result.validity
        assert inner.pool.stats.restarts > 0  # crashes really happened
        assert read_run_journal(path).ended

        blob = path.read_bytes()
        cut = tmp_path / "parallel-cut.rjnl"
        cut.write_bytes(blob[:int(len(blob) * 0.5)])
        inner2, sut2 = stack()
        registry = MetricsRegistry()
        try:
            resumed = resume_run(str(cut), sut2, qsl, registry=registry)
        finally:
            inner2.close()
        assert resumed.valid, resumed.validity
        assert outputs(resumed) == outputs(result)
        replayed = registry.get("durability_replayed_completions_total")
        recomputed = registry.get("durability_recomputed_queries_total")
        assert replayed.value + recomputed.value == 32

    def test_corrupted_journals_fail_loudly_with_classified_reasons(
            self, golden, tmp_path):
        reference, blob = golden

        ghost = tmp_path / "ghost.rjnl"
        with pytest.raises(JournalError) as info:
            resume_run(str(ghost), golden_sut(), EchoQSL(total=512))
        assert info.value.reason == "no-journal"

        noise = tmp_path / "noise.rjnl"
        noise.write_bytes(b"\x00" * 256)
        with pytest.raises(JournalError) as info:
            resume_run(str(noise), golden_sut(), EchoQSL(total=512))
        assert info.value.reason == "bad-magic"

        whole = tmp_path / "whole.rjnl"
        whole.write_bytes(blob)
        records, _, _ = read_frames(whole)
        tampered = tmp_path / "tampered.rjnl"
        with JournalWriter(tampered) as w:
            flipped = False
            for kind, fields in records[:-1]:
                if kind == "issued" and not flipped:
                    fields = dict(fields, crc=fields["crc"] ^ 0xFFFF)
                    flipped = True
                w.append(kind, fields)
        with pytest.raises(ResumeError) as info:
            resume_run(str(tampered), golden_sut(), EchoQSL(total=512))
        assert info.value.reason == "replay-divergence"

        # Mid-file bit rot is indistinguishable from a crash at that
        # offset: the CRC framing discards everything from the flipped
        # byte on and the run still resumes exactly.
        rotten = tmp_path / "rotten.rjnl"
        flipped_blob = bytearray(blob)
        flipped_blob[len(blob) // 2] ^= 0xFF
        rotten.write_bytes(bytes(flipped_blob))
        assert read_frames(rotten)[1]  # reader reports the truncation
        resumed = resume_run(str(rotten), golden_sut(), EchoQSL(total=512))
        assert run_fingerprint(resumed) == reference


BREAKER = BreakerPolicy(window=10, failure_threshold=0.5, min_samples=4,
                        open_duration=0.05, half_open_probes=2)
OUTAGE_START, OUTAGE_DURATION = 0.15, 0.3


class TestBreakerOutageStudy:
    """One scheduled outage, four serving configurations."""

    @pytest.fixture(scope="class")
    def study(self):
        def outage_primary():
            return OutageSUT(FixedLatencySUT(SERVICE_TIME),
                             OUTAGE_START, OUTAGE_DURATION)

        runs = {}
        result = run_benchmark(outage_primary(), EchoQSL(total=512),
                               SETTINGS)
        runs["unprotected"] = (result, None, None)
        for label, standby, hedge in (
                ("breaker", False, None),
                ("breaker+standby", True, None),
                ("breaker+standby+hedge", True, 0.008)):
            registry = MetricsRegistry()
            sut = SelfHealingSUT(
                outage_primary(),
                EchoSUT(latency=SERVICE_TIME, name="standby")
                if standby else None,
                policy=BREAKER, attempt_timeout=0.02, hedge_delay=hedge,
                registry=registry)
            result = run_benchmark(sut, EchoQSL(total=512), SETTINGS)
            runs[label] = (result, sut, registry)
        return runs

    @staticmethod
    def failed(result):
        return sum(1 for r in result.log.records() if r.failure_reason)

    @staticmethod
    def completed(result):
        return sum(1 for r in result.log.records()
                   if r.completion_time is not None)

    def test_study_table(self, benchmark, study):
        runs = benchmark.pedantic(lambda: study, rounds=1, iterations=1)
        print("\n  config                 verdict  shed  standby  hedged"
              "  failed  completed")
        for label, (result, sut, _) in runs.items():
            stats = sut.stats if sut is not None else None
            print(f"  {label:22s} {'VALID' if result.valid else 'INVALID':8s}"
                  f" {stats.shed_queries if stats else '-':>4} "
                  f"{stats.standby_queries if stats else '-':>7} "
                  f"{stats.hedged_queries if stats else '-':>6} "
                  f"{self.failed(result):>6d} "
                  f"{self.completed(result):>9d}")
        assert set(runs) == {"unprotected", "breaker", "breaker+standby",
                             "breaker+standby+hedge"}

    def test_unprotected_outage_hangs_queries(self, study):
        result, _, _ = study["unprotected"]
        assert not result.valid
        assert any("never completed" in r for r in result.validity.reasons)

    def test_breaker_sheds_load_and_recovers(self, study):
        result, sut, registry = study["breaker"]
        # Still INVALID (there is nowhere to send the load) but every
        # query resolves promptly instead of hanging to the watchdog.
        assert not result.valid
        assert sut.stats.shed_queries > 0
        assert registry.get("breaker_rejected_queries_total").value > 0
        pairs = [(source.value, target.value)
                 for _, source, target in sut.breaker.transitions]
        assert ("closed", "open") in pairs       # tripped on the outage
        assert ("half_open", "closed") in pairs  # recovered after it
        # Shedding turned watchdog hangs into prompt classified failures.
        assert self.completed(result) + self.failed(result) == QUERIES
        assert not result.stats.watchdog_fired

    def test_standby_absorbs_the_shed_load(self, study):
        bare, _, _ = study["breaker"]
        result, sut, _ = study["breaker+standby"]
        # Queries still die in the trip window (the documented residue),
        # but everything the open breaker rejects is rerouted, not shed.
        assert sut.stats.shed_queries == 0
        assert sut.stats.standby_queries > 0
        assert sut.stats.standby_completions >= sut.stats.standby_queries
        assert self.failed(result) < self.failed(bare)
        assert self.completed(result) > self.completed(bare)

    def test_hedging_rides_through_the_outage_valid(self, study):
        """With a hedge faster than the attempt deadline, the standby
        answers every outage query before it can fail -- the only
        configuration that keeps the verdict VALID.  (Flip side, per
        docs/durability.md: those hedge wins also hide the outage from
        the breaker, which may never trip.)"""
        result, sut, _ = study["breaker+standby+hedge"]
        assert result.valid, result.validity.reasons
        assert sut.stats.hedged_queries > 0
        assert sut.stats.hedge_wins > 0
        assert self.failed(result) == 0

    def test_breaker_metric_families_are_populated(self, study):
        _, _, registry = study["breaker"]
        for name in ("breaker_state", "breaker_transitions_total",
                     "breaker_rejected_queries_total",
                     "breaker_probe_queries_total",
                     "breaker_recorded_failures_total"):
            assert registry.get(name) is not None
        transitions = sum(
            child.value
            for _, child in registry.get(
                "breaker_transitions_total").series())
        assert transitions >= 3  # trip, probe, re-close at minimum


class TestJournalingOverhead:
    ROUNDS = 9

    def test_offline_journaling_overhead_under_five_percent(self, tmp_path):
        settings = TestSettings(
            scenario=Scenario.OFFLINE, offline_sample_count=40_000,
            min_duration=0.0, watchdog_timeout=60.0, seed=5)
        qsl = EchoQSL(total=40_960, performance=40_960)

        def timed(journal_path=None):
            journal = (RunJournal(journal_path)
                       if journal_path is not None else None)
            gc.collect()
            gc.disable()
            try:
                started = time.perf_counter()
                result = run_benchmark(golden_sut(), qsl, settings,
                                       journal=journal)
                elapsed = time.perf_counter() - started
            finally:
                gc.enable()
            assert result.valid, result.validity
            return elapsed

        # Back-to-back plain/journaled pairs share machine state (CPU
        # frequency, allocator arenas), so the per-pair ratio isolates
        # the journal's cost; the median discards outlier pairs that a
        # min-of-N comparison across separate loops would conflate.
        ratios = []
        for i in range(self.ROUNDS):
            plain = timed()
            journaled = timed(tmp_path / f"offline{i}.rjnl")
            ratios.append(journaled / plain)
        overhead = statistics.median(ratios) - 1.0
        print(f"\n  offline ({settings.offline_sample_count} samples): "
              f"median journaling overhead {overhead:+.2%} "
              f"over {self.ROUNDS} interleaved pairs")
        assert overhead < 0.05

    def test_server_per_record_journal_cost_is_reported(self, tmp_path):
        """Informational companion: the Server scenario journals ~2
        records per query, the worst case for write-ahead cost."""

        def timed(journal_path=None):
            journal = (RunJournal(journal_path)
                       if journal_path is not None else None)
            started = time.perf_counter()
            run_benchmark(golden_sut(), EchoQSL(total=512), SETTINGS,
                          journal=journal)
            return time.perf_counter() - started

        plain = min(timed() for _ in range(3))
        journaled = min(
            timed(tmp_path / f"server{i}.rjnl") for i in range(3))
        records = len(read_frames(tmp_path / "server0.rjnl")[0])
        per_record = max(0.0, journaled - plain) / records
        print(f"\n  server ({QUERIES} queries, {records} records): "
              f"plain {plain * 1e3:.1f} ms, journaled "
              f"{journaled * 1e3:.1f} ms "
              f"({per_record * 1e6:.2f} us/record)")
        assert records >= 2 * QUERIES
