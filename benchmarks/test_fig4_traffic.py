"""Figure 4: timing and number of queries from the LoadGen.

Statistical checks on the generated traffic itself: Poisson arrivals for
server, constant intervals for multistream, completion-gated sequencing
for single-stream, and one all-samples query for offline.
"""

import numpy as np
import pytest

from repro.core import Scenario, TestMode, TestSettings
from repro.core.events import EventLoop
from repro.core.logging import QueryLog
from repro.core.query import QuerySampleResponse
from repro.core.sampler import SampleSelector
from repro.core.scenarios import PerformanceSource, make_driver
from repro.core.sut import SutBase


class RecordingSUT(SutBase):
    def __init__(self, latency=0.001):
        super().__init__("recording")
        self.latency = latency
        self.issue_times = []
        self.sample_counts = []

    def issue_query(self, query):
        self.issue_times.append(self.loop.now)
        self.sample_counts.append(query.sample_count)
        responses = [QuerySampleResponse(s.id, None) for s in query.samples]
        self.loop.schedule_after(
            self.latency, lambda: self.complete(query, responses))


def drive(settings, latency=0.001):
    loop = EventLoop()
    log = QueryLog()
    sut = RecordingSUT(latency)
    source = PerformanceSource(SampleSelector(range(128), seed=3))
    driver = make_driver(loop, settings, sut, source, log)
    sut.start_run(loop, driver.handle_completion)
    driver.start()
    loop.run()
    return sut


def test_fig4_server_is_poisson(benchmark):
    settings = TestSettings(scenario=Scenario.SERVER,
                            server_target_qps=2000.0,
                            server_latency_bound=1.0,
                            min_query_count=5000, min_duration=0.0)
    sut = benchmark.pedantic(lambda: drive(settings), rounds=1, iterations=1)
    gaps = np.diff(sut.issue_times)
    # Exponential inter-arrivals: mean = 1/lambda, CV = 1, and the
    # memoryless property makes gap quantiles follow exp(1/rate).
    assert np.mean(gaps) == pytest.approx(1 / 2000.0, rel=0.1)
    assert np.std(gaps) / np.mean(gaps) == pytest.approx(1.0, rel=0.1)
    theoretical_median = np.log(2) / 2000.0
    assert np.median(gaps) == pytest.approx(theoretical_median, rel=0.15)


def test_fig4_multistream_interval_constant(benchmark):
    settings = TestSettings(scenario=Scenario.MULTI_STREAM,
                            multistream_interval=0.05,
                            multistream_samples_per_query=4,
                            min_query_count=100, min_duration=0.0)
    sut = benchmark.pedantic(lambda: drive(settings), rounds=1, iterations=1)
    gaps = np.diff(sut.issue_times)
    assert np.allclose(gaps, 0.05)
    assert all(c == 4 for c in sut.sample_counts)


def test_fig4_single_stream_gated_by_completion(benchmark):
    settings = TestSettings(scenario=Scenario.SINGLE_STREAM,
                            min_query_count=100, min_duration=0.0)
    sut = benchmark.pedantic(lambda: drive(settings, latency=0.007),
                             rounds=1, iterations=1)
    gaps = np.diff(sut.issue_times)
    # t_j = processing time of query j, exactly.
    assert np.allclose(gaps, 0.007)
    assert all(c == 1 for c in sut.sample_counts)


def test_fig4_offline_single_batch(benchmark):
    settings = TestSettings(scenario=Scenario.OFFLINE,
                            offline_sample_count=2048, min_duration=0.0)
    sut = benchmark.pedantic(lambda: drive(settings, latency=1.0),
                             rounds=1, iterations=1)
    assert sut.issue_times[0] == 0.0
    assert sut.sample_counts[0] == 2048
