"""Hot-path benchmark runner: the perf trajectory's baseline recorder.

Measures the core engine's throughput on its two hottest paths and
writes the numbers to ``BENCH_core.json``, so later optimisation PRs
have a recorded baseline to beat (see ROADMAP.md, "Hot-path speed
campaign"):

* **event loop** - bare callbacks through
  :class:`repro.core.events.EventLoop` on the virtual clock, the
  substrate every scenario driver and SUT schedules on;
* **issue path** - full LoadGen queries through a Server-scenario run
  against a zero-latency echo backend: schedule, issue, complete,
  referee bookkeeping;
* **stream issue path** - the same run with the backend streaming each
  answer as token chunks, so the chunk hot path added by
  ``repro.streaming`` is tracked from its first release.

The session tier's hot path is recorded separately to
``BENCH_sessions.json`` (``--sessions-out``):

* **session issue path** - session-scenario turns per wall second
  through the prefix cache against a zero-latency echo backend: replay
  graph, turn chaining, cache bookkeeping, referee (``docs/sessions.md``).

The fleet-session issue path - the same turns routed through a
4-replica ReplicaSet under the session-affinity balancer with
per-replica prefix caches (balancer ranking, served-replica feedback,
breaker bookkeeping on top of the session tier) - is recorded to
``BENCH_fleet_sessions.json`` (``--fleet-sessions-out``).

The resilience tier's control-plane costs are recorded to
``BENCH_chaos.json`` (``--chaos-out``), so robustness PRs can show the
detector stays cheap enough to run every scoring period:

* **detector tick** - :meth:`OutlierDetector.evaluate` scoring ticks
  per wall second over a healthy 8-replica fleet with full latency
  windows (median, per-replica ratios, failure windows - no ejections);
* **ejection rescue** - in-flight session queries rescued per wall
  second by :meth:`ReplicaSet.eject_replica`, including the re-route,
  session re-pin, and survivor prefix-cache warm (``docs/chaos.md``).

Run it from the repository root::

    PYTHONPATH=src python benchmarks/bench_runner.py [--out BENCH_core.json]

Numbers are wall-clock and machine-dependent; the JSON records the
interpreter version alongside so trajectories compare like with like.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

if __package__ in (None, ""):
    _ROOT = Path(__file__).resolve().parent.parent
    for entry in (str(_ROOT), str(_ROOT / "src")):
        if entry not in sys.path:
            sys.path.insert(0, entry)

from repro.core.config import Scenario, TestSettings
from repro.core.events import EventLoop, VirtualClock
from repro.core.loadgen import run_benchmark
from repro.harness.netbench import SyntheticQSL
from repro.streaming import StreamModel, streaming_echo
from repro.sut.echo import EchoSUT


def bench_event_loop(events: int) -> float:
    """Bare scheduled callbacks per wall second through the event loop."""
    loop = EventLoop(VirtualClock())
    counter = [0]

    def tick() -> None:
        counter[0] += 1

    for i in range(events):
        loop.schedule(i * 1e-6, tick)
    started = time.perf_counter()
    loop.run()
    elapsed = time.perf_counter() - started
    assert counter[0] == events
    return events / elapsed


def _server_settings(queries: int, qps: float) -> TestSettings:
    return TestSettings(
        scenario=Scenario.SERVER,
        server_target_qps=qps,
        server_latency_bound=10.0,
        min_query_count=queries,
        min_duration=0.0,
        watchdog_timeout=3600.0,
        seed=0,
    )


def bench_issue_path(queries: int) -> float:
    """Full LoadGen queries per wall second: Server scenario, echo SUT."""
    settings = _server_settings(queries, qps=1e6)
    started = time.perf_counter()
    result = run_benchmark(EchoSUT(latency=1e-6), SyntheticQSL(), settings)
    elapsed = time.perf_counter() - started
    assert result.metrics.query_count >= queries
    return result.metrics.query_count / elapsed


def bench_stream_issue_path(queries: int) -> float:
    """Streamed queries per wall second: every answer arrives as seeded
    token chunks before its completion (chunk hot path + referee)."""
    settings = _server_settings(queries, qps=1e6)
    sut = streaming_echo(
        latency=1e-6,
        model=StreamModel(first_token_delay=1e-6, inter_token_delay=1e-6),
    )
    started = time.perf_counter()
    result = run_benchmark(sut, SyntheticQSL(), settings)
    elapsed = time.perf_counter() - started
    assert result.metrics.stream is not None
    assert result.metrics.stream.streamed_query_count >= queries
    return result.metrics.query_count / elapsed


def bench_session_issue_path(sessions: int) -> float:
    """Session turns per wall second through the prefix cache: Poisson
    session arrivals, strictly ordered turn chaining, LRU cache
    bookkeeping, referee session accounting."""
    from repro.sessions import PrefixCacheSUT

    settings = TestSettings(
        scenario=Scenario.SESSION,
        server_target_qps=1e6,
        session_count=sessions,
        session_think_time_mean=0.0,  # stress configuration: no gaps
        min_duration=0.0,
        watchdog_timeout=3600.0,
        seed=0,
    )
    sut = PrefixCacheSUT(EchoSUT(latency=1e-6), capacity_tokens=1 << 18)
    started = time.perf_counter()
    result = run_benchmark(sut, SyntheticQSL(), settings)
    elapsed = time.perf_counter() - started
    assert result.valid, result.validity.reasons
    assert sut.stats.accesses == result.metrics.query_count
    return result.metrics.query_count / elapsed


def run_benchmarks(events: int, queries: int, repeats: int) -> dict:
    """Best-of-``repeats`` for each benched path (max smooths jitter)."""
    benches = {
        "event_loop_events_per_s": lambda: bench_event_loop(events),
        "issue_path_queries_per_s": lambda: bench_issue_path(queries),
        "stream_issue_path_queries_per_s":
            lambda: bench_stream_issue_path(max(1, queries // 4)),
    }
    results = {}
    for name, bench in benches.items():
        best = max(bench() for _ in range(repeats))
        results[name] = round(best, 1)
        print(f"{name:36s} {best:12,.0f}")
    return results


def run_session_benchmarks(sessions: int, repeats: int) -> dict:
    """Best-of-``repeats`` for the session-tier hot path."""
    best = max(bench_session_issue_path(sessions) for _ in range(repeats))
    results = {"session_issue_path_turns_per_s": round(best, 1)}
    print(f"{'session_issue_path_turns_per_s':36s} {best:12,.0f}")
    return results


def bench_fleet_session_issue_path(sessions: int) -> float:
    """Session turns per wall second through a replicated fleet: the
    session-affinity balancer, per-replica prefix caches, served-replica
    feedback, breaker bookkeeping, referee session accounting."""
    from repro.fleet import ReplicaSet
    from repro.sessions import per_replica_cache_factory

    settings = TestSettings(
        scenario=Scenario.SESSION,
        server_target_qps=1e6,
        session_count=sessions,
        session_think_time_mean=0.0,  # stress configuration: no gaps
        min_duration=0.0,
        watchdog_timeout=3600.0,
        seed=0,
    )
    fleet = ReplicaSet(
        lambda i: EchoSUT(latency=1e-6),
        initial_replicas=4, max_replicas=4,
        policy="session-affinity", attempt_timeout=10.0,
        cache_factory=per_replica_cache_factory(capacity_tokens=1 << 18),
    )
    started = time.perf_counter()
    result = run_benchmark(fleet, SyntheticQSL(), settings)
    elapsed = time.perf_counter() - started
    assert result.valid, result.validity.reasons
    accesses = sum(c.stats.accesses for c in fleet.caches.values())
    assert accesses == result.metrics.query_count
    return result.metrics.query_count / elapsed


def run_fleet_session_benchmarks(sessions: int, repeats: int) -> dict:
    """Best-of-``repeats`` for the fleet-session issue path."""
    best = max(bench_fleet_session_issue_path(sessions)
               for _ in range(repeats))
    results = {"fleet_session_issue_path_turns_per_s": round(best, 1)}
    print(f"{'fleet_session_issue_path_turns_per_s':36s} {best:12,.0f}")
    return results


def bench_detector_tick(ticks: int) -> float:
    """Outlier-detector scoring ticks per wall second.

    A healthy 8-replica fleet with saturated latency windows: every
    tick computes the fleet median, per-replica latency ratios, and
    windowed failure rates, and ejects nothing - the steady-state cost
    the detector adds to every ``period`` of a protected run.
    """
    from repro.fleet import OutlierDetector, OutlierPolicy, ReplicaSet

    loop = EventLoop(VirtualClock())
    fleet = ReplicaSet(lambda i: EchoSUT(latency=1e-6),
                       initial_replicas=8, max_replicas=8)
    fleet.start_run(loop, lambda q, r: None)
    for replica in fleet.replicas:
        for _ in range(128):
            replica.observe_latency(0.002)
        replica.completed = 1_000
    policy = OutlierPolicy(min_observations=8)
    detector = OutlierDetector(fleet, policy, seed=0)
    started = time.perf_counter()
    for tick in range(ticks):
        detector.evaluate(tick * policy.period)
    elapsed = time.perf_counter() - started
    assert detector.quarantined == []
    return ticks / elapsed


def bench_ejection_rescue(cycles: int, batch: int = 64) -> float:
    """In-flight session queries rescued per wall second of ejection.

    Each cycle issues a batch of slow session turns across a 4-replica
    session-affinity fleet, ejects the busiest replica, and times the
    rescue: reroute to survivors, session re-pin, and the survivor
    prefix-cache warm with the rescued sessions' prefixes.  Only the
    :meth:`ReplicaSet.eject_replica` call is on the clock.
    """
    from repro.core.query import Query, QuerySample, SessionTurn
    from repro.fleet import ReplicaSet
    from repro.sessions import per_replica_cache_factory

    loop = EventLoop(VirtualClock())
    fleet = ReplicaSet(
        lambda i: EchoSUT(latency=1e9),  # stays in flight until rescued
        initial_replicas=4, max_replicas=4,
        policy="session-affinity", attempt_timeout=1e12,
        cache_factory=per_replica_cache_factory(capacity_tokens=1 << 18),
    )
    fleet.start_run(loop, lambda q, r: None)
    next_id = 1
    rescued = 0
    on_the_clock = 0.0
    for _ in range(cycles):
        for _ in range(batch):
            turn = SessionTurn(
                session_id=next_id, turn_index=1, turn_count=2,
                prefix_tokens=128, new_tokens=32, response_tokens=32)
            fleet.issue_query(Query(
                id=next_id, samples=(QuerySample(id=next_id, index=0),),
                issue_time=loop.now, session=turn))
            next_id += 1
        victim = max(fleet.available_replicas,
                     key=lambda r: r.outstanding).index
        started = time.perf_counter()
        rescued += fleet.eject_replica(victim)
        on_the_clock += time.perf_counter() - started
        fleet.readmit_replica(victim)
    assert rescued > 0 and fleet.stats.cache_warms > 0
    return rescued / on_the_clock


def run_chaos_benchmarks(ticks: int, cycles: int, repeats: int) -> dict:
    """Best-of-``repeats`` for the resilience control-plane paths."""
    benches = {
        "detector_ticks_per_s": lambda: bench_detector_tick(ticks),
        "ejection_rescue_queries_per_s":
            lambda: bench_ejection_rescue(cycles),
    }
    results = {}
    for name, bench in benches.items():
        best = max(bench() for _ in range(repeats))
        results[name] = round(best, 1)
        print(f"{name:36s} {best:12,.0f}")
    return results


def _write_trajectory(path: str, area: str, results: dict,
                      meta: dict) -> None:
    meta = dict(meta)
    meta.update({
        "python": platform.python_version(),
        "platform": platform.platform(),
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
    })
    payload = {"area": area, "benchmarks": results, "meta": meta}
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"trajectory written to {path}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_core.json",
                        help="trajectory file to write (default: %(default)s)")
    parser.add_argument("--sessions-out", default="BENCH_sessions.json",
                        help="session-tier trajectory file "
                             "(default: %(default)s)")
    parser.add_argument("--fleet-sessions-out",
                        default="BENCH_fleet_sessions.json",
                        help="fleet-session trajectory file "
                             "(default: %(default)s)")
    parser.add_argument("--chaos-out", default="BENCH_chaos.json",
                        help="resilience-tier trajectory file "
                             "(default: %(default)s)")
    parser.add_argument("--events", type=int, default=200_000,
                        help="event-loop callbacks per repeat")
    parser.add_argument("--queries", type=int, default=20_000,
                        help="issue-path queries per repeat")
    parser.add_argument("--sessions", type=int, default=2_000,
                        help="session-issue-path conversations per repeat")
    parser.add_argument("--repeats", type=int, default=3,
                        help="repeats per bench; best is recorded")
    args = parser.parse_args(argv)
    results = run_benchmarks(args.events, args.queries, args.repeats)
    _write_trajectory(args.out, "core", results, {
        "events": args.events,
        "queries": args.queries,
        "repeats": args.repeats,
    })
    session_results = run_session_benchmarks(args.sessions, args.repeats)
    _write_trajectory(args.sessions_out, "sessions", session_results, {
        "sessions": args.sessions,
        "repeats": args.repeats,
    })
    fleet_results = run_fleet_session_benchmarks(
        args.sessions, args.repeats)
    _write_trajectory(
        args.fleet_sessions_out, "fleet-sessions", fleet_results, {
            "sessions": args.sessions,
            "replicas": 4,
            "balancer": "session-affinity",
            "repeats": args.repeats,
        })
    chaos_results = run_chaos_benchmarks(
        ticks=2_000, cycles=50, repeats=args.repeats)
    _write_trajectory(args.chaos_out, "chaos", chaos_results, {
        "detector_replicas": 8,
        "rescue_replicas": 4,
        "rescue_batch": 64,
        "repeats": args.repeats,
    })
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
