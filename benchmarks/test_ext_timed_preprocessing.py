"""Extension: timing preprocessing (paper Sections I and IV-A).

v0.5 explicitly leaves preprocessing untimed ("there is no vendor- or
application-neutral preprocessing"), while listing "timing
preprocessing" as a planned metric improvement.  The bench measures the
same system under both policies and shows the whole-pipeline metric can
flip a server run's validity - the reason the choice is consequential.
"""

import pytest

from repro.core import Scenario, TestSettings, run_benchmark
from repro.datasets import DatasetQSL, SyntheticImageNet
from repro.models.runtime import build_glyph_classifier
from repro.sut.backend import ClassifierSUT, PreprocessingModel

INFERENCE_SECONDS = 0.006
PREPROCESS_SECONDS = 0.003


@pytest.fixture(scope="module")
def setup():
    dataset = SyntheticImageNet(size=300)
    qsl = DatasetQSL(dataset)
    model = build_glyph_classifier(dataset, "light")
    return qsl, model


def single_stream(qsl, model, timed):
    sut = ClassifierSUT(
        model, qsl, service_time_fn=lambda n: INFERENCE_SECONDS,
        preprocessing=PreprocessingModel(PREPROCESS_SECONDS, timed=timed))
    settings = TestSettings(scenario=Scenario.SINGLE_STREAM,
                            min_query_count=256, min_duration=0.5)
    return run_benchmark(sut, qsl, settings)


def test_ext_untimed_hides_a_third_of_the_pipeline(benchmark, setup):
    qsl, model = setup
    untimed = benchmark.pedantic(
        lambda: single_stream(qsl, model, timed=False),
        rounds=1, iterations=1)
    timed = single_stream(qsl, model, timed=True)
    hidden = 1 - untimed.primary_metric / timed.primary_metric
    print(f"\n  p90 latency untimed: {untimed.primary_metric * 1e3:.1f} ms, "
          f"timed: {timed.primary_metric * 1e3:.1f} ms "
          f"({hidden:.0%} of the pipeline is untimed)")
    assert untimed.primary_metric == pytest.approx(INFERENCE_SECONDS)
    assert timed.primary_metric == pytest.approx(
        INFERENCE_SECONDS + PREPROCESS_SECONDS)


def test_ext_timing_policy_flips_server_validity(benchmark, setup):
    qsl, model = setup
    bound = INFERENCE_SECONDS * 1.25   # fits inference, not the pipeline
    settings = TestSettings(scenario=Scenario.SERVER,
                            server_target_qps=40.0,
                            server_latency_bound=bound,
                            min_query_count=200, min_duration=1.0)

    def run(timed):
        sut = ClassifierSUT(
            model, qsl, service_time_fn=lambda n: INFERENCE_SECONDS,
            preprocessing=PreprocessingModel(PREPROCESS_SECONDS, timed=timed))
        return run_benchmark(sut, qsl, settings)

    untimed = benchmark.pedantic(lambda: run(False), rounds=1, iterations=1)
    timed = run(True)
    assert untimed.valid
    assert not timed.valid
