"""Table IV: statistically confident query requirements (Eq. 1 and 2)."""

import pytest

from repro.core.stats import (
    QueryRequirement,
    margin_for_tail_latency,
    required_queries,
    table_iv,
)
from repro.harness.tables import format_table_iv

#: The exact published rows: (tail, margin, inferences, rounded).
TABLE_IV = [
    (0.90, 0.0050, 23_886, 24_576),
    (0.95, 0.0025, 50_425, 57_344),
    (0.99, 0.0005, 262_742, 270_336),
]


@pytest.mark.parametrize("tail,margin,inferences,rounded", TABLE_IV)
def test_table4_row(benchmark, tail, margin, inferences, rounded):
    req = benchmark(QueryRequirement.for_percentile, tail)
    assert req.margin == pytest.approx(margin)
    assert req.inferences == inferences
    assert req.rounded_inferences == rounded
    # Rounded value is k * 2^13 exactly as the paper notes.
    assert req.rounded_inferences % 2 ** 13 == 0


def test_equation_1_is_one_twentieth_of_the_gap(benchmark):
    margins = benchmark(
        lambda: [margin_for_tail_latency(p) for p in (0.90, 0.95, 0.99)])
    for p, margin in zip((0.90, 0.95, 0.99), margins):
        assert margin == pytest.approx((1 - p) / 20)


def test_nonlinear_growth_with_percentile(benchmark):
    counts = benchmark(
        lambda: [required_queries(p) for p in (0.90, 0.95, 0.99)])
    # "benchmarks with more-stringent latency constraints require more
    # queries in a highly nonlinear fashion"
    assert counts[1] / counts[0] > 2
    assert counts[2] / counts[1] > 4


def test_table4_renders(benchmark):
    table = benchmark(format_table_iv)
    print("\n" + table)
    assert "262,742" in table
    assert "270,336" in table
