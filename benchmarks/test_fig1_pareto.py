"""Figure 1: the accuracy / computational-complexity Pareto frontier.

"No single model is optimal; each one presents a design tradeoff between
accuracy, memory requirements, and computational complexity."  We build
a model *family* on the synthetic ImageNet task - matched-filter
classifiers with progressively cropped templates (less evidence, fewer
MACs) plus the subsampled light model - measure each point's accuracy
and operation count, and assert the published shape: a wide complexity
range, a wide accuracy range, and more compute buying more accuracy
along the frontier.
"""

import numpy as np
import pytest

from repro.datasets.glyphs import glyph_templates
from repro.models.graph import (
    Activation,
    Conv2D,
    Dense,
    GlobalMaxPool,
    Sequential,
)
from repro.models.runtime.classifier import (
    GlyphClassifier,
    build_glyph_classifier,
    evaluate_classifier,
)

EVAL = range(64, 364)


def build_cropped_classifier(dataset, crop, gain=4.0):
    """Heavy-style classifier that only sees a crop x crop template."""
    full = glyph_templates(dataset.glyphs)          # (g, g, 1, C)
    cropped = full[:crop, :crop]
    norms = np.sqrt((cropped ** 2).sum(axis=(0, 1), keepdims=True))
    cropped = cropped / np.maximum(norms, 1e-9)
    num_classes = dataset.num_classes

    conv = Conv2D(crop, num_classes, stride=1, padding="same",
                  use_bias=False, name=f"crop{crop}")
    graph = Sequential([
        conv, Activation("relu"), GlobalMaxPool(),
        Dense(num_classes, use_bias=False, name="head"),
    ], name=f"cropped_{crop}")
    shape = (dataset.image_size, dataset.image_size, 1)
    graph.initialize(shape, np.random.default_rng(0))
    conv.set_parameter("weights", (cropped * gain).astype(np.float32))
    graph.children[-1].set_parameter(
        "weights", np.eye(num_classes, dtype=np.float32))
    return GlyphClassifier(graph, shape, f"crop{crop}")


@pytest.fixture(scope="module")
def family(imagenet):
    """(name, macs, accuracy) for every family member."""
    points = []
    for crop in (3, 4, 5, 6, 8):
        model = build_cropped_classifier(imagenet, crop)
        points.append((f"crop{crop}", model.macs(),
                       evaluate_classifier(model, imagenet, EVAL)))
    light = build_glyph_classifier(imagenet, "light")
    points.append(("light", light.macs(),
                   evaluate_classifier(light, imagenet, EVAL)))
    return points


def test_fig1_family_measured(benchmark, family):
    points = benchmark.pedantic(lambda: family, rounds=1, iterations=1)
    print()
    for name, macs, acc in sorted(points, key=lambda p: p[1]):
        print(f"  {name:8s} {macs / 1e3:9.1f} kMACs   {acc:5.1f}% top-1")
    assert len(points) == 6


def test_fig1_wide_complexity_range(benchmark, family):
    macs = benchmark(lambda: [m for _n, m, _a in family])
    # Paper: ~50x difference in GOPs across the family.
    assert max(macs) / min(macs) > 5


def test_fig1_wide_accuracy_range(benchmark, family):
    accs = benchmark(lambda: [a for _n, _m, a in family])
    assert max(accs) - min(accs) > 20.0


def test_fig1_compute_buys_accuracy_along_the_crop_family(benchmark, family):
    crops = benchmark(
        lambda: sorted(
            [(m, a) for n, m, a in family if n.startswith("crop")]))
    macs, accs = zip(*crops)
    # Monotone (within noise): every big step up in compute pays.
    assert accs[-1] > accs[0] + 20
    assert accs[-1] == max(accs)


def test_fig1_fullsize_family_published_points(benchmark):
    """The full-size counterpart: computed GOPs paired with published
    Top-1 accuracies for an 11-model family (see repro.models.family)."""
    from repro.models.family import family_points, pareto_frontier

    points = benchmark(family_points)
    print()
    for name, gops, top1 in sorted(points, key=lambda p: p[1]):
        print(f"  {name:20s} {gops:6.2f} GOPs  {top1:5.1f}% top-1")
    gops = [g for _n, g, _a in points]
    assert max(gops) / min(gops) > 50          # "a 50x difference"
    frontier = pareto_frontier(points)
    assert 3 <= len(frontier) < len(points)    # no single optimum


def test_fig1_no_single_optimal_model(benchmark, family):
    """At least two family members are Pareto-optimal (no single model
    dominates on both axes)."""
    def pareto():
        frontier = []
        for name, macs, acc in family:
            dominated = any(
                other_macs <= macs and other_acc >= acc
                and (other_macs, other_acc) != (macs, acc)
                for _n, other_macs, other_acc in family
            )
            if not dominated:
                frontier.append(name)
        return frontier

    frontier = benchmark(pareto)
    assert len(frontier) >= 2
