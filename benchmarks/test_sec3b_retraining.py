"""Section III-B: making the mobile model quantization-friendly.

"First, we trained the MobileNet models for quantization-friendly
weights, enabling us to narrow the quality window to 2%.  Second ...
we provided equivalent MobileNet and SSD-MobileNet implementations
quantized to an 8-bit integer format."  Two reproductions of that fix
on the fragile light classifier:

* **cross-layer equalization** - the analytic route to balanced,
  quantization-friendly weights (FP32-exact, data-free);
* **quantization-aware training** - the gradient route, demonstrated on
  INT4 where naive quantization dents even the heavy model.

Both are measured against the Table I quality windows.
"""

import copy

import numpy as np
import pytest

from repro.core import Task
from repro.datasets import SyntheticImageNet
from repro.models.quantization import (
    NumericFormat,
    QuantizationSpec,
    cross_layer_equalization,
)
from repro.models.registry import model_info
from repro.models.runtime import build_glyph_classifier, evaluate_classifier
from repro.models.training import SGD, train_quantization_aware


@pytest.fixture(scope="module")
def dataset():
    return SyntheticImageNet(size=500)


HELD_OUT = range(200, 500)


def test_sec3b_equalized_weights_meet_the_2_percent_window(benchmark,
                                                           dataset):
    model = build_glyph_classifier(dataset, "light")
    spec = QuantizationSpec(NumericFormat.INT8)
    fp32 = evaluate_classifier(model, dataset, HELD_OUT)
    window = model_info(Task.IMAGE_CLASSIFICATION_LIGHT)\
        .quality_target_factor   # 0.98

    def equalize_and_eval():
        friendly = copy.deepcopy(model)
        cross_layer_equalization(friendly.graph)
        return evaluate_classifier(friendly.quantized(spec), dataset,
                                   HELD_OUT)

    naive = evaluate_classifier(model.quantized(spec), dataset, HELD_OUT)
    friendly = benchmark(equalize_and_eval)
    print(f"\n  fp32 {fp32:.1f}%  naive int8-pt {naive:.1f}%  "
          f"equalized int8-pt {friendly:.1f}%  "
          f"(window {window:.0%} -> {window * fp32:.1f}%)")
    assert naive < window * fp32        # the original problem
    assert friendly >= window * fp32    # the fix


def test_sec3b_qat_recovers_int4(benchmark, dataset):
    model = build_glyph_classifier(dataset, "heavy")
    spec = QuantizationSpec(NumericFormat.INT4)
    naive = evaluate_classifier(model.quantized(spec), dataset, HELD_OUT)
    images = np.stack([dataset.get_sample(i) for i in range(200)])
    labels = np.array([dataset.get_label(i) for i in range(200)])

    def finetune_and_eval():
        tuned = copy.deepcopy(model)
        train_quantization_aware(
            tuned.graph, images, labels, spec, epochs=5, batch_size=32,
            optimizer=SGD(learning_rate=0.002))
        return evaluate_classifier(tuned.quantized(spec), dataset, HELD_OUT)

    qat = benchmark.pedantic(finetune_and_eval, rounds=1, iterations=1)
    print(f"\n  int4 naive {naive:.1f}% -> after QAT {qat:.1f}%")
    assert qat > naive + 3.0


def test_sec3b_retraining_is_why_the_closed_division_bans_it(benchmark,
                                                             dataset):
    """QAT on the *evaluation distribution* can beat the FP32 reference -
    exactly the comparability hazard the closed division's no-retraining
    rule guards against."""
    model = build_glyph_classifier(dataset, "heavy")
    fp32 = evaluate_classifier(model, dataset, HELD_OUT)
    spec = QuantizationSpec(NumericFormat.INT4)
    images = np.stack([dataset.get_sample(i) for i in range(200)])
    labels = np.array([dataset.get_label(i) for i in range(200)])

    def finetune():
        tuned = copy.deepcopy(model)
        train_quantization_aware(
            tuned.graph, images, labels, spec, epochs=6, batch_size=32,
            optimizer=SGD(learning_rate=0.002))
        return evaluate_classifier(tuned.quantized(spec), dataset, HELD_OUT)

    qat = benchmark.pedantic(finetune, rounds=1, iterations=1)
    assert qat >= fp32 - 1.0   # retrained INT4 rivals or beats FP32
