"""Table III: latency constraints, and their enforcement."""

import pytest

from repro.core import Scenario, Task, TestSettings, run_benchmark, task_rules
from repro.harness.tables import format_table_iii

from tests.conftest import EchoQSL, FixedLatencySUT

#: (multistream arrival ms, server QoS ms) exactly as published.
TABLE_III = {
    Task.IMAGE_CLASSIFICATION_HEAVY: (50, 15),
    Task.IMAGE_CLASSIFICATION_LIGHT: (50, 10),
    Task.OBJECT_DETECTION_HEAVY: (66, 100),
    Task.OBJECT_DETECTION_LIGHT: (50, 10),
    Task.MACHINE_TRANSLATION: (100, 250),
}


@pytest.mark.parametrize("task", list(Task))
def test_table3_constants(benchmark, task):
    rules = benchmark(task_rules, task)
    interval_ms, bound_ms = TABLE_III[task]
    assert rules.multistream_interval * 1e3 == pytest.approx(interval_ms)
    assert rules.server_latency_bound * 1e3 == pytest.approx(bound_ms)


@pytest.mark.parametrize("task", list(Task))
def test_server_bound_enforced(benchmark, task):
    """An SUT 20% over the bound must produce an INVALID run."""
    bound = task_rules(task).server_latency_bound

    def run():
        settings = TestSettings(
            scenario=Scenario.SERVER, task=task, server_target_qps=50.0,
            min_query_count=200, min_duration=1.0,
        )
        return run_benchmark(FixedLatencySUT(bound * 1.2), EchoQSL(), settings)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert not result.valid

    settings = TestSettings(
        scenario=Scenario.SERVER, task=task, server_target_qps=50.0,
        min_query_count=200, min_duration=1.0,
    )
    ok = run_benchmark(FixedLatencySUT(bound * 0.5), EchoQSL(), settings)
    assert ok.valid


def test_multistream_interval_enforced(benchmark):
    """A system that overruns the arrival interval on every query fails
    the <=1% skipped-interval rule."""
    task = Task.IMAGE_CLASSIFICATION_HEAVY
    interval = task_rules(task).multistream_interval

    def run(latency):
        settings = TestSettings(
            scenario=Scenario.MULTI_STREAM, task=task,
            multistream_samples_per_query=2,
            min_query_count=100, min_duration=1.0,
        )
        return run_benchmark(FixedLatencySUT(latency), EchoQSL(), settings)

    bad = benchmark.pedantic(lambda: run(interval * 1.5),
                             rounds=1, iterations=1)
    assert not bad.valid
    good = run(interval * 0.5)
    assert good.valid


def test_table3_renders(benchmark):
    table = benchmark(format_table_iii)
    print("\n" + table)
    assert "15 ms" in table and "250 ms" in table
