"""Making a model quantization-friendly (the Section III-B fix).

The light classifier collapses under naive per-tensor INT8 quantization
(the MobileNet problem the MLPerf organizers hit).  Two repairs, both
implemented in this package:

1. **Cross-layer equalization** - rebalance channel scales analytically;
   FP32 behaviour is exactly preserved, INT8 becomes viable.  This is
   the data-free analogue of the "quantization-friendly weights" MLPerf
   shipped.
2. **Quantization-aware training** - fine-tune with fake quantization in
   the loop (straight-through estimator), here shown recovering INT4 on
   the heavy model - the open-division 4-bit story of Section VI-E.

Run:  python examples/quantization_friendly.py   (~30 seconds)
"""

import copy

import numpy as np

from repro.datasets import SyntheticImageNet
from repro.models.quantization import (
    NumericFormat,
    QuantizationSpec,
    cross_layer_equalization,
)
from repro.models.runtime import build_glyph_classifier, evaluate_classifier
from repro.models.training import SGD, train_quantization_aware

HELD_OUT = range(200, 500)


def equalization_story(dataset) -> None:
    model = build_glyph_classifier(dataset, "light")
    spec = QuantizationSpec(NumericFormat.INT8)
    fp32 = evaluate_classifier(model, dataset, HELD_OUT)
    naive = evaluate_classifier(model.quantized(spec), dataset, HELD_OUT)

    friendly = copy.deepcopy(model)
    pairs = cross_layer_equalization(friendly.graph)
    equalized_fp32 = evaluate_classifier(friendly, dataset, HELD_OUT)
    equalized_int8 = evaluate_classifier(
        friendly.quantized(spec), dataset, HELD_OUT)

    print("Cross-layer equalization (light model, INT8 per-tensor):")
    print(f"  FP32 reference        : {fp32:.1f}%")
    print(f"  naive INT8            : {naive:.1f}%   <- the MobileNet problem")
    print(f"  after CLE ({pairs} pair)   : FP32 {equalized_fp32:.1f}% "
          f"(unchanged), INT8 {equalized_int8:.1f}%   <- fixed")


def qat_story(dataset) -> None:
    model = build_glyph_classifier(dataset, "heavy")
    spec = QuantizationSpec(NumericFormat.INT4)
    naive = evaluate_classifier(model.quantized(spec), dataset, HELD_OUT)

    images = np.stack([dataset.get_sample(i) for i in range(200)])
    labels = np.array([dataset.get_label(i) for i in range(200)])
    tuned = copy.deepcopy(model)
    report = train_quantization_aware(
        tuned.graph, images, labels, spec, epochs=6, batch_size=32,
        optimizer=SGD(learning_rate=0.002))
    qat = evaluate_classifier(tuned.quantized(spec), dataset, HELD_OUT)

    print("\nQuantization-aware training (heavy model, INT4 per-tensor):")
    print(f"  naive INT4            : {naive:.1f}%")
    print(f"  after 6 QAT epochs    : {qat:.1f}% "
          f"(loss {report.initial_loss:.3f} -> {report.final_loss:.3f})")
    print("  (retraining like this is open-division-only; the closed")
    print("   division prohibits it precisely because it works so well)")


def main() -> None:
    dataset = SyntheticImageNet(size=500)
    equalization_story(dataset)
    qat_story(dataset)


if __name__ == "__main__":
    main()
