"""Quickstart: benchmark a real model under the LoadGen.

Builds the runnable "heavy" image classifier on the synthetic ImageNet
stand-in, runs an accuracy-mode pass through the full data set, checks
it against the MLPerf-style quality target (99% of the FP32 reference),
then runs a performance-mode single-stream measurement and prints the
LoadGen summary.

Run:  python examples/quickstart.py
"""

from repro.accuracy import check_accuracy
from repro.core import Scenario, Task, TestMode, TestSettings, run_benchmark
from repro.datasets import DatasetQSL, SyntheticImageNet
from repro.models.registry import model_info
from repro.models.runtime import build_glyph_classifier, evaluate_classifier
from repro.sut import ClassifierSUT


def main() -> None:
    # 1. Data set and query sample library (the MLPerf-owned side).
    dataset = SyntheticImageNet(size=1_000)
    qsl = DatasetQSL(dataset)

    # 2. The system under test (the submitter-owned side): a real numpy
    #    model wrapped in a backend SUT.  A deterministic service-time
    #    model keeps the run reproducible on any machine; drop the
    #    argument to measure actual wall-clock execution instead.
    model = build_glyph_classifier(dataset, variant="heavy")
    def make_sut():
        return ClassifierSUT(model, qsl, service_time_fn=lambda n: 0.003 * n)

    # 3. Accuracy mode: one pass over the whole data set, then the
    #    accuracy script checks the quality target.  MLPerf expresses
    #    targets relative to the FP32 reference model's own quality.
    fp32_reference = evaluate_classifier(model, dataset)
    info = model_info(Task.IMAGE_CLASSIFICATION_HEAVY)
    target = info.quality_target_factor * fp32_reference

    accuracy_settings = TestSettings(
        scenario=Scenario.SINGLE_STREAM, mode=TestMode.ACCURACY,
    )
    accuracy_run = run_benchmark(make_sut(), qsl, accuracy_settings)
    report = check_accuracy(accuracy_run, dataset, "classification", target)
    print("Accuracy mode:", report.summary())

    # 4. Performance mode: the single-stream scenario reports
    #    90th-percentile latency (Table II).
    performance_settings = TestSettings(
        scenario=Scenario.SINGLE_STREAM,
        min_query_count=1_024,      # Table V
        min_duration=5.0,           # scaled from the 60 s rule for a demo
    )
    result = run_benchmark(make_sut(), qsl, performance_settings)
    print(result.summary())


if __name__ == "__main__":
    main()
