"""Fleet survey: regenerate the paper's Section VI result corpus.

Runs every planned submission of the 33-system simulated fleet (166
results) and prints the coverage matrix (Table VI), the per-model
distribution (Figure 5), the per-processor histogram (Figure 7), and the
server/offline degradation summary (Figure 6).

Run:  python examples/fleet_survey.py   (~3-4 minutes: 166 tuned runs)
Pass --quick to survey a 6-system subset instead (~40 seconds).
"""

import statistics
import sys

from repro.core import Task
from repro.harness.experiments import (
    result_matrix,
    results_per_processor,
    results_per_task,
    run_fleet,
    server_offline_ratios,
)
from repro.harness.tables import format_coverage_matrix
from repro.sut.fleet import build_fleet


def main() -> None:
    systems = build_fleet()
    if "--quick" in sys.argv:
        keep = {"dc-gpu-a", "dc-cpu-xeon", "edge-gpu", "mobile-dsp-a",
                "fpga-edge", "embedded-asic"}
        systems = [s for s in systems if s.name in keep]
        print(f"quick mode: {len(systems)} systems")

    records = run_fleet(systems)
    print(f"\n{len(records)} closed-division results from "
          f"{len(systems)} systems\n")

    print("Coverage of models and scenarios (Table VI):")
    print(format_coverage_matrix(result_matrix(records)))

    print("\nResults per model (Figure 5):")
    for task, count in results_per_task(records).items():
        print(f"  {task.value:20s} {count:3d} {'#' * count}")

    print("\nResults per processor architecture (Figure 7):")
    for proc, tasks in sorted(results_per_processor(records).items(),
                              key=lambda kv: -sum(kv[1].values())):
        total = sum(tasks.values())
        print(f"  {proc.value:5s} {total:3d} {'#' * total}")

    print("\nServer-to-offline throughput ratios (Figure 6):")
    ratios = server_offline_ratios(records)
    per_task = {}
    for by_task in ratios.values():
        for task, ratio in by_task.items():
            per_task.setdefault(task, []).append(ratio)
    for task, values in per_task.items():
        print(f"  {task.value:20s} n={len(values):2d} "
              f"min={min(values):.2f} mean={statistics.mean(values):.2f} "
              f"max={max(values):.2f}")


if __name__ == "__main__":
    main()
