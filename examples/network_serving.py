"""Network division walkthrough: the LoadGen drives a SUT across a wire.

Three measurements on the same echo backend (fixed 2 ms service time):

1. **In-process baseline** - the ordinary wall-clock run, no network.
2. **Localhost TCP** - the backend hosted by an ``InferenceServer``,
   driven through ``NetworkSUT`` over real loopback sockets; the
   difference against (1) is the serving stack's per-query overhead.
3. **Simulated channel sweep** - the same backend behind a virtual-time
   ``SimulatedChannelSUT`` at increasing one-way latencies, showing how
   the wire eats the server scenario's QoS budget until the run goes
   INVALID - deterministically, in milliseconds of wall time.

Run:  python examples/network_serving.py   (~10 seconds)
"""

from repro.core.config import Scenario, TestSettings
from repro.core.events import WallClock
from repro.core.loadgen import run_benchmark
from repro.harness.netbench import (
    SyntheticQSL,
    latency_overhead,
    run_over_localhost,
    run_over_simulated_channel,
)
from repro.network import ChannelModel
from repro.sut.echo import EchoSUT

SETTINGS = TestSettings(
    scenario=Scenario.SERVER,
    server_target_qps=150.0,
    server_latency_bound=0.015,       # the paper's ResNet-50 bound
    min_query_count=120,
    min_duration=0.0,
    watchdog_timeout=30.0,
)
BACKEND_LATENCY = 0.002
QSL = SyntheticQSL()


def main() -> None:
    # 1. In-process wall-clock baseline.
    baseline = run_benchmark(
        EchoSUT(latency=BACKEND_LATENCY), QSL, SETTINGS, clock=WallClock()
    )
    print("in-process baseline:")
    print(baseline.summary())

    # 2. The same backend behind a real TCP hop on loopback.
    net = run_over_localhost(
        lambda: EchoSUT(latency=BACKEND_LATENCY), QSL, SETTINGS
    )
    print("\nlocalhost TCP serving:")
    print(net.result.summary())
    overhead = latency_overhead(net, baseline)
    print(f"per-query serving overhead: "
          f"{overhead['mean_overhead_s'] * 1e3:.3f} ms mean "
          f"(wire share {overhead['wire_share_s'] * 1e3:.3f} ms)")

    # 3. Deterministic QoS-degradation sweep on the simulated channel.
    print("\nsimulated channel sweep (virtual time, seed-stable):")
    print(f"{'one-way latency':>16} {'P99 (ms)':>10} {'verdict':>8}")
    for one_way_ms in (0.5, 2.0, 5.0, 8.0, 20.0):
        model = ChannelModel(latency=one_way_ms * 1e-3, jitter=0.0005, seed=42)
        sim = run_over_simulated_channel(
            EchoSUT(latency=BACKEND_LATENCY), QSL, SETTINGS, model
        )
        verdict = "VALID" if sim.valid else "INVALID"
        print(f"{one_way_ms:>13.1f} ms "
              f"{sim.result.metrics.latency_p99 * 1e3:>10.3f} {verdict:>8}")


if __name__ == "__main__":
    main()
