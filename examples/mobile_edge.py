"""Mobile/edge scenario study: single-stream latency and quantization.

A smartphone-class DSP runs the light image classifier: single-stream
latency (the responsiveness metric a phone cares about), the multistream
stream count (the multi-camera metric), and the INT8 quantization story
of Section III-B - per-tensor quantization destroys the mobile model's
accuracy, per-channel treatment (MLPerf's prequantized weights) restores
it within the widened 2% window.

Run:  python examples/mobile_edge.py   (~30 seconds)
"""

from repro.accuracy import check_accuracy
from repro.core import Scenario, Task, TestMode, TestSettings, run_benchmark
from repro.datasets import DatasetQSL, SyntheticImageNet
from repro.harness.tuning import QUICK_SCALE, find_max_multistream_n
from repro.models.quantization import NumericFormat, QuantizationSpec
from repro.models.registry import model_info
from repro.models.runtime import build_glyph_classifier, evaluate_classifier
from repro.sut import ClassifierSUT, DeviceModel, ProcessorType, SimulatedSUT
from repro.sut.fleet import task_workload

PHONE_DSP = DeviceModel(
    name="phone-dsp", processor=ProcessorType.DSP, peak_gops=60.0,
    base_utilization=0.6, saturation_gops=3.0, overhead=1.5e-3, max_batch=4,
)


def latency_and_streams() -> None:
    task = Task.IMAGE_CLASSIFICATION_LIGHT
    workload = task_workload(task)

    class NullQSL:
        name = "null"
        total_sample_count = 4096
        performance_sample_count = 1024

        def load_samples(self, indices):
            pass

        def unload_samples(self, indices):
            pass

        def get_sample(self, index):
            return None

    qsl = NullQSL()
    settings = QUICK_SCALE.apply(TestSettings(
        scenario=Scenario.SINGLE_STREAM, task=task))
    result = run_benchmark(SimulatedSUT(PHONE_DSP, workload), qsl, settings)
    print(f"single-stream p90 latency : "
          f"{result.primary_metric * 1e3:.1f} ms "
          f"({'VALID' if result.valid else 'INVALID'})")

    tuned = find_max_multistream_n(
        lambda: SimulatedSUT(PHONE_DSP, workload), qsl, task, QUICK_SCALE)
    if tuned is None:
        print("multistream               : cannot sustain even 1 stream")
    else:
        print(f"multistream               : {int(tuned.value)} streams "
              f"inside the 50 ms arrival interval")


def quantization_story() -> None:
    dataset = SyntheticImageNet(size=600)
    qsl = DatasetQSL(dataset)
    model = build_glyph_classifier(dataset, variant="light")
    info = model_info(Task.IMAGE_CLASSIFICATION_LIGHT)

    fp32 = evaluate_classifier(model, dataset)
    target = info.quality_target_factor * fp32
    print(f"\nFP32 reference Top-1      : {fp32:.1f}%  "
          f"(target: {info.quality_target_factor:.0%} -> {target:.1f}%)")

    for label, spec in [
        ("INT8 per-tensor (naive)", QuantizationSpec(NumericFormat.INT8)),
        ("INT8 per-channel (MLPerf)",
         QuantizationSpec(NumericFormat.INT8, per_channel=True)),
    ]:
        quantized = model.quantized(spec)
        sut = ClassifierSUT(quantized, qsl,
                            service_time_fn=lambda n: 0.002 * n)
        settings = TestSettings(scenario=Scenario.SINGLE_STREAM,
                                mode=TestMode.ACCURACY)
        run = run_benchmark(sut, qsl, settings)
        report = check_accuracy(run, dataset, "classification", target)
        print(f"{label:<26}: {report.value:.1f}%  "
              f"-> {'MEETS target' if report.passed else 'FAILS target'}")


def main() -> None:
    print(f"Mobile SoC study on {PHONE_DSP.name} "
          f"({PHONE_DSP.peak_gops:.0f} effective GOPS)\n")
    latency_and_streams()
    quantization_story()


if __name__ == "__main__":
    main()
