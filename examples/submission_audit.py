"""Submission + peer review: the checker and the Section V-B audits.

Assembles a complete closed-division submission (performance run,
accuracy run, system description), pushes it through the submission
checker, then runs the audit suite against both the honest system and a
result-caching cheater - which the on-the-fly caching detection catches.

Run:  python examples/submission_audit.py   (~20 seconds)
"""

from repro.accuracy import check_accuracy
from repro.audit import (
    run_accuracy_verification,
    run_caching_detection,
    run_seed_test,
)
from repro.core import Scenario, Task, TestMode, TestSettings, run_benchmark
from repro.core.query import QuerySampleResponse
from repro.core.sut import SutBase
from repro.datasets import DatasetQSL, SyntheticImageNet
from repro.models.quantization import NumericFormat
from repro.models.registry import model_info
from repro.models.runtime import build_glyph_classifier, evaluate_classifier
from repro.submission import (
    BenchmarkResult,
    Category,
    Division,
    Submission,
    SystemDescription,
    check_submission,
    format_submission,
)
from repro.sut import ClassifierSUT


class CachingCheater(SutBase):
    """Memoizes results by sample index: repeats complete 100x faster."""

    def __init__(self, qsl, model):
        super().__init__("caching-cheater")
        self.qsl = qsl
        self.model = model
        self.cache = {}

    def issue_query(self, query):
        duration = 0.0
        responses = []
        for sample in query.samples:
            if sample.index in self.cache:
                duration += 0.00002
            else:
                self.cache[sample.index] = self.model.predict_one(
                    self.qsl.get_sample(sample.index))
                duration += 0.002
            responses.append(
                QuerySampleResponse(sample.id, self.cache[sample.index]))
        self.loop.schedule_after(
            duration, lambda: self.complete(query, responses))


def main() -> None:
    dataset = SyntheticImageNet(size=400)
    qsl = DatasetQSL(dataset)
    model = build_glyph_classifier(dataset, variant="heavy")
    task = Task.IMAGE_CLASSIFICATION_HEAVY

    def honest_sut():
        return ClassifierSUT(model, qsl, service_time_fn=lambda n: 0.002 * n)

    # ---- build the submission -------------------------------------------
    perf_settings = TestSettings(
        scenario=Scenario.SINGLE_STREAM, task=task,
        min_query_count=1_024, min_duration=3.0,
    )
    performance = run_benchmark(honest_sut(), qsl, perf_settings)

    fp32 = evaluate_classifier(model, dataset)
    target = model_info(task).quality_target_factor * fp32
    accuracy_run = run_benchmark(
        honest_sut(), qsl,
        perf_settings.with_overrides(mode=TestMode.ACCURACY))
    accuracy = check_accuracy(accuracy_run, dataset, "classification", target)

    submission = Submission(
        system=SystemDescription(
            name="example-workstation", submitter="repro-examples",
            processor="CPU", accelerator_count=0, host_cpu_count=8,
            software_stack="repro-numpy 0.5", memory_gb=32.0,
            numerics=(NumericFormat.FP32,),
        ),
        division=Division.CLOSED,
        category=Category.AVAILABLE,
        results=[BenchmarkResult(task=task, scenario=Scenario.SINGLE_STREAM,
                                 performance=performance, accuracy=accuracy)],
    )
    print(format_submission(submission))

    report = check_submission(submission)
    print(f"\nsubmission checker: "
          f"{'CLEARED' if report.passed else 'REJECTED'} "
          f"({len(report.issues)} issues)")
    for issue in report.issues:
        print(" ", issue)

    # ---- the Section V-B audits ------------------------------------------
    audit_settings = TestSettings(scenario=Scenario.SINGLE_STREAM,
                                  min_query_count=200, min_duration=0.5)
    print("\naudits against the honest system:")
    print(" ", run_accuracy_verification(honest_sut, qsl,
                                         audit_settings).summary())
    print(" ", run_caching_detection(honest_sut, qsl,
                                     audit_settings).summary())
    print(" ", run_seed_test(honest_sut, qsl, audit_settings).summary())

    print("\naudits against a result-caching cheater:")
    cheat = run_caching_detection(
        lambda: CachingCheater(qsl, model), qsl, audit_settings)
    print(" ", cheat.summary())


if __name__ == "__main__":
    main()
