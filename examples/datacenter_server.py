"""Data-center scenario study: server capacity versus offline throughput.

Reproduces the paper's central Figure 6 observation on two workloads: a
simulated data-center accelerator serves ResNet-50 v1.5 with only a mild
loss under the 15 ms server QoS bound, while GNMT - whose variable
sentence lengths force padding waste in live batches - loses roughly
half its offline throughput.

Run:  python examples/datacenter_server.py   (~1 minute)
"""

from repro.core import Task
from repro.harness.tuning import (
    QUICK_SCALE,
    find_max_server_qps,
    measure_offline,
)
from repro.sut import DeviceModel, ProcessorType, SimulatedSUT
from repro.sut.device import ComputeMotif
from repro.sut.fleet import task_workload


class NullQSL:
    """Performance runs on simulated SUTs need no real sample data."""

    name = "null"
    total_sample_count = 8192
    performance_sample_count = 1024

    def load_samples(self, indices):
        pass

    def unload_samples(self, indices):
        pass

    def get_sample(self, index):
        return None


ACCELERATOR = DeviceModel(
    name="dc-accelerator", processor=ProcessorType.GPU,
    peak_gops=150_000.0, base_utilization=0.05, saturation_gops=120.0,
    overhead=0.4e-3, max_batch=128,
    structure_efficiency={ComputeMotif.RNN: 0.3},
)


def study(task: Task) -> None:
    workload = task_workload(task)
    qsl = NullQSL()

    def make_sut():
        return SimulatedSUT(ACCELERATOR, workload, batch_window=1e-3)

    offline = measure_offline(make_sut, qsl, task, QUICK_SCALE)
    tuned = find_max_server_qps(make_sut, qsl, task, QUICK_SCALE)

    print(f"\n=== {task.value} on {ACCELERATOR.name} ===")
    print(f"offline throughput : {offline.primary_metric:,.0f} samples/s")
    if tuned is None:
        print("server             : cannot meet the QoS bound at any rate")
        return
    ratio = tuned.value / offline.primary_metric
    print(f"server capacity    : {tuned.value:,.0f} queries/s "
          f"(bound held at the tail percentile, {tuned.probes} probe runs)")
    print(f"server/offline     : {ratio:.2f}  "
          f"(throughput lost to the latency constraint: {1 - ratio:.0%})")
    validity = tuned.result.validity.details
    print(f"tail violations    : {validity.get('violation_fraction', 0):.2%} "
          f"(budget 1% vision / 3% translation)")


def main() -> None:
    print("Latency-bounded throughput (paper Section VI-B / Figure 6):")
    study(Task.IMAGE_CLASSIFICATION_HEAVY)
    study(Task.MACHINE_TRANSLATION)
    print(
        "\nNote the asymmetry: the CNN keeps most of its throughput under"
        "\nthe bound, while GNMT's variable-length batches lose ~half -"
        "\nthe paper reports 39-55% for all five NMT systems."
    )


if __name__ == "__main__":
    main()
